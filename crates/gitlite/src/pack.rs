//! Packfiles: many objects per file, plus a sorted fanout index.
//!
//! Loose `objects/ab/cdef...` storage pays one inode and one file open per
//! object, which dominates cold-start object loading — and citation
//! resolution walks commit/tree history on every lookup, so cold loads are
//! on the hot path for both the local tool and the hub. A *pack*
//! consolidates a whole object set into two files:
//!
//! * **`pack-<checksum>.pack`** — the objects themselves, as
//!   length-prefixed records of canonical bytes, framed by a header and a
//!   SHA-1 trailer over everything before it:
//!
//!   ```text
//!   "GLPK" | u32 version | u32 count
//!   count × ( 20-byte id | u32 len | record payload )
//!   20-byte SHA-1 trailer
//!   ```
//!
//!   Version 1 packs hold only **full records**: the payload is the
//!   object's canonical bytes and `len` is their length. Version 2 packs
//!   may additionally hold **delta records** (git's pack-delta design):
//!   the high bit of `len` is the delta flag, the low 31 bits the payload
//!   length, and the payload is
//!
//!   ```text
//!   20-byte base id | u32 target_len | ops…
//!   op = 0x01 | u32 base_offset | u32 len      (copy from resolved base)
//!      | 0x02 | u32 len | len literal bytes    (insert)
//!   ```
//!
//!   A delta's base must be another record *in the same pack*, chains are
//!   capped at [`MAX_DELTA_DEPTH`], and both properties (plus acyclicity)
//!   are validated at parse time, so a crafted file cannot loop or recurse
//!   a reader. Resolution re-hashes the reconstructed bytes against the
//!   record id before serving them — a damaged or malicious delta yields
//!   "object missing", never a wrong answer. A pack with no delta records
//!   encodes as version 1, byte-identical to the pre-delta format.
//!
//! * **`pack-<checksum>.idx`** — the lookup structure: a 256-entry fanout
//!   table (cumulative counts by leading id byte) over the sorted id list,
//!   parallel byte offsets into the pack, the pack's trailer checksum (so
//!   an index can never be paired with the wrong pack), and its own SHA-1
//!   trailer:
//!
//!   ```text
//!   "GLIX" | u32 version | u32 count
//!   256 × u32 cumulative fanout
//!   count × 20-byte id (sorted ascending)
//!   count × u64 record offset
//!   20-byte pack checksum | 20-byte SHA-1 trailer
//!   ```
//!
//! Lookup is O(log n): the fanout narrows an id to its leading-byte bucket,
//! then a binary search over that bucket finds the offset. All integers are
//! big-endian. `<checksum>` in the file names is the pack trailer in hex,
//! so pack names are content addresses too.
//!
//! [`PackStore`] is the [`ObjectStore`] backend over this format: reads are
//! served from buffered in-memory pack data (one sequential file read per
//! pack at open, no per-object file opens), while new writes overflow into
//! a loose [`DiskStore`] area sharing the same root directory (packs live
//! under `<root>/pack/`, loose objects under `<root>/ab/...`, so a
//! `PackStore` opens any existing loose-object directory unchanged).
//! [`PackStore::repack`] and [`PackStore::gc`] consolidate the overflow
//! back into a single fresh pack — `gc` additionally drops objects not
//! reachable from the given roots. Both also write the third sidecar
//! file, `pack/commit-graph.glcg` ([`crate::graph`]): a
//! generation-numbered index of the surviving commit history that serves
//! `log`/`merge_base`/reachability walks without decoding a single
//! commit. After a `gc`, a store therefore holds exactly
//! `pack + idx + graph`.

use crate::codec::decode_object;
use crate::error::{GitError, Result};
use crate::graph::{CommitGraph, GraphEntry, GRAPH_FILE};
use crate::hash::ObjectId;
use crate::object::Object;
use crate::store::{DiskStore, ObjectStore};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Magic bytes opening every pack file.
pub const PACK_MAGIC: &[u8; 4] = b"GLPK";
/// Magic bytes opening every pack index file.
pub const INDEX_MAGIC: &[u8; 4] = b"GLIX";
/// Version of a pack holding only full records (and of the `.idx`
/// format, which is unchanged by deltas).
pub const PACK_VERSION: u32 = 1;
/// Version of a pack holding at least one delta record.
pub const PACK_VERSION_DELTA: u32 = 2;
/// Longest allowed delta chain (full base → … → deepest delta).
pub const MAX_DELTA_DEPTH: u32 = 16;
/// Subdirectory of a [`PackStore`] root holding `*.pack` / `*.idx` files.
pub const PACK_DIR: &str = "pack";

const HEADER_LEN: usize = 12; // magic + version + count
const TRAILER_LEN: usize = 20; // SHA-1
const RECORD_PREFIX: usize = 24; // 20-byte id + u32 len
const DELTA_FLAG: u32 = 0x8000_0000; // high bit of a record's len word
const LEN_MASK: u32 = !DELTA_FLAG;
const DELTA_PREFIX: usize = 24; // 20-byte base id + u32 target_len
const OP_COPY: u8 = 0x01;
const OP_INSERT: u8 = 0x02;
/// Matching granularity of the delta encoder (bytes).
const DELTA_BLOCK: usize = 16;
/// Candidates tried per object when planning deltas at repack time.
const DELTA_WINDOW: usize = 8;
/// Resolved-bytes cache budget per pack; the cache is cleared wholesale
/// when it would overflow (chain walks re-warm it immediately).
const DELTA_CACHE_BYTES: usize = 8 << 20;

/// A pack plus its index, encoded and ready to hit disk.
#[derive(Debug, Clone)]
pub struct EncodedPack {
    /// The `.pack` file bytes.
    pub pack: Vec<u8>,
    /// The `.idx` file bytes.
    pub index: Vec<u8>,
    /// The pack's trailer checksum — also its file-name stem
    /// (`pack-<checksum>`).
    pub checksum: ObjectId,
    /// How many records were written as deltas (0 for [`encode_pack`]).
    pub delta_objects: usize,
}

/// Encodes `objects` (id + canonical bytes) into a pack and its index,
/// every record stored full.
///
/// Records are sorted by id and deduplicated, so the same object set
/// always encodes to byte-identical files regardless of insertion order —
/// pack files are content addresses of their object sets.
pub fn encode_pack(objects: Vec<(ObjectId, Vec<u8>)>) -> EncodedPack {
    encode_with_plan(normalize(objects), &HashMap::new())
}

/// Like [`encode_pack`], but stores similar objects as delta records.
///
/// Candidates are sorted by (object kind, tree-entry name hint, size
/// descending) so successive versions of the same path land next to each
/// other, then each object tries a delta against a sliding window of
/// [`DELTA_WINDOW`] predecessors, keeping the smallest that saves at
/// least a quarter of the full size and stays under [`MAX_DELTA_DEPTH`].
/// Bases always precede their deltas in the candidate order, so chains
/// are acyclic by construction. The plan is a pure function of the
/// object set: deltified packs are content addresses too, and a set that
/// yields no profitable delta encodes byte-identically to
/// [`encode_pack`].
pub fn encode_pack_deltified(objects: Vec<(ObjectId, Vec<u8>)>) -> EncodedPack {
    let objects = normalize(objects);
    let plan = plan_deltas(&objects);
    encode_with_plan(objects, &plan)
}

fn normalize(mut objects: Vec<(ObjectId, Vec<u8>)>) -> Vec<(ObjectId, Vec<u8>)> {
    objects.sort_by_key(|entry| entry.0);
    objects.dedup_by(|a, b| a.0 == b.0);
    objects
}

fn encode_with_plan(
    objects: Vec<(ObjectId, Vec<u8>)>,
    plan: &HashMap<ObjectId, (ObjectId, Vec<u8>)>,
) -> EncodedPack {
    let delta_objects = objects
        .iter()
        .filter(|(id, _)| plan.contains_key(id))
        .count();
    let version = if delta_objects == 0 {
        PACK_VERSION
    } else {
        PACK_VERSION_DELTA
    };
    let mut pack = Vec::with_capacity(
        HEADER_LEN
            + TRAILER_LEN
            + objects
                .iter()
                .map(|(_, b)| RECORD_PREFIX + b.len())
                .sum::<usize>(),
    );
    pack.extend_from_slice(PACK_MAGIC);
    pack.extend_from_slice(&version.to_be_bytes());
    pack.extend_from_slice(&(objects.len() as u32).to_be_bytes());
    let mut ids = Vec::with_capacity(objects.len());
    let mut offsets = Vec::with_capacity(objects.len());
    for (id, bytes) in &objects {
        debug_assert!(
            bytes.len() <= LEN_MASK as usize,
            "pack record lengths are 31 bits; callers must reject larger objects"
        );
        ids.push(*id);
        offsets.push(pack.len() as u64);
        pack.extend_from_slice(&id.0);
        match plan.get(id) {
            Some((base, delta)) => {
                let len = (delta.len() + 20) as u32;
                pack.extend_from_slice(&(len | DELTA_FLAG).to_be_bytes());
                pack.extend_from_slice(&base.0);
                pack.extend_from_slice(delta);
            }
            None => {
                pack.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
                pack.extend_from_slice(bytes);
            }
        }
    }
    let checksum = ObjectId::hash_bytes(&pack);
    pack.extend_from_slice(&checksum.0);

    let index = encode_index(&ids, &offsets, checksum);
    EncodedPack {
        pack,
        index,
        checksum,
        delta_objects,
    }
}

/// Computes a delta turning `base` into `target`: `u32 target_len`
/// followed by copy/insert ops (see the module doc for the wire shape).
/// Returns `None` when no delta saves at least a quarter of the full
/// size — callers then store the object full.
///
/// The encoder indexes `base` in [`DELTA_BLOCK`]-byte blocks and greedily
/// extends the longest match at each target position; it is deterministic
/// in its inputs, which keeps deltified packs content-addressed.
pub fn compute_delta(base: &[u8], target: &[u8]) -> Option<Vec<u8>> {
    if target.len() < 64 || target.len() > LEN_MASK as usize || base.len() > LEN_MASK as usize {
        return None;
    }
    let mut table: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut off = 0;
    while off + DELTA_BLOCK <= base.len() {
        let slots = table
            .entry(block_hash(&base[off..off + DELTA_BLOCK]))
            .or_default();
        if slots.len() < 4 {
            slots.push(off as u32);
        }
        off += DELTA_BLOCK;
    }
    // The record must undercut the full encoding by 25% to be worth a
    // chain link at read time; 20 bytes of base id ride on top of it.
    let budget = target.len() * 3 / 4;
    let mut delta = Vec::with_capacity(64);
    delta.extend_from_slice(&(target.len() as u32).to_be_bytes());
    let mut lit_start = 0;
    let mut i = 0;
    while i + DELTA_BLOCK <= target.len() {
        let mut best: Option<(usize, usize)> = None; // (base offset, match len)
        if let Some(cands) = table.get(&block_hash(&target[i..i + DELTA_BLOCK])) {
            for &cand in cands {
                let cand = cand as usize;
                if base[cand..cand + DELTA_BLOCK] != target[i..i + DELTA_BLOCK] {
                    continue; // hash collision
                }
                let len = common_prefix(&base[cand..], &target[i..]);
                if best.map(|(_, b)| len > b).unwrap_or(true) {
                    best = Some((cand, len));
                }
            }
        }
        if let Some((boff, mlen)) = best {
            push_insert(&mut delta, &target[lit_start..i]);
            delta.push(OP_COPY);
            delta.extend_from_slice(&(boff as u32).to_be_bytes());
            delta.extend_from_slice(&(mlen as u32).to_be_bytes());
            i += mlen;
            lit_start = i;
        } else {
            i += 1;
        }
        if delta.len() + (i - lit_start) + 20 > budget {
            return None;
        }
    }
    push_insert(&mut delta, &target[lit_start..]);
    (delta.len() + 20 <= budget).then_some(delta)
}

/// Applies a delta produced by [`compute_delta`] to its resolved base.
/// Every op is bounds-checked against the base and the declared target
/// length; any malformed op, overrun, or length mismatch is `Corrupt`.
pub fn apply_delta(base: &[u8], delta: &[u8]) -> Result<Vec<u8>> {
    let corrupt = |msg: &str| GitError::Corrupt(format!("pack delta: {msg}"));
    if delta.len() < 4 {
        return Err(corrupt("truncated header"));
    }
    let target_len = u32::from_be_bytes(delta[..4].try_into().unwrap()) as usize;
    let mut out = Vec::new();
    let mut at = 4;
    while at < delta.len() {
        match delta[at] {
            OP_COPY => {
                if at + 9 > delta.len() {
                    return Err(corrupt("truncated copy op"));
                }
                let off = u32::from_be_bytes(delta[at + 1..at + 5].try_into().unwrap()) as usize;
                let len = u32::from_be_bytes(delta[at + 5..at + 9].try_into().unwrap()) as usize;
                if off
                    .checked_add(len)
                    .map(|end| end > base.len())
                    .unwrap_or(true)
                {
                    return Err(corrupt("copy op overruns the base"));
                }
                if out.len() + len > target_len {
                    return Err(corrupt("ops overrun the declared target length"));
                }
                out.extend_from_slice(&base[off..off + len]);
                at += 9;
            }
            OP_INSERT => {
                if at + 5 > delta.len() {
                    return Err(corrupt("truncated insert op"));
                }
                let len = u32::from_be_bytes(delta[at + 1..at + 5].try_into().unwrap()) as usize;
                if at + 5 + len > delta.len() {
                    return Err(corrupt("insert op overruns the delta"));
                }
                if out.len() + len > target_len {
                    return Err(corrupt("ops overrun the declared target length"));
                }
                out.extend_from_slice(&delta[at + 5..at + 5 + len]);
                at += 5 + len;
            }
            op => return Err(corrupt(&format!("unknown op 0x{op:02x}"))),
        }
    }
    if out.len() != target_len {
        return Err(corrupt("ops produce fewer bytes than declared"));
    }
    Ok(out)
}

fn push_insert(delta: &mut Vec<u8>, literal: &[u8]) {
    if literal.is_empty() {
        return;
    }
    delta.push(OP_INSERT);
    delta.extend_from_slice(&(literal.len() as u32).to_be_bytes());
    delta.extend_from_slice(literal);
}

fn block_hash(block: &[u8]) -> u64 {
    // FNV-1a; collisions are harmless (candidates are byte-verified).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in block {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

fn object_kind(bytes: &[u8]) -> u8 {
    if bytes.starts_with(b"commit ") {
        0
    } else if bytes.starts_with(b"tree ") {
        1
    } else {
        2
    }
}

/// Picks (base, delta) pairs for `objects` (pre-sorted by id). See
/// [`encode_pack_deltified`] for the strategy.
fn plan_deltas(objects: &[(ObjectId, Vec<u8>)]) -> HashMap<ObjectId, (ObjectId, Vec<u8>)> {
    // Tree entries name their children: successive versions of one path
    // share a name hint and sort adjacently below.
    let mut hints: HashMap<ObjectId, String> = HashMap::new();
    for (_, bytes) in objects {
        if !bytes.starts_with(b"tree ") {
            continue;
        }
        if let Ok(Object::Tree(tree)) = decode_object(bytes) {
            for (name, entry) in tree.iter() {
                hints.entry(entry.id).or_insert_with(|| name.to_string());
            }
        }
    }
    let mut order: Vec<usize> = (0..objects.len()).collect();
    order.sort_by(|&a, &b| {
        let key = |i: usize| {
            let (id, bytes): &(ObjectId, Vec<u8>) = &objects[i];
            (
                object_kind(bytes),
                hints.get(id).map(String::as_str).unwrap_or(""),
                std::cmp::Reverse(bytes.len()),
                *id,
            )
        };
        key(a).cmp(&key(b))
    });

    let mut plan = HashMap::new();
    let mut depth: HashMap<ObjectId, u32> = HashMap::new();
    let mut window: VecDeque<usize> = VecDeque::with_capacity(DELTA_WINDOW + 1);
    for &i in &order {
        let (id, ref bytes) = objects[i];
        let mut best: Option<(ObjectId, Vec<u8>)> = None;
        for &j in window.iter().rev() {
            let (base_id, ref base_bytes) = objects[j];
            if object_kind(base_bytes) != object_kind(bytes)
                || depth.get(&base_id).copied().unwrap_or(0) + 1 > MAX_DELTA_DEPTH
            {
                continue;
            }
            if let Some(delta) = compute_delta(base_bytes, bytes) {
                if best
                    .as_ref()
                    .map(|(_, b)| delta.len() < b.len())
                    .unwrap_or(true)
                {
                    best = Some((base_id, delta));
                }
            }
        }
        if let Some((base_id, delta)) = best {
            depth.insert(id, depth.get(&base_id).copied().unwrap_or(0) + 1);
            plan.insert(id, (base_id, delta));
        }
        window.push_back(i);
        if window.len() > DELTA_WINDOW {
            window.pop_front();
        }
    }
    plan
}

fn encode_index(ids: &[ObjectId], offsets: &[u64], pack_checksum: ObjectId) -> Vec<u8> {
    let mut fanout = [0u32; 256];
    for id in ids {
        fanout[id.0[0] as usize] += 1;
    }
    for i in 1..256 {
        fanout[i] += fanout[i - 1];
    }
    let mut index =
        Vec::with_capacity(HEADER_LEN + 1024 + ids.len() * 28 + TRAILER_LEN + TRAILER_LEN);
    index.extend_from_slice(INDEX_MAGIC);
    index.extend_from_slice(&PACK_VERSION.to_be_bytes());
    index.extend_from_slice(&(ids.len() as u32).to_be_bytes());
    for f in fanout {
        index.extend_from_slice(&f.to_be_bytes());
    }
    for id in ids {
        index.extend_from_slice(&id.0);
    }
    for off in offsets {
        index.extend_from_slice(&off.to_be_bytes());
    }
    index.extend_from_slice(&pack_checksum.0);
    let trailer = ObjectId::hash_bytes(&index);
    index.extend_from_slice(&trailer.0);
    index
}

/// The parsed lookup structure of one pack: sorted ids, parallel offsets,
/// and the fanout table narrowing binary searches to one leading-byte
/// bucket.
#[derive(Debug, Clone)]
pub struct PackIndex {
    fanout: [u32; 256],
    ids: Vec<ObjectId>,
    offsets: Vec<u64>,
    /// Trailer checksum of the pack this index describes.
    pub pack_checksum: ObjectId,
}

impl PackIndex {
    /// Parses and validates `.idx` bytes: magic, version, structural
    /// sizes, fanout monotonicity, id ordering, and the SHA-1 trailer.
    pub fn parse(bytes: &[u8]) -> Result<PackIndex> {
        let corrupt = |msg: &str| GitError::Corrupt(format!("pack index: {msg}"));
        if bytes.len() < HEADER_LEN + 1024 + TRAILER_LEN + TRAILER_LEN {
            return Err(corrupt("truncated"));
        }
        if &bytes[..4] != INDEX_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_be_bytes(bytes[4..8].try_into().unwrap());
        if version != PACK_VERSION {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        let count = u32::from_be_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let expected = HEADER_LEN + 1024 + count * 28 + TRAILER_LEN + TRAILER_LEN;
        if bytes.len() != expected {
            return Err(corrupt(&format!(
                "size mismatch: {} bytes for {count} entries, expected {expected}",
                bytes.len()
            )));
        }
        let body = &bytes[..bytes.len() - TRAILER_LEN];
        let trailer = &bytes[bytes.len() - TRAILER_LEN..];
        if ObjectId::hash_bytes(body).0 != trailer {
            return Err(corrupt("trailer checksum mismatch"));
        }

        let mut fanout = [0u32; 256];
        for i in 0..256 {
            let at = HEADER_LEN + i * 4;
            fanout[i] = u32::from_be_bytes(bytes[at..at + 4].try_into().unwrap());
            if i > 0 && fanout[i] < fanout[i - 1] {
                return Err(corrupt("fanout not monotone"));
            }
        }
        if fanout[255] as usize != count {
            return Err(corrupt("fanout total disagrees with count"));
        }
        let ids_at = HEADER_LEN + 1024;
        let mut ids = Vec::with_capacity(count);
        for i in 0..count {
            let at = ids_at + i * 20;
            let mut id = [0u8; 20];
            id.copy_from_slice(&bytes[at..at + 20]);
            let id = ObjectId(id);
            if let Some(prev) = ids.last() {
                if *prev >= id {
                    return Err(corrupt("ids not strictly ascending"));
                }
            }
            ids.push(id);
        }
        let offs_at = ids_at + count * 20;
        let offsets = (0..count)
            .map(|i| {
                let at = offs_at + i * 8;
                u64::from_be_bytes(bytes[at..at + 8].try_into().unwrap())
            })
            .collect();
        let mut pack_checksum = [0u8; 20];
        pack_checksum.copy_from_slice(&bytes[offs_at + count * 8..offs_at + count * 8 + 20]);
        Ok(PackIndex {
            fanout,
            ids,
            offsets,
            pack_checksum: ObjectId(pack_checksum),
        })
    }

    /// Number of objects indexed.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the index describes an empty pack.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The indexed ids, ascending.
    pub fn ids(&self) -> &[ObjectId] {
        &self.ids
    }

    /// Byte offset of `id`'s record within the pack, if present: fanout
    /// bucket, then binary search inside it.
    pub fn offset_of(&self, id: ObjectId) -> Option<u64> {
        let bucket = id.0[0] as usize;
        let lo = if bucket == 0 {
            0
        } else {
            self.fanout[bucket - 1] as usize
        };
        let hi = self.fanout[bucket] as usize;
        let i = self.ids[lo..hi].binary_search(&id).ok()?;
        Some(self.offsets[lo + i])
    }
}

/// Validates a pack's framing — magic, version, and the SHA-1 trailer
/// over the whole body — returning the record count, the trailer
/// checksum, and the format version. Because the trailer covers every
/// byte, a pack that passes this check (and is then held immutable in
/// memory) needs no further per-object hashing on full-record reads.
fn validate_pack_framing(data: &[u8]) -> Result<(usize, ObjectId, u32)> {
    let corrupt = |msg: String| GitError::Corrupt(format!("pack file: {msg}"));
    if data.len() < HEADER_LEN + TRAILER_LEN {
        return Err(corrupt("truncated".into()));
    }
    if &data[..4] != PACK_MAGIC {
        return Err(corrupt("bad magic".into()));
    }
    let version = u32::from_be_bytes(data[4..8].try_into().unwrap());
    if version != PACK_VERSION && version != PACK_VERSION_DELTA {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let body = &data[..data.len() - TRAILER_LEN];
    let trailer = &data[data.len() - TRAILER_LEN..];
    let checksum = ObjectId::hash_bytes(body);
    if checksum.0 != trailer {
        return Err(corrupt("trailer checksum mismatch".into()));
    }
    let count = u32::from_be_bytes(data[8..12].try_into().unwrap()) as usize;
    Ok((count, checksum, version))
}

/// Validates `.pack` bytes (magic, version, trailer) and rebuilds a
/// [`PackIndex`] by scanning its records — the recovery path for a pack
/// whose `.idx` file is missing or damaged.
pub fn index_pack(data: &[u8]) -> Result<PackIndex> {
    let corrupt = |msg: String| GitError::Corrupt(format!("pack file: {msg}"));
    let (count, checksum, version) = validate_pack_framing(data)?;
    let body = &data[..data.len() - TRAILER_LEN];
    let mut entries = Vec::with_capacity(count);
    let mut at = HEADER_LEN;
    for i in 0..count {
        if at + RECORD_PREFIX > body.len() {
            return Err(corrupt(format!("record {i} truncated")));
        }
        let mut id = [0u8; 20];
        id.copy_from_slice(&data[at..at + 20]);
        let word = u32::from_be_bytes(data[at + 20..at + 24].try_into().unwrap());
        if word & DELTA_FLAG != 0 && version < PACK_VERSION_DELTA {
            return Err(corrupt(format!(
                "record {i} is a delta in a version-1 pack"
            )));
        }
        let len = (word & LEN_MASK) as usize;
        if at + RECORD_PREFIX + len > body.len() {
            return Err(corrupt(format!("record {i} body truncated")));
        }
        entries.push((ObjectId(id), at as u64));
        at += RECORD_PREFIX + len;
    }
    if at != body.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after the last record",
            body.len() - at
        )));
    }
    entries.sort_by_key(|entry| entry.0);
    if entries.windows(2).any(|w| w[0].0 == w[1].0) {
        return Err(corrupt("duplicate object id".into()));
    }
    let ids: Vec<ObjectId> = entries.iter().map(|(id, _)| *id).collect();
    let offsets: Vec<u64> = entries.iter().map(|(_, off)| *off).collect();
    Ok(PackIndex {
        fanout: fanout_of(&ids),
        ids,
        offsets,
        pack_checksum: checksum,
    })
}

fn fanout_of(sorted_ids: &[ObjectId]) -> [u32; 256] {
    let mut fanout = [0u32; 256];
    for id in sorted_ids {
        fanout[id.0[0] as usize] += 1;
    }
    for i in 1..256 {
        fanout[i] += fanout[i - 1];
    }
    fanout
}

/// One opened pack: buffered file bytes, the parsed index, and a
/// bounded cache of resolved delta targets (chain walks hit the cache
/// for shared prefixes instead of re-applying every link).
pub struct Pack {
    data: Vec<u8>,
    index: PackIndex,
    path: PathBuf,
    delta_objects: usize,
    cache: Mutex<DeltaCache>,
}

#[derive(Default)]
struct DeltaCache {
    map: HashMap<ObjectId, Vec<u8>>,
    bytes: usize,
}

impl fmt::Debug for Pack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pack")
            .field("path", &self.path)
            .field("objects", &self.index.len())
            .field("deltas", &self.delta_objects)
            .field("bytes", &self.data.len())
            .finish()
    }
}

impl Pack {
    /// Opens pack bytes with an optional pre-built index. With `idx`
    /// bytes, the pack's trailer is verified and checked against the
    /// index's recorded checksum, and every indexed offset is cheaply
    /// bounds- and identity-checked (the id at the offset must match the
    /// indexed id) — no record walk or re-sort, which is what the `.idx`
    /// file buys over rescanning. Without `idx`, the index is rebuilt by
    /// scanning the records ([`index_pack`]). Either way, delta records
    /// are then structurally validated: every base must be a record of
    /// this pack, chains must be acyclic and no deeper than
    /// [`MAX_DELTA_DEPTH`] — a crafted file fails here instead of
    /// looping a reader.
    pub fn parse(data: Vec<u8>, idx: Option<&[u8]>, path: PathBuf) -> Result<Pack> {
        let index = match idx {
            None => index_pack(&data)?,
            Some(bytes) => {
                let index = PackIndex::parse(bytes)?;
                let (count, checksum, version) = validate_pack_framing(&data)?;
                if checksum != index.pack_checksum {
                    return Err(GitError::Corrupt(format!(
                        "index for pack {} paired with pack {}",
                        index.pack_checksum.short(),
                        checksum.short()
                    )));
                }
                if count != index.len() {
                    return Err(GitError::Corrupt(format!(
                        "pack holds {count} records, index lists {}",
                        index.len()
                    )));
                }
                let body_len = data.len() - TRAILER_LEN;
                for (id, &off) in index.ids.iter().zip(&index.offsets) {
                    let off = off as usize;
                    if off + RECORD_PREFIX > body_len {
                        return Err(GitError::Corrupt(format!(
                            "indexed offset for {} is out of bounds",
                            id.short()
                        )));
                    }
                    if data[off..off + 20] != id.0 {
                        return Err(GitError::Corrupt(format!(
                            "indexed offset for {} points at another record",
                            id.short()
                        )));
                    }
                    let word = u32::from_be_bytes(data[off + 20..off + 24].try_into().unwrap());
                    if word & DELTA_FLAG != 0 && version < PACK_VERSION_DELTA {
                        return Err(GitError::Corrupt(format!(
                            "record for {} is a delta in a version-1 pack",
                            id.short()
                        )));
                    }
                    let len = (word & LEN_MASK) as usize;
                    if off + RECORD_PREFIX + len > body_len {
                        return Err(GitError::Corrupt(format!(
                            "indexed record for {} overruns the pack",
                            id.short()
                        )));
                    }
                }
                index
            }
        };
        let delta_objects = validate_delta_chains(&data, &index)?;
        Ok(Pack {
            data,
            index,
            path,
            delta_objects,
            cache: Mutex::new(DeltaCache::default()),
        })
    }

    /// The parsed index.
    pub fn index(&self) -> &PackIndex {
        &self.index
    }

    /// The pack's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records stored as deltas in this pack.
    pub fn delta_objects(&self) -> usize {
        self.delta_objects
    }

    /// The record at `off`: whether it is a delta, and its payload.
    fn record_at(&self, off: usize) -> (bool, &[u8]) {
        let word = u32::from_be_bytes(self.data[off + 20..off + 24].try_into().unwrap());
        let len = (word & LEN_MASK) as usize;
        (
            word & DELTA_FLAG != 0,
            &self.data[off + RECORD_PREFIX..off + RECORD_PREFIX + len],
        )
    }

    /// The canonical bytes of `id`, if this pack holds it. Full records
    /// are served straight from the buffer; delta records are resolved
    /// by walking the base chain (cached), and the reconstructed bytes
    /// are verified against `id` before being served — a damaged delta
    /// reads as "missing", never as wrong bytes.
    pub fn raw(&self, id: ObjectId) -> Option<Cow<'_, [u8]>> {
        let off = self.index.offset_of(id)? as usize;
        let (is_delta, payload) = self.record_at(off);
        if !is_delta {
            return Some(Cow::Borrowed(payload));
        }
        self.resolve(id).map(Cow::Owned)
    }

    fn resolve(&self, id: ObjectId) -> Option<Vec<u8>> {
        // Walk up the chain until a full record or a cached resolution,
        // then apply the collected deltas back down, caching each rung
        // (deep chains share prefixes, so the next read starts warm).
        let mut chain: Vec<(ObjectId, &[u8])> = Vec::new();
        let mut cur = id;
        let mut base: Vec<u8> = loop {
            if let Some(hit) = self.cache.lock().unwrap().map.get(&cur) {
                break hit.clone();
            }
            let off = self.index.offset_of(cur)? as usize;
            let (is_delta, payload) = self.record_at(off);
            if !is_delta {
                break payload.to_vec();
            }
            let mut base_id = [0u8; 20];
            base_id.copy_from_slice(&payload[..20]);
            chain.push((cur, &payload[20..]));
            cur = ObjectId(base_id);
        };
        for (link_id, delta) in chain.into_iter().rev() {
            crate::metrics::DELTA_RESOLUTIONS.inc();
            let out = apply_delta(&base, delta).ok()?;
            if ObjectId::hash_bytes(&out) != link_id {
                return None;
            }
            self.cache_put(link_id, out.clone());
            base = out;
        }
        Some(base)
    }

    fn cache_put(&self, id: ObjectId, bytes: Vec<u8>) {
        let mut cache = self.cache.lock().unwrap();
        if cache.bytes + bytes.len() > DELTA_CACHE_BYTES {
            cache.map.clear();
            cache.bytes = 0;
        }
        if bytes.len() <= DELTA_CACHE_BYTES {
            cache.bytes += bytes.len();
            cache.map.insert(id, bytes);
        }
    }
}

/// Walks every delta record's base chain: bases must be records of the
/// same pack, chains must be acyclic and bounded by [`MAX_DELTA_DEPTH`].
/// Returns the number of delta records. Offsets and lengths were already
/// bounds-checked by the caller.
fn validate_delta_chains(data: &[u8], index: &PackIndex) -> Result<usize> {
    let corrupt = |msg: String| GitError::Corrupt(format!("pack file: {msg}"));
    let record = |id: ObjectId| -> Option<(bool, &[u8])> {
        let off = index.offset_of(id)? as usize;
        let word = u32::from_be_bytes(data[off + 20..off + 24].try_into().unwrap());
        let len = (word & LEN_MASK) as usize;
        Some((
            word & DELTA_FLAG != 0,
            &data[off + RECORD_PREFIX..off + RECORD_PREFIX + len],
        ))
    };
    let mut deltas = 0;
    let mut depth: HashMap<ObjectId, u32> = HashMap::new();
    for &id in index.ids() {
        let mut chain: Vec<ObjectId> = Vec::new();
        let mut cur = id;
        let base_depth = loop {
            if let Some(&d) = depth.get(&cur) {
                break d;
            }
            let (is_delta, payload) = record(cur)
                .ok_or_else(|| corrupt(format!("delta base {} is not in the pack", cur.short())))?;
            if !is_delta {
                break 0;
            }
            if payload.len() < DELTA_PREFIX {
                return Err(corrupt(format!(
                    "delta record for {} is too short",
                    cur.short()
                )));
            }
            if chain.contains(&cur) {
                return Err(corrupt(format!(
                    "delta chain through {} is cyclic",
                    id.short()
                )));
            }
            chain.push(cur);
            let mut base_id = [0u8; 20];
            base_id.copy_from_slice(&payload[..20]);
            cur = ObjectId(base_id);
        };
        deltas += chain.len();
        for (i, link) in chain.iter().rev().enumerate() {
            let d = base_depth + i as u32 + 1;
            if d > MAX_DELTA_DEPTH {
                return Err(corrupt(format!(
                    "delta chain through {} exceeds depth {MAX_DELTA_DEPTH}",
                    id.short()
                )));
            }
            depth.insert(*link, d);
        }
    }
    Ok(deltas)
}

/// What a [`PackStore::repack`] / [`PackStore::gc`] pass did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Objects written into the fresh pack.
    pub packed: usize,
    /// Unreachable objects discarded (always 0 for `repack`).
    pub dropped: usize,
    /// Old pack files deleted (their `.idx` files go with them).
    pub packs_removed: usize,
    /// Loose object files deleted after being packed.
    pub loose_removed: usize,
    /// Path of the fresh pack, or `None` when the store ended up empty.
    pub pack_path: Option<PathBuf>,
    /// Commits indexed by the freshly written commit-graph
    /// ([`crate::graph::CommitGraph`]; 0 when the store holds no
    /// commits).
    pub graph_commits: usize,
    /// Objects written as delta records rather than full bytes.
    pub delta_objects: usize,
    /// Bytes of the fresh pack file (0 when the store ended up empty).
    pub pack_bytes: u64,
    /// Canonical bytes of every packed object — what a delta-free pack
    /// body would have held; `canonical_bytes / pack_bytes` is the
    /// compression ratio `gitcite gc` reports.
    pub canonical_bytes: u64,
    /// Commits whose changed-path Bloom filter was written beside the
    /// graph ([`crate::graph::CommitGraph::bloom_coverage`]).
    pub bloom_commits: usize,
}

/// An [`ObjectStore`] serving reads from buffered packs, with a loose
/// [`DiskStore`] overflow area for new writes.
///
/// Layout under the root directory:
///
/// ```text
/// <root>/pack/pack-<checksum>.pack   # consolidated objects
/// <root>/pack/pack-<checksum>.idx    # fanout index
/// <root>/pack/commit-graph.glcg      # commit-graph ([`crate::graph`])
/// <root>/ab/cdef...                  # loose overflow (DiskStore layout)
/// ```
///
/// The loose area *is* a [`DiskStore`] over the same root (`pack/` is not
/// a two-hex-char shard, so the loose scan ignores it), which means a
/// `PackStore` opens any pre-existing loose-object directory unchanged and
/// [`PackStore::repack`] is a pure layout migration. Reads prefer packs;
/// writes always land loose until the next [`PackStore::repack`] /
/// [`PackStore::gc`] consolidates them.
#[derive(Debug, Clone)]
pub struct PackStore {
    packs: Vec<Arc<Pack>>,
    /// Union of every pack index, for O(1) `contains`.
    packed: Arc<HashSet<ObjectId>>,
    loose: DiskStore,
    /// The commit-graph sidecar (`pack/commit-graph.glcg`), when present
    /// and valid for this store's contents. `None` until the first
    /// `repack`/`gc` writes one; commits created since it was written are
    /// simply absent from it (walks fall back per tip).
    graph: Option<Arc<CommitGraph>>,
}

impl PackStore {
    /// Opens (creating if needed) the store rooted at `root`: loads and
    /// verifies every pack under `<root>/pack/` (rebuilding any missing
    /// or damaged `.idx` from its pack), indexes the loose overflow, and
    /// loads the commit-graph sidecar. A present-but-corrupt or stale
    /// (referencing ids the store no longer holds) graph is rebuilt from
    /// a full scan of the store's commit objects and rewritten — the same
    /// recovery policy as a damaged `.idx`. A missing graph costs nothing
    /// here; the next [`PackStore::repack`]/[`PackStore::gc`] writes one.
    pub fn open(root: impl Into<PathBuf>) -> Result<PackStore> {
        let root = root.into();
        let loose = DiskStore::open(&root)?;
        let pack_dir = root.join(PACK_DIR);
        let mut pack_paths = Vec::new();
        if pack_dir.is_dir() {
            for entry in fs::read_dir(&pack_dir)? {
                let path = entry?.path();
                if path.extension().map(|e| e == "pack").unwrap_or(false) {
                    pack_paths.push(path);
                }
            }
        }
        pack_paths.sort();
        let mut packs = Vec::with_capacity(pack_paths.len());
        let mut packed = HashSet::new();
        for path in pack_paths {
            let data = fs::read(&path)?;
            let idx_bytes = fs::read(path.with_extension("idx")).ok();
            let pack = match Pack::parse(data, idx_bytes.as_deref(), path.clone()) {
                Ok(p) => p,
                // A bad .idx is recoverable as long as the pack itself is
                // intact: fall back to scanning the pack.
                Err(_) if idx_bytes.is_some() => Pack::parse(fs::read(&path)?, None, path.clone())?,
                Err(e) => return Err(e),
            };
            packed.extend(pack.index().ids().iter().copied());
            packs.push(Arc::new(pack));
        }
        let mut store = PackStore {
            packs,
            packed: Arc::new(packed),
            loose,
            graph: None,
        };
        store.graph = store.load_graph(&pack_dir);
        Ok(store)
    }

    /// Loads `pack/commit-graph.glcg`. Three repair paths, mirroring the
    /// `.idx` policy:
    ///
    /// * corrupt or **stale-superset** (describing commits this store no
    ///   longer holds — trusting it would resurrect dropped history) →
    ///   rebuilt from a full scan of the store's commit objects;
    /// * **stale-subset** (commits landed in the loose overflow since the
    ///   graph was written) → incrementally extended
    ///   ([`CommitGraph::extend`]): only the new loose commits are
    ///   decoded, the packed history's records are reused;
    /// * absent → stays absent (`None`, zero cost) until the next
    ///   `repack`/`gc` writes one.
    ///
    /// Repairs are written back; a repair that itself fails (e.g. a
    /// dangling parent in the store) degrades rather than erroring — the
    /// graph is an accelerator, never a reason a store fails to open.
    fn load_graph(&self, pack_dir: &Path) -> Option<Arc<CommitGraph>> {
        let bytes = fs::read(pack_dir.join(GRAPH_FILE)).ok()?;
        let parsed = CommitGraph::parse(&bytes)
            .ok()
            .filter(|g| g.ids().iter().all(|id| self.contains(*id)));
        let graph = match parsed {
            Some(graph) => {
                let new_commits: Vec<ObjectId> = self
                    .loose
                    .ids()
                    .into_iter()
                    .filter(|id| !self.packed.contains(id) && !graph.contains(*id))
                    .filter(
                        |id| matches!(self.loose.get(*id), Ok(obj) if obj.as_commit().is_some()),
                    )
                    .collect();
                if new_commits.is_empty() {
                    return Some(Arc::new(graph));
                }
                match graph.extend(self, &new_commits) {
                    Ok(extended) => extended,
                    // A dangling parent among the new commits: keep the
                    // (valid) old coverage, let walks fall back for the
                    // uncovered tips.
                    Err(_) => return Some(Arc::new(graph)),
                }
            }
            None => self.scan_graph().ok()??,
        };
        // `extend` carried the packed history's Bloom filters over; fill
        // them in for the new commits (and for every commit on the
        // full-scan rebuild path) from the store's trees.
        let mut graph = graph;
        graph.compute_blooms(|tid| self.get(tid).ok().and_then(|o| o.as_tree().cloned()));
        let _ = write_atomic(&pack_dir.join(GRAPH_FILE), &graph.encode());
        Some(Arc::new(graph))
    }

    /// Builds a commit-graph over **every** commit object in the store
    /// (both layers) — the full-scan rebuild path. Packed records are
    /// sniffed by their canonical-bytes prefix so non-commit objects cost
    /// nothing; loose objects must be decoded to know their kind. Returns
    /// `Ok(None)` when the store holds no commits.
    fn scan_graph(&self) -> Result<Option<CommitGraph>> {
        let mut entries = Vec::new();
        for pack in &self.packs {
            for &id in pack.index().ids() {
                let bytes = pack.raw(id).ok_or_else(|| {
                    GitError::Corrupt(format!("packed object {} failed to resolve", id.short()))
                })?;
                if !bytes.starts_with(b"commit ") {
                    continue;
                }
                let obj = decode_object(&bytes)?;
                let c = obj.as_commit().expect("commit prefix");
                entries.push(GraphEntry {
                    id,
                    tree: c.tree,
                    timestamp: c.author.timestamp,
                    parents: c.parents.clone(),
                });
            }
        }
        for id in self.loose.ids() {
            if self.packed.contains(&id) {
                continue;
            }
            let obj = self.loose.get(id)?;
            if let Some(c) = obj.as_commit() {
                entries.push(GraphEntry {
                    id,
                    tree: c.tree,
                    timestamp: c.author.timestamp,
                    parents: c.parents.clone(),
                });
            }
        }
        if entries.is_empty() {
            return Ok(None);
        }
        CommitGraph::from_entries(entries).map(Some)
    }

    /// The directory the store lives under.
    pub fn root(&self) -> &Path {
        self.loose.root()
    }

    /// Number of opened packs.
    pub fn pack_count(&self) -> usize {
        self.packs.len()
    }

    /// Objects currently served from packs.
    pub fn packed_len(&self) -> usize {
        self.packed.len()
    }

    /// Objects currently in the loose overflow area.
    pub fn loose_len(&self) -> usize {
        self.loose
            .ids()
            .into_iter()
            .filter(|id| !self.packed.contains(id))
            .count()
    }

    /// True when every write this handle accepted has reached disk.
    pub fn is_durable(&self) -> bool {
        self.loose.is_durable()
    }

    /// Retries any failed overflow writes (see [`DiskStore::flush`]).
    pub fn flush(&mut self) -> Result<()> {
        self.loose.flush()
    }

    /// Consolidates everything — packed and loose — into one fresh pack,
    /// dropping nothing. Old packs and loose files are removed once the
    /// new pack is durable.
    pub fn repack(&mut self) -> Result<MaintenanceReport> {
        self.consolidate(None)
    }

    /// Garbage collection: packs exactly the closure reachable from
    /// `roots` (commits walk to trees and parents, trees to entries) into
    /// one fresh pack and drops every other object. Old packs and loose
    /// files are removed once the new pack is durable.
    pub fn gc(&mut self, roots: &[ObjectId]) -> Result<MaintenanceReport> {
        self.consolidate(Some(roots))
    }

    fn consolidate(&mut self, roots: Option<&[ObjectId]>) -> Result<MaintenanceReport> {
        // Everything must be readable from disk state before we rewrite it.
        self.loose.flush()?;
        let total = self.len();
        let keep = match roots {
            Some(roots) => self.reachable_closure(roots)?,
            None => self.ids(),
        };
        let dropped = total - keep.len();

        let mut objects = Vec::with_capacity(keep.len());
        for id in &keep {
            let bytes = self.canonical_bytes_of(*id)?;
            // Abort before anything is written or deleted: a record length
            // is 31 bits (the high bit is the delta flag), and silently
            // truncating would corrupt the fresh pack while the loose
            // originals get removed underneath it.
            if bytes.len() > LEN_MASK as usize {
                return Err(GitError::Io(format!(
                    "object {} is {} bytes, exceeding the 2 GiB pack record \
                     limit; repack aborted (the object stays loose)",
                    id.short(),
                    bytes.len()
                )));
            }
            objects.push((*id, bytes));
        }
        let old_packs: Vec<PathBuf> = self.packs.iter().map(|p| p.path.clone()).collect();
        let old_loose = self.loose.ids();

        let packed = objects.len();
        let canonical_bytes: u64 = objects.iter().map(|(_, b)| b.len() as u64).sum();
        // The commit-graph over the surviving set: the kept bytes are
        // already in hand, so indexing the commits among them costs one
        // decode per commit and no extra store reads. Build it *before*
        // the pack is written so a failure (impossible for a well-formed
        // closure, but entries are checked) aborts cleanly.
        let graph = {
            let mut entries = Vec::new();
            for (id, bytes) in &objects {
                if !bytes.starts_with(b"commit ") {
                    continue;
                }
                let obj = decode_object(bytes)?;
                let c = obj.as_commit().expect("commit prefix");
                entries.push(GraphEntry {
                    id: *id,
                    tree: c.tree,
                    timestamp: c.author.timestamp,
                    parents: c.parents.clone(),
                });
            }
            if entries.is_empty() {
                None
            } else {
                // A dangling parent (possible in stores populated by an
                // interrupted object transfer) must not abort maintenance:
                // skip the graph, keep consolidating — same degrade policy
                // as `load_graph`.
                CommitGraph::from_entries(entries).ok()
            }
        };
        // Changed-path Bloom filters, diffed from the kept bytes while
        // they are still in hand (one decode per distinct tree, memoized
        // inside `compute_blooms`).
        let graph = graph.map(|mut g| {
            let by_id: HashMap<ObjectId, &Vec<u8>> =
                objects.iter().map(|(id, b)| (*id, b)).collect();
            g.compute_blooms(|tid| {
                by_id
                    .get(&tid)
                    .and_then(|b| decode_object(b).ok())
                    .and_then(|o| match o {
                        Object::Tree(t) => Some(t),
                        _ => None,
                    })
            });
            g
        });
        let graph_commits = graph.as_ref().map(CommitGraph::len).unwrap_or(0);
        let bloom_commits = graph.as_ref().map(CommitGraph::bloom_coverage).unwrap_or(0);

        let mut pack_path = None;
        let mut delta_objects = 0;
        let mut pack_bytes = 0u64;
        if !objects.is_empty() {
            let encoded = encode_pack_deltified(objects);
            delta_objects = encoded.delta_objects;
            pack_bytes = encoded.pack.len() as u64;
            let pack_dir = self.root().join(PACK_DIR);
            fs::create_dir_all(&pack_dir)?;
            let stem = pack_dir.join(format!("pack-{}", encoded.checksum.to_hex()));
            // Pack before index: a pack without its index is recoverable
            // (reindexed at open), an index without its pack is garbage.
            write_atomic(&stem.with_extension("pack"), &encoded.pack)?;
            write_atomic(&stem.with_extension("idx"), &encoded.index)?;
            pack_path = Some(stem.with_extension("pack"));
            match &graph {
                Some(g) => write_atomic(&pack_dir.join(GRAPH_FILE), &g.encode())?,
                // No commits survived: a stale graph would resurrect
                // dropped history at the next open.
                None => {
                    let _ = fs::remove_file(pack_dir.join(GRAPH_FILE));
                }
            }
        } else {
            let _ = fs::remove_file(self.root().join(PACK_DIR).join(GRAPH_FILE));
        }

        // The fresh pack is durable; retire the old layout.
        let mut packs_removed = 0;
        for old in old_packs {
            if Some(&old) != pack_path.as_ref() {
                fs::remove_file(&old)?;
                let _ = fs::remove_file(old.with_extension("idx"));
                packs_removed += 1;
            }
        }
        let mut loose_removed = 0;
        for id in old_loose {
            let hex = id.to_hex();
            let file = self.root().join(&hex[..2]).join(&hex[2..]);
            if fs::remove_file(file).is_ok() {
                loose_removed += 1;
            }
        }
        prune_empty_shards(&self.root().to_path_buf())?;

        *self = PackStore::open(self.root().to_path_buf())?;
        Ok(MaintenanceReport {
            packed,
            dropped,
            packs_removed,
            loose_removed,
            pack_path,
            graph_commits,
            delta_objects,
            pack_bytes,
            canonical_bytes,
            bloom_commits,
        })
    }

    /// Canonical bytes of `id` from whichever layer holds it.
    fn canonical_bytes_of(&self, id: ObjectId) -> Result<Vec<u8>> {
        for pack in &self.packs {
            if let Some(bytes) = pack.raw(id) {
                return Ok(bytes.into_owned());
            }
        }
        Ok(self.loose.get(id)?.canonical_bytes())
    }

    /// Records stored as deltas across every opened pack.
    pub fn delta_objects(&self) -> usize {
        self.packs.iter().map(|p| p.delta_objects()).sum()
    }
}

/// Removes loose shard directories that became empty after consolidation.
fn prune_empty_shards(root: &PathBuf) -> Result<()> {
    for entry in fs::read_dir(root)? {
        let path = entry?.path();
        let is_shard = path.is_dir()
            && path
                .file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.len() == 2)
                .unwrap_or(false);
        if is_shard && fs::read_dir(&path)?.next().is_none() {
            fs::remove_dir(&path)?;
        }
    }
    Ok(())
}

/// Writes `bytes` to `file` via a temp file + rename, so readers never see
/// a partial pack or index. (Racing writers of the same content-named file
/// are benign — they write identical bytes.)
fn write_atomic(file: &Path, bytes: &[u8]) -> Result<()> {
    let dir = file.parent().expect("pack files live in a directory");
    crate::store::write_via_rename(dir, file, bytes).map_err(Into::into)
}

impl ObjectStore for PackStore {
    fn get(&self, id: ObjectId) -> Result<Arc<Object>> {
        // No per-read hash check (unlike DiskStore, whose files can change
        // between reads): the pack's SHA-1 trailer was verified over every
        // byte at open, and the buffer is immutable from then on.
        for pack in &self.packs {
            if let Some(bytes) = pack.raw(id) {
                crate::metrics::PACK_READS.inc();
                return Ok(Arc::new(decode_object(&bytes)?));
            }
        }
        crate::metrics::LOOSE_READS.inc();
        self.loose.get(id)
    }

    fn put_with_id(&mut self, id: ObjectId, object: Arc<Object>) {
        debug_assert_eq!(object.id(), id, "put_with_id called with a mismatched id");
        if self.packed.contains(&id) {
            return;
        }
        self.loose.put_with_id(id, object);
    }

    fn put_raw(&mut self, id: ObjectId, bytes: &[u8]) -> Result<ObjectId> {
        if self.packed.contains(&id) {
            return Ok(id);
        }
        self.loose.put_raw(id, bytes)
    }

    fn put_many(&mut self, objects: Vec<(ObjectId, Arc<Object>)>) {
        let packed = Arc::clone(&self.packed);
        self.loose.put_many(
            objects
                .into_iter()
                .filter(|(id, _)| !packed.contains(id))
                .collect(),
        );
    }

    fn contains(&self, id: ObjectId) -> bool {
        self.packed.contains(&id) || self.loose.contains(id)
    }

    fn len(&self) -> usize {
        self.packed.len() + self.loose_len()
    }

    fn ids(&self) -> Vec<ObjectId> {
        self.packed
            .iter()
            .copied()
            .chain(
                self.loose
                    .ids()
                    .into_iter()
                    .filter(|id| !self.packed.contains(id)),
            )
            .collect()
    }

    /// The commit-graph loaded from (or rebuilt for) this store — what
    /// turns every history walk over packed commits into array reads.
    fn commit_graph(&self) -> Option<Arc<CommitGraph>> {
        self.graph.clone()
    }

    fn delta_objects(&self) -> Option<u64> {
        Some(PackStore::delta_objects(self) as u64)
    }

    /// Maintenance *is* [`PackStore::gc`]: consolidate packs + loose
    /// overflow into one fresh pack holding exactly the closure of
    /// `roots` (plus a fresh commit-graph), dropping everything
    /// unreachable.
    fn maintain(&mut self, roots: &[ObjectId]) -> Option<Result<MaintenanceReport>> {
        Some(self.gc(roots))
    }

    fn clone_box(&self) -> Box<dyn ObjectStore> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{Blob, Commit, EntryMode, Signature, Tree, TreeEntry};
    use crate::store::ObjectStoreExt;

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "gitlite-pack-test-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_objects(n: usize) -> Vec<(ObjectId, Vec<u8>)> {
        (0..n)
            .map(|i| {
                let blob = Blob::new(format!("payload {i}").into_bytes());
                (blob.id(), blob.canonical_bytes())
            })
            .collect()
    }

    fn sample_commit<S: ObjectStore + ?Sized>(
        store: &mut S,
        msg: &str,
        parents: Vec<ObjectId>,
    ) -> ObjectId {
        let blob = store.put_blob(format!("content of {msg}"));
        let mut tree = Tree::new();
        tree.insert(
            "f.txt",
            TreeEntry {
                mode: EntryMode::File,
                id: blob,
            },
        );
        let tree_id = store.put(Object::Tree(tree));
        store.put(Object::Commit(Commit {
            tree: tree_id,
            parents,
            author: Signature::new("t", "t@t", 0),
            message: msg.into(),
        }))
    }

    #[test]
    fn encode_is_deterministic_and_order_independent() {
        let objects = sample_objects(10);
        let mut shuffled = objects.clone();
        shuffled.reverse();
        let a = encode_pack(objects);
        let b = encode_pack(shuffled);
        assert_eq!(a.pack, b.pack);
        assert_eq!(a.index, b.index);
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn index_lookup_finds_every_object() {
        let objects = sample_objects(100);
        let encoded = encode_pack(objects.clone());
        let pack = Pack::parse(encoded.pack, Some(&encoded.index), PathBuf::new()).unwrap();
        for (id, bytes) in &objects {
            assert_eq!(pack.raw(*id).unwrap(), &bytes[..]);
        }
        assert_eq!(
            pack.index().offset_of(ObjectId::hash_bytes(b"absent")),
            None
        );
        assert_eq!(pack.index().len(), 100);
    }

    #[test]
    fn reindexing_a_pack_matches_its_encoded_index() {
        let encoded = encode_pack(sample_objects(25));
        let scanned = index_pack(&encoded.pack).unwrap();
        let parsed = PackIndex::parse(&encoded.index).unwrap();
        assert_eq!(scanned.ids, parsed.ids);
        assert_eq!(scanned.offsets, parsed.offsets);
        assert_eq!(scanned.pack_checksum, parsed.pack_checksum);
    }

    #[test]
    fn corruption_is_detected() {
        let encoded = encode_pack(sample_objects(5));
        // Flipped byte in the pack body.
        let mut bad_pack = encoded.pack.clone();
        bad_pack[HEADER_LEN + 30] ^= 0xff;
        assert!(matches!(index_pack(&bad_pack), Err(GitError::Corrupt(_))));
        // Flipped byte in the index.
        let mut bad_idx = encoded.index.clone();
        let at = bad_idx.len() / 2;
        bad_idx[at] ^= 0xff;
        assert!(matches!(
            PackIndex::parse(&bad_idx),
            Err(GitError::Corrupt(_))
        ));
        // Index paired with the wrong pack.
        let other = encode_pack(sample_objects(6));
        assert!(matches!(
            Pack::parse(other.pack, Some(&encoded.index), PathBuf::new()),
            Err(GitError::Corrupt(_))
        ));
    }

    #[test]
    fn pack_store_reads_packs_and_overflows_loose() {
        let dir = temp_dir("overflow");
        let mut store = PackStore::open(&dir).unwrap();
        let c1 = sample_commit(&mut store, "one", vec![]);
        assert_eq!(store.pack_count(), 0);
        assert_eq!(store.loose_len(), 3);
        store.repack().unwrap();
        assert_eq!(store.pack_count(), 1);
        assert_eq!(store.loose_len(), 0);
        assert!(store.contains(c1));
        assert_eq!(store.commit(c1).unwrap().message, "one");

        // New writes land loose; packed reads keep working.
        let extra = store.put_blob("fresh overflow");
        assert_eq!(store.loose_len(), 1);
        assert_eq!(store.blob_data(extra).unwrap().as_ref(), b"fresh overflow");
        assert_eq!(store.len(), 4);

        // A fresh handle sees both layers.
        let reopened = PackStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 4);
        assert!(reopened.contains(c1));
        assert!(reopened.contains(extra));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repack_consolidates_and_gc_drops_unreachable() {
        let dir = temp_dir("gc");
        let mut store = PackStore::open(&dir).unwrap();
        let c1 = sample_commit(&mut store, "one", vec![]);
        let c2 = sample_commit(&mut store, "two", vec![c1]);
        let garbage = store.put_blob("unreachable");
        let report = store.repack().unwrap();
        assert_eq!(report.packed, 7);
        assert_eq!(report.dropped, 0);
        assert!(store.contains(garbage));

        // More loose writes, then a gc keeping only c2's closure.
        store.put_blob("more garbage");
        let report = store.gc(&[c2]).unwrap();
        assert_eq!(report.packed, 6); // c1+c2, 2 trees, 2 blobs
        assert_eq!(report.dropped, 2);
        assert_eq!(report.packs_removed, 1);
        assert!(!store.contains(garbage));
        assert_eq!(
            store.get(garbage).unwrap_err(),
            GitError::ObjectNotFound(garbage)
        );
        assert_eq!(store.commit(c2).unwrap().message, "two");
        assert_eq!(store.len(), 6);

        // On disk: exactly one pack + one idx + the commit-graph, no
        // loose shards.
        let files: Vec<_> = fs::read_dir(dir.join(PACK_DIR))
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(files.len(), 3);
        assert!(files.iter().any(|p| p.ends_with(GRAPH_FILE)));
        let shards = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.is_dir() && p.file_name().unwrap().len() == 2)
            .count();
        assert_eq!(shards, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_is_idempotent_and_reopen_preserves_the_result() {
        let dir = temp_dir("idempotent");
        let mut store = PackStore::open(&dir).unwrap();
        let c = sample_commit(&mut store, "keep", vec![]);
        store.put_blob("drop me");
        store.gc(&[c]).unwrap();
        let first = store.ids();
        // A second gc finds nothing to drop and reuses the same pack name
        // (content-addressed), leaving the store unchanged.
        let report = store.gc(&[c]).unwrap();
        assert_eq!(report.dropped, 0);
        assert_eq!(report.packs_removed, 0);
        let reopened = PackStore::open(&dir).unwrap();
        let mut a = first;
        let mut b = reopened.ids();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_index_is_rebuilt_from_the_pack() {
        let dir = temp_dir("reindex");
        let mut store = PackStore::open(&dir).unwrap();
        let c = sample_commit(&mut store, "one", vec![]);
        store.repack().unwrap();
        let idx = fs::read_dir(dir.join(PACK_DIR))
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().map(|e| e == "idx").unwrap_or(false))
            .unwrap();
        fs::remove_file(&idx).unwrap();
        let reopened = PackStore::open(&dir).unwrap();
        assert!(reopened.contains(c));
        assert_eq!(reopened.commit(c).unwrap().message, "one");

        // A damaged index is likewise survivable.
        store.repack().unwrap();
        let idx_path = fs::read_dir(dir.join(PACK_DIR))
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().map(|e| e == "idx").unwrap_or(false))
            .unwrap();
        let mut bytes = fs::read(&idx_path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0xff;
        fs::write(&idx_path, bytes).unwrap();
        let reopened = PackStore::open(&dir).unwrap();
        assert!(reopened.contains(c));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn packed_reads_detect_tampering() {
        let dir = temp_dir("tamper");
        let mut store = PackStore::open(&dir).unwrap();
        store.put_blob("pristine");
        store.repack().unwrap();
        // Tampering invalidates the trailer, which open() rejects.
        let pack_file = fs::read_dir(dir.join(PACK_DIR))
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().map(|e| e == "pack").unwrap_or(false))
            .unwrap();
        let mut bytes = fs::read(&pack_file).unwrap();
        bytes[HEADER_LEN + 25] ^= 0xff;
        fs::write(&pack_file, bytes).unwrap();
        assert!(matches!(PackStore::open(&dir), Err(GitError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repack_survives_a_dangling_parent_by_skipping_the_graph() {
        let dir = temp_dir("dangling");
        let mut store = PackStore::open(&dir).unwrap();
        let c = sample_commit(&mut store, "ok", vec![]);
        // A commit whose parent was never stored (an interrupted object
        // transfer can leave this state): repack must still consolidate,
        // just without a commit-graph.
        let tree = store.commit(c).unwrap().tree;
        let dangling = store.put(Object::Commit(Commit {
            tree,
            parents: vec![ObjectId::hash_bytes(b"never stored")],
            author: Signature::new("t", "t@t", 1),
            message: "dangling".into(),
        }));
        let report = store.repack().unwrap();
        assert_eq!(report.packed, 4);
        assert_eq!(report.graph_commits, 0, "graph skipped, not fatal");
        assert!(store.commit_graph().is_none());
        assert!(!dir.join(PACK_DIR).join(GRAPH_FILE).exists());
        assert!(store.contains(dangling));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_extends_the_graph_over_new_loose_commits() {
        let dir = temp_dir("extend");
        let mut store = PackStore::open(&dir).unwrap();
        let c1 = sample_commit(&mut store, "one", vec![]);
        store.gc(&[c1]).unwrap();
        assert_eq!(store.commit_graph().unwrap().len(), 1);
        // New commits land loose after the graph was written.
        let c2 = sample_commit(&mut store, "two", vec![c1]);
        let c3 = sample_commit(&mut store, "three", vec![c2]);
        assert!(!store.commit_graph().unwrap().contains(c3));
        // Reopening extends the graph incrementally (refs pointing at
        // loose commits are covered without a full rebuild) and rewrites
        // the sidecar.
        let reopened = PackStore::open(&dir).unwrap();
        let graph = reopened.commit_graph().unwrap();
        assert_eq!(graph.len(), 3);
        let pos = graph.lookup(c3).unwrap();
        assert_eq!(graph.generation_of(pos), 2);
        assert_eq!(graph.first_parent_chain(pos), vec![c3, c2, c1]);
        let on_disk = fs::read(dir.join(PACK_DIR).join(GRAPH_FILE)).unwrap();
        assert_eq!(
            crate::graph::CommitGraph::parse(&on_disk).unwrap().len(),
            3,
            "extension was persisted"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    // ----- delta records ------------------------------------------------

    /// n blob versions of one growing, occasionally-edited text — the
    /// shape deltas exist for.
    fn blob_versions(n: usize) -> Vec<(ObjectId, Vec<u8>)> {
        let mut text = "// shared preamble line with plenty of common bytes\n".repeat(8);
        text.push_str("fn main() {\n    // generated content\n");
        (0..n)
            .map(|i| {
                text.push_str(&format!("    let x{i} = {};\n", i * 37));
                if i % 5 == 0 {
                    text = text.replacen("generated", "regenerated", 1);
                }
                let blob = Blob::new(text.clone().into_bytes());
                (blob.id(), blob.canonical_bytes())
            })
            .collect()
    }

    /// Hand-assembles a version-2 pack from raw records (`(id, is_delta,
    /// payload)`); the trailer is correct, so only the delta-chain
    /// validation stands between these bytes and a parsed pack.
    fn craft_pack(records: &[(ObjectId, bool, Vec<u8>)]) -> Vec<u8> {
        let mut pack = Vec::new();
        pack.extend_from_slice(PACK_MAGIC);
        pack.extend_from_slice(&PACK_VERSION_DELTA.to_be_bytes());
        pack.extend_from_slice(&(records.len() as u32).to_be_bytes());
        for (id, is_delta, payload) in records {
            pack.extend_from_slice(&id.0);
            let word = payload.len() as u32 | if *is_delta { DELTA_FLAG } else { 0 };
            pack.extend_from_slice(&word.to_be_bytes());
            pack.extend_from_slice(payload);
        }
        let checksum = ObjectId::hash_bytes(&pack);
        pack.extend_from_slice(&checksum.0);
        pack
    }

    /// A delta payload: 20-byte base id, declared target length, ops.
    fn delta_payload(base: ObjectId, target_len: u32, ops: &[u8]) -> Vec<u8> {
        let mut p = base.0.to_vec();
        p.extend_from_slice(&target_len.to_be_bytes());
        p.extend_from_slice(ops);
        p
    }

    #[test]
    fn compute_delta_round_trips_and_undercuts_the_full_size() {
        let versions = blob_versions(8);
        let (_, ref base) = versions[0];
        let mut deltified = 0;
        for (_, target) in &versions[1..] {
            if let Some(delta) = compute_delta(base, target) {
                assert_eq!(apply_delta(base, &delta).unwrap(), *target);
                assert!(
                    delta.len() + 20 <= target.len() * 3 / 4,
                    "unprofitable delta kept"
                );
                deltified += 1;
            }
        }
        assert!(deltified > 0, "similar versions must deltify");
        // Tiny and unrelated targets are declined, never mis-encoded.
        assert_eq!(compute_delta(base, b"short"), None);
    }

    #[test]
    fn deltified_pack_round_trips_and_rescans() {
        let objects = blob_versions(30);
        let encoded = encode_pack_deltified(objects.clone());
        assert!(encoded.delta_objects > 0, "versioned blobs must deltify");
        let full = encode_pack(objects.clone());
        assert!(
            encoded.pack.len() < full.pack.len(),
            "deltified pack must be smaller"
        );
        // Reads resolve through chains byte-identically, with or without
        // the encoded index.
        let pack = Pack::parse(encoded.pack.clone(), Some(&encoded.index), PathBuf::new()).unwrap();
        assert_eq!(pack.delta_objects(), encoded.delta_objects);
        for (id, bytes) in &objects {
            assert_eq!(pack.raw(*id).unwrap(), &bytes[..]);
        }
        let rescanned = Pack::parse(encoded.pack.clone(), None, PathBuf::new()).unwrap();
        for (id, bytes) in &objects {
            assert_eq!(rescanned.raw(*id).unwrap(), &bytes[..]);
        }
        // Deltified encoding is deterministic too.
        let mut reversed = objects.clone();
        reversed.reverse();
        assert_eq!(encode_pack_deltified(reversed).pack, encoded.pack);
    }

    #[test]
    fn delta_free_sets_still_encode_as_version_1() {
        // Unrelated payloads yield no profitable delta, and the output
        // must be byte-identical to the pre-delta format.
        let objects = sample_objects(10);
        let deltified = encode_pack_deltified(objects.clone());
        assert_eq!(deltified.delta_objects, 0);
        assert_eq!(deltified.pack, encode_pack(objects).pack);
    }

    #[test]
    fn corrupt_delta_payloads_are_rejected() {
        let objects = blob_versions(20);
        let encoded = encode_pack_deltified(objects);
        // Any flipped byte in a delta record breaks the pack trailer.
        let mut bad = encoded.pack.clone();
        let at = HEADER_LEN + RECORD_PREFIX + 2;
        bad[at] ^= 0xff;
        assert!(matches!(
            Pack::parse(bad, None, PathBuf::new()),
            Err(GitError::Corrupt(_))
        ));
        // A delta flag in a version-1 pack is structural corruption.
        let full = encode_pack(sample_objects(3));
        let mut flagged = full.pack.clone();
        flagged[HEADER_LEN + 20] |= 0x80; // first record's len word, high bit
        let body_len = flagged.len() - TRAILER_LEN;
        let fixed_trailer = ObjectId::hash_bytes(&flagged[..body_len]);
        flagged[body_len..].copy_from_slice(&fixed_trailer.0);
        assert!(matches!(
            Pack::parse(flagged, None, PathBuf::new()),
            Err(GitError::Corrupt(_))
        ));
        // Malformed ops never panic, they error.
        let base = b"0123456789abcdef0123456789abcdef".as_slice();
        for ops in [
            &[OP_COPY, 0, 0, 0, 0, 0, 0, 1, 0][..], // copy overruns base
            &[OP_COPY, 0, 0][..],                   // truncated copy
            &[OP_INSERT, 0, 0, 0, 9, b'x'][..],     // insert overruns delta
            &[0x7f][..],                            // unknown op
        ] {
            let mut delta = 4u32.to_be_bytes().to_vec();
            delta.extend_from_slice(ops);
            assert!(matches!(
                apply_delta(base, &delta),
                Err(GitError::Corrupt(_))
            ));
        }
        // Length mismatch: ops produce fewer bytes than declared.
        assert!(matches!(
            apply_delta(base, &8u32.to_be_bytes()),
            Err(GitError::Corrupt(_))
        ));
    }

    #[test]
    fn delta_cycles_missing_bases_and_deep_chains_are_refused() {
        let mut ids: Vec<ObjectId> = (0..20u32)
            .map(|i| ObjectId::hash_bytes(&i.to_be_bytes()))
            .collect();
        ids.sort();
        // Two deltas pointing at each other: a cycle.
        let cyclic = craft_pack(&[
            (ids[0], true, delta_payload(ids[1], 0, &[])),
            (ids[1], true, delta_payload(ids[0], 0, &[])),
        ]);
        let err = Pack::parse(cyclic, None, PathBuf::new()).unwrap_err();
        assert!(err.to_string().contains("cyclic"), "{err}");
        // A delta whose base is not in the pack.
        let dangling = craft_pack(&[(ids[0], true, delta_payload(ids[19], 0, &[]))]);
        let err = Pack::parse(dangling, None, PathBuf::new()).unwrap_err();
        assert!(err.to_string().contains("not in the pack"), "{err}");
        // A chain one hop past MAX_DELTA_DEPTH.
        let mut records = vec![(ids[0], false, b"full base record".to_vec())];
        for i in 1..=(MAX_DELTA_DEPTH as usize + 1) {
            records.push((ids[i], true, delta_payload(ids[i - 1], 0, &[])));
        }
        let deep = craft_pack(&records);
        let err = Pack::parse(deep, None, PathBuf::new()).unwrap_err();
        assert!(err.to_string().contains("exceeds depth"), "{err}");
        // Trimmed to exactly MAX_DELTA_DEPTH the same pack parses.
        records.pop();
        assert!(Pack::parse(craft_pack(&records), None, PathBuf::new()).is_ok());
    }

    #[test]
    fn resolved_deltas_that_hash_wrong_return_nothing() {
        // A structurally valid pack whose delta does not reproduce the
        // id it claims: the resolver must refuse, not serve wrong bytes.
        let base_bytes = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base_id = ObjectId::hash_bytes(&base_bytes);
        let liar_id = ObjectId::hash_bytes(b"not what the delta produces");
        let mut records = vec![
            (base_id, false, base_bytes.clone()),
            (
                liar_id,
                true,
                delta_payload(base_id, 3, &[OP_COPY, 0, 0, 0, 0, 0, 0, 0, 3]),
            ),
        ];
        records.sort_by_key(|r| r.0);
        let pack = Pack::parse(craft_pack(&records), None, PathBuf::new()).unwrap();
        assert_eq!(pack.raw(base_id).unwrap(), &base_bytes[..]);
        assert_eq!(pack.raw(liar_id), None, "wrong answers are never returned");
    }

    #[test]
    fn gc_reports_compression_and_bloom_coverage() {
        let dir = temp_dir("ratio");
        let mut store = PackStore::open(&dir).unwrap();
        let mut tip = sample_commit(&mut store, "root", vec![]);
        for i in 0..5 {
            tip = sample_commit(&mut store, &format!("v{i}"), vec![tip]);
        }
        let report = store.gc(&[tip]).unwrap();
        assert_eq!(report.graph_commits, 6);
        assert_eq!(report.bloom_commits, 6, "every commit gets a filter");
        assert!(report.canonical_bytes > 0);
        assert!(report.pack_bytes > 0);
        // The graph sidecar round-trips the filters.
        let on_disk = fs::read(dir.join(PACK_DIR).join(GRAPH_FILE)).unwrap();
        let graph = CommitGraph::parse(&on_disk).unwrap();
        assert_eq!(graph.bloom_coverage(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_stores_backfill_and_rebuild_bloom_filters() {
        let dir = temp_dir("bloom-reopen");
        let tip = {
            let mut store = PackStore::open(&dir).unwrap();
            let mut tip = sample_commit(&mut store, "root", vec![]);
            for i in 0..3 {
                tip = sample_commit(&mut store, &format!("v{i}"), vec![tip]);
            }
            store.gc(&[tip]).unwrap();
            // A commit after gc leaves the on-disk chunk stale.
            sample_commit(&mut store, "late", vec![tip])
        };
        {
            let store = PackStore::open(&dir).unwrap();
            let graph = store.commit_graph().expect("graph loads");
            assert!(graph.contains(tip));
            assert_eq!(graph.len(), 5);
            assert_eq!(
                graph.bloom_coverage(),
                5,
                "extend carried old filters and backfilled the late commit"
            );
        }
        // A corrupt sidecar is rebuilt by full scan, filters included.
        let graph_path = dir.join(PACK_DIR).join(GRAPH_FILE);
        let mut bytes = fs::read(&graph_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&graph_path, &bytes).unwrap();
        let store = PackStore::open(&dir).unwrap();
        let graph = store.commit_graph().expect("graph rebuilt");
        assert_eq!(graph.len(), 5);
        assert_eq!(graph.bloom_coverage(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pack_store_opens_a_plain_loose_directory() {
        // Migration path: a directory written by DiskStore alone.
        let dir = temp_dir("migrate");
        let mut disk = DiskStore::open(&dir).unwrap();
        let c = sample_commit(&mut disk, "legacy", vec![]);
        drop(disk);
        let mut store = PackStore::open(&dir).unwrap();
        assert!(store.contains(c));
        let report = store.gc(&[c]).unwrap();
        assert_eq!(report.packed, 3);
        // And DiskStore handles simply no longer see the packed objects —
        // the overflow area is empty, not corrupt.
        let disk = DiskStore::open(&dir).unwrap();
        assert_eq!(disk.len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
