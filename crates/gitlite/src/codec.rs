//! Decoding canonical object bytes back into [`Object`]s.
//!
//! Encoding lives with each object type (`canonical_bytes`); this module is
//! the inverse, used by the on-disk store and the object-transfer paths
//! (clone/fetch/push).

use crate::error::{GitError, Result};
use crate::hash::ObjectId;
use crate::object::{Blob, Commit, EntryMode, Object, Signature, Tree, TreeEntry};
use bytes::Bytes;

/// Parses `"<kind> <len>\0<body>"` and decodes the body.
pub fn decode_object(bytes: &[u8]) -> Result<Object> {
    let nul = bytes
        .iter()
        .position(|&b| b == 0)
        .ok_or_else(|| GitError::Corrupt("missing header terminator".into()))?;
    let header = std::str::from_utf8(&bytes[..nul])
        .map_err(|_| GitError::Corrupt("non-utf8 header".into()))?;
    let (kind, len_str) = header
        .split_once(' ')
        .ok_or_else(|| GitError::Corrupt(format!("malformed header {header:?}")))?;
    let len: usize = len_str
        .parse()
        .map_err(|_| GitError::Corrupt(format!("bad length {len_str:?}")))?;
    let body = &bytes[nul + 1..];
    if body.len() != len {
        return Err(GitError::Corrupt(format!(
            "length mismatch: header says {len}, body is {}",
            body.len()
        )));
    }
    match kind {
        "blob" => Ok(Object::Blob(Blob::new(Bytes::copy_from_slice(body)))),
        "tree" => decode_tree(body).map(Object::Tree),
        "commit" => decode_commit(body).map(Object::Commit),
        other => Err(GitError::Corrupt(format!("unknown object kind {other:?}"))),
    }
}

fn decode_tree(mut body: &[u8]) -> Result<Tree> {
    let mut tree = Tree::new();
    while !body.is_empty() {
        let sp = body
            .iter()
            .position(|&b| b == b' ')
            .ok_or_else(|| GitError::Corrupt("tree entry missing mode".into()))?;
        let mode = match &body[..sp] {
            b"100644" => EntryMode::File,
            b"40000" => EntryMode::Dir,
            m => {
                return Err(GitError::Corrupt(format!(
                    "unknown tree entry mode {:?}",
                    String::from_utf8_lossy(m)
                )))
            }
        };
        body = &body[sp + 1..];
        let nul = body
            .iter()
            .position(|&b| b == 0)
            .ok_or_else(|| GitError::Corrupt("tree entry missing name terminator".into()))?;
        let name = std::str::from_utf8(&body[..nul])
            .map_err(|_| GitError::Corrupt("non-utf8 tree entry name".into()))?
            .to_owned();
        body = &body[nul + 1..];
        if body.len() < 20 {
            return Err(GitError::Corrupt("truncated tree entry id".into()));
        }
        let mut id = [0u8; 20];
        id.copy_from_slice(&body[..20]);
        body = &body[20..];
        tree.insert(
            name,
            TreeEntry {
                mode,
                id: ObjectId(id),
            },
        );
    }
    Ok(tree)
}

fn decode_commit(body: &[u8]) -> Result<Commit> {
    let text =
        std::str::from_utf8(body).map_err(|_| GitError::Corrupt("non-utf8 commit body".into()))?;
    let (headers, message) = text
        .split_once("\n\n")
        .ok_or_else(|| GitError::Corrupt("commit missing message separator".into()))?;
    let mut tree = None;
    let mut parents = Vec::new();
    let mut author = None;
    for line in headers.lines() {
        let (key, rest) = line
            .split_once(' ')
            .ok_or_else(|| GitError::Corrupt(format!("malformed commit header {line:?}")))?;
        match key {
            "tree" => {
                tree = Some(
                    ObjectId::from_hex(rest)
                        .ok_or_else(|| GitError::Corrupt(format!("bad tree id {rest:?}")))?,
                );
            }
            "parent" => {
                parents.push(
                    ObjectId::from_hex(rest)
                        .ok_or_else(|| GitError::Corrupt(format!("bad parent id {rest:?}")))?,
                );
            }
            "author" => author = Some(decode_signature(rest)?),
            "committer" => {} // same as author in this substrate
            other => {
                return Err(GitError::Corrupt(format!(
                    "unknown commit header {other:?}"
                )))
            }
        }
    }
    Ok(Commit {
        tree: tree.ok_or_else(|| GitError::Corrupt("commit missing tree".into()))?,
        parents,
        author: author.ok_or_else(|| GitError::Corrupt("commit missing author".into()))?,
        message: message.to_owned(),
    })
}

fn decode_signature(s: &str) -> Result<Signature> {
    // Format: "Name <email> timestamp"
    let open = s
        .rfind('<')
        .ok_or_else(|| GitError::Corrupt(format!("bad signature {s:?}")))?;
    let close = s
        .rfind('>')
        .ok_or_else(|| GitError::Corrupt(format!("bad signature {s:?}")))?;
    if close < open {
        return Err(GitError::Corrupt(format!("bad signature {s:?}")));
    }
    let name = s[..open].trim_end().to_owned();
    let email = s[open + 1..close].to_owned();
    let timestamp: i64 = s[close + 1..]
        .trim()
        .parse()
        .map_err(|_| GitError::Corrupt(format!("bad signature timestamp in {s:?}")))?;
    Ok(Signature {
        name,
        email,
        timestamp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_round_trip() {
        let blob = Blob::new(&b"hello\nworld"[..]);
        let obj = decode_object(&blob.canonical_bytes()).unwrap();
        assert_eq!(obj, Object::Blob(blob));
    }

    #[test]
    fn tree_round_trip() {
        let mut tree = Tree::new();
        tree.insert(
            "file.txt",
            TreeEntry {
                mode: EntryMode::File,
                id: Blob::new(&b"a"[..]).id(),
            },
        );
        tree.insert(
            "dir",
            TreeEntry {
                mode: EntryMode::Dir,
                id: Tree::new().id(),
            },
        );
        let obj = decode_object(&tree.canonical_bytes()).unwrap();
        assert_eq!(obj.id(), tree.id());
        assert_eq!(obj, Object::Tree(tree));
    }

    #[test]
    fn commit_round_trip() {
        let commit = Commit {
            tree: Tree::new().id(),
            parents: vec![ObjectId::hash_bytes(b"p1"), ObjectId::hash_bytes(b"p2")],
            author: Signature::new("Yinjun Wu", "wu@example.org", 1536028520),
            message: "Merge branch 'gui'\n\nDetails here.".into(),
        };
        let obj = decode_object(&commit.canonical_bytes()).unwrap();
        assert_eq!(obj, Object::Commit(commit));
    }

    #[test]
    fn decoded_id_matches_encoded_id() {
        let blob = Blob::new(&b"x"[..]);
        let obj = decode_object(&blob.canonical_bytes()).unwrap();
        assert_eq!(obj.id(), blob.id());
    }

    #[test]
    fn rejects_corruption() {
        assert!(decode_object(b"").is_err());
        assert!(decode_object(b"blob x\0").is_err());
        assert!(decode_object(b"blob 5\0ab").is_err()); // length mismatch
        assert!(decode_object(b"weird 0\0").is_err());
        // Tree with truncated id.
        let mut bad = b"tree 10\x00100644 a\0x".to_vec();
        bad.truncate(bad.len() - 1);
        assert!(decode_object(&bad).is_err());
    }

    #[test]
    fn signature_with_tricky_name() {
        let commit = Commit {
            tree: Tree::new().id(),
            parents: vec![],
            author: Signature::new("A. B. <von> C", "a@b", -5),
            message: String::new(),
        };
        let obj = decode_object(&commit.canonical_bytes()).unwrap();
        let got = obj.as_commit().unwrap();
        // rfind-based parsing keeps everything before the *last* <...> as name.
        assert_eq!(got.author.email, "a@b");
        assert_eq!(got.author.timestamp, -5);
    }
}
