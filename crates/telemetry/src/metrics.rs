//! The three instrument kinds: monotone counters, up/down gauges and
//! log2-bucketed histograms. All cells are single atomics — see the
//! crate docs for why that makes snapshots lock-free.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of histogram buckets: one per value octave (see crate docs).
pub const BUCKETS: usize = 64;

/// A monotonically increasing event count.
///
/// `const`-constructible so modules can hold process-wide counters in
/// `static`s without any registration ceremony.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one and returns the *previous* value — one atomic op, for
    /// callers that key decisions (sampling, first-call work) off the
    /// count they are bumping.
    pub fn bump(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level that can move both ways (open connections,
/// queue depth, busy workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket index for a recorded value — `0` for zero, otherwise one past
/// the value's highest set bit, saturating at the last bucket.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Largest value bucket `i` can report (its inclusive upper bound).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log2-bucketed distribution of non-negative samples (latencies in
/// microseconds, sizes in bytes, ...). Recording is a couple of relaxed
/// atomic adds; quantiles come from a [`HistogramSnapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy (plain atomic loads — no locking, writers
    /// never stall).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, cell) in buckets.iter_mut().zip(&self.buckets) {
            *out = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]: the quantile math and merge
/// live here so servers, clients and benches all agree on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see the crate docs for the layout).
    pub buckets: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (for means).
    pub sum: u64,
    /// Largest sample seen, tracked exactly.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0u64; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Rebuilds a snapshot from sparse `(bucket, count)` pairs — the
    /// wire form. `count`/`sum`/`max` travel separately.
    pub fn from_sparse(pairs: &[(u32, u64)], count: u64, sum: u64, max: u64) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for &(i, n) in pairs {
            if let Some(cell) = buckets.get_mut(i as usize) {
                *cell += n;
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// The non-empty buckets as `(bucket, count)` pairs, ascending.
    pub fn sparse(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u32, n))
            .collect()
    }

    /// The value at quantile `p` in `[0, 1]`: the upper bound of the
    /// bucket holding rank `ceil(p · count)`, clamped to the exact
    /// maximum. Returns 0 on an empty snapshot. Monotone in `p`.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Element-wise union of two snapshots — what a multi-shard or
    /// multi-run aggregation does. Associative and commutative.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, (a, b)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&other.buckets))
        {
            *out = a + b;
        }
        HistogramSnapshot {
            buckets,
            count: self.count + other.count,
            // Wrapping, to match the atomic `fetch_add` on the record
            // path — and wrapping addition stays associative.
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_move() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn bucket_layout_is_one_octave_per_bucket() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_come_from_buckets_clamped_to_max() {
        let h = Histogram::new();
        for v in [10u64, 12, 15, 900] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.max, 900);
        // Rank 2 of 4 lands in the [8, 16) bucket: upper bound 15.
        assert_eq!(s.p50(), 15);
        // The tail reports the exact max, not the bucket bound 1023.
        assert_eq!(s.p99(), 900);
        assert_eq!(s.quantile(1.0), 900);
        assert_eq!(s.mean(), (10 + 12 + 15 + 900) / 4);
    }

    #[test]
    fn empty_snapshot_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0);
        assert!(s.sparse().is_empty());
    }

    #[test]
    fn sparse_round_trips() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 300, 70_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let back = HistogramSnapshot::from_sparse(&s.sparse(), s.count, s.sum, s.max);
        assert_eq!(back, s);
    }
}
