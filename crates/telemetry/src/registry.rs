//! A name-keyed registry of instruments. Lookup (get-or-create) takes a
//! short map lock; recording through the returned `Arc` handle never
//! does — callers on hot paths clone the handle once and keep it.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Shared home for named counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_create<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().expect("registry lock").get(name) {
        return Arc::clone(found);
    }
    Arc::clone(
        map.write()
            .expect("registry lock")
            .entry(name.to_owned())
            .or_default(),
    )
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// True when nothing has ever been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.read().expect("registry lock").is_empty()
            && self.gauges.read().expect("registry lock").is_empty()
            && self.histograms.read().expect("registry lock").is_empty()
    }

    /// A point-in-time copy of every instrument (atomic loads only).
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The readable form of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge level, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        r.gauge("g").set(5);
        r.histogram("h").record(7);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x"), 3);
        assert_eq!(snap.gauge("g"), 5);
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn empty_registry_reports_empty() {
        let r = Registry::new();
        assert!(r.is_empty());
        r.counter("x");
        assert!(!r.is_empty());
    }
}
