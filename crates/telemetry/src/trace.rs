//! The structured tracing facade: spans with ids, parent links and
//! `key=value` fields, fanned out to pluggable sinks. With no sinks
//! attached the whole facade reduces to one relaxed load per span.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Environment variable that switches the stderr JSON-lines sink on
/// (any non-empty value) in [`Tracer::from_env`].
pub const TRACE_ENV: &str = "GITCITE_TRACE";

/// Whether an event marks a span's start or its end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The span was entered.
    Enter,
    /// The span ended; `elapsed_ns` is set.
    Exit,
}

/// One emitted trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Enter or exit.
    pub kind: EventKind,
    /// Id of the span (unique within the tracer's lifetime).
    pub span_id: u64,
    /// Id of the enclosing span, if any.
    pub parent_id: Option<u64>,
    /// Span name (e.g. the wire method).
    pub name: String,
    /// Structured `key=value` context attached at build time.
    pub fields: Vec<(String, String)>,
    /// Wall time inside the span; exit events only.
    pub elapsed_ns: Option<u64>,
}

impl TraceEvent {
    /// The event as one JSON object (the stderr sink's line format).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"event\":\"");
        out.push_str(match self.kind {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
        });
        out.push_str("\",\"span\":");
        out.push_str(&self.span_id.to_string());
        if let Some(parent) = self.parent_id {
            out.push_str(",\"parent\":");
            out.push_str(&parent.to_string());
        }
        out.push_str(",\"name\":\"");
        escape_into(&mut out, &self.name);
        out.push('"');
        if let Some(ns) = self.elapsed_ns {
            out.push_str(",\"elapsed_ns\":");
            out.push_str(&ns.to_string());
        }
        for (k, v) in &self.fields {
            out.push_str(",\"");
            escape_into(&mut out, k);
            out.push_str("\":\"");
            escape_into(&mut out, v);
            out.push('"');
        }
        out.push('}');
        out
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Where trace events go.
pub trait TraceSink: Send + Sync {
    /// Receives one event. Called synchronously on the traced thread —
    /// sinks should be quick.
    fn event(&self, event: &TraceEvent);
}

/// A bounded in-memory buffer of the most recent events — the test (and
/// debugging) sink.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl RingSink {
    /// A ring holding at most `capacity` events; older ones are dropped.
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Drains and returns the buffered events.
    pub fn take(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("ring lock").drain(..).collect()
    }
}

impl TraceSink for RingSink {
    fn event(&self, event: &TraceEvent) {
        let mut events = self.events.lock().expect("ring lock");
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event.clone());
    }
}

/// Writes each event as one JSON line on stderr — the operator sink
/// behind [`TRACE_ENV`].
#[derive(Debug, Default)]
pub struct StderrJsonSink;

impl TraceSink for StderrJsonSink {
    fn event(&self, event: &TraceEvent) {
        let mut line = event.to_json();
        line.push('\n');
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
}

thread_local! {
    /// Innermost live span ids on this thread — the implicit parent
    /// chain for spans that don't set one explicitly.
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Hands out span ids and fans events out to the attached sinks.
#[derive(Default)]
pub struct Tracer {
    sinks: RwLock<Vec<Arc<dyn TraceSink>>>,
    /// Mirrors `!sinks.is_empty()` so the disabled fast path is one
    /// relaxed load, not a lock.
    active: AtomicBool,
    next_id: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer with no sinks (disabled until one is added).
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// A tracer that writes JSON lines to stderr when [`TRACE_ENV`] is
    /// set to a non-empty value, and is otherwise disabled.
    pub fn from_env() -> Tracer {
        let tracer = Tracer::new();
        if std::env::var(TRACE_ENV).is_ok_and(|v| !v.is_empty()) {
            tracer.add_sink(Arc::new(StderrJsonSink));
        }
        tracer
    }

    /// Attaches a sink.
    pub fn add_sink(&self, sink: Arc<dyn TraceSink>) {
        self.sinks.write().expect("tracer lock").push(sink);
        self.active.store(true, Ordering::Release);
    }

    /// True when at least one sink is attached. Callers may use this to
    /// skip building field strings entirely.
    pub fn enabled(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Starts building a span.
    pub fn span(&self, name: impl Into<String>) -> SpanBuilder<'_> {
        SpanBuilder {
            tracer: self,
            name: name.into(),
            fields: Vec::new(),
            parent: None,
        }
    }

    fn emit(&self, event: &TraceEvent) {
        for sink in self.sinks.read().expect("tracer lock").iter() {
            sink.event(event);
        }
    }
}

/// A span under construction — add fields, then [`SpanBuilder::enter`].
pub struct SpanBuilder<'t> {
    tracer: &'t Tracer,
    name: String,
    fields: Vec<(String, String)>,
    parent: Option<u64>,
}

impl<'t> SpanBuilder<'t> {
    /// Attaches one `key=value` field.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<String>) -> SpanBuilder<'t> {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Links an explicit parent span (overrides the thread's innermost
    /// live span).
    pub fn parent(mut self, parent_id: u64) -> SpanBuilder<'t> {
        self.parent = Some(parent_id);
        self
    }

    /// Emits the enter event and returns the guard whose drop emits the
    /// exit event. A disabled tracer returns an inert guard.
    pub fn enter(self) -> Span<'t> {
        if !self.tracer.enabled() {
            return Span {
                tracer: self.tracer,
                id: 0,
                live: false,
                name: String::new(),
                fields: Vec::new(),
                parent: None,
                started: Instant::now(),
            };
        }
        let id = self.tracer.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let parent = self
            .parent
            .or_else(|| SPAN_STACK.with(|s| s.borrow().last().copied()));
        let event = TraceEvent {
            kind: EventKind::Enter,
            span_id: id,
            parent_id: parent,
            name: self.name.clone(),
            fields: self.fields.clone(),
            elapsed_ns: None,
        };
        self.tracer.emit(&event);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        Span {
            tracer: self.tracer,
            id,
            live: true,
            name: self.name,
            fields: self.fields,
            parent,
            started: Instant::now(),
        }
    }
}

/// A live span; dropping it emits the exit event with elapsed time.
pub struct Span<'t> {
    tracer: &'t Tracer,
    id: u64,
    live: bool,
    name: String,
    fields: Vec<(String, String)>,
    parent: Option<u64>,
    started: Instant,
}

impl Span<'_> {
    /// The span's id — pass to [`SpanBuilder::parent`] to link a child
    /// on another thread.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let event = TraceEvent {
            kind: EventKind::Exit,
            span_id: self.id,
            parent_id: self.parent,
            name: std::mem::take(&mut self.name),
            fields: std::mem::take(&mut self.fields),
            elapsed_ns: Some(self.started.elapsed().as_nanos() as u64),
        };
        self.tracer.emit(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_link_parents() {
        let tracer = Tracer::new();
        let ring = Arc::new(RingSink::new(16));
        tracer.add_sink(Arc::clone(&ring) as Arc<dyn TraceSink>);
        {
            let outer = tracer.span("dispatch").field("method", "login").enter();
            assert!(outer.id() > 0);
            let _inner = tracer.span("store.read").enter();
        }
        let events = ring.take();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, EventKind::Enter);
        assert_eq!(events[0].name, "dispatch");
        assert_eq!(events[0].parent_id, None);
        // The inner span's parent is the outer span, implicitly.
        assert_eq!(events[1].name, "store.read");
        assert_eq!(events[1].parent_id, Some(events[0].span_id));
        // Exits carry elapsed time, innermost first.
        assert_eq!(events[2].kind, EventKind::Exit);
        assert_eq!(events[2].name, "store.read");
        assert!(events[2].elapsed_ns.is_some());
        assert_eq!(events[3].name, "dispatch");
        assert_eq!(
            events[3].fields,
            vec![("method".to_owned(), "login".to_owned())]
        );
    }

    #[test]
    fn explicit_parent_overrides_the_stack() {
        let tracer = Tracer::new();
        let ring = Arc::new(RingSink::new(8));
        tracer.add_sink(Arc::clone(&ring) as Arc<dyn TraceSink>);
        let a = tracer.span("a").enter();
        let _b = tracer.span("b").parent(a.id()).enter();
        let events = ring.events();
        assert_eq!(events[1].parent_id, Some(a.id()));
    }

    #[test]
    fn disabled_tracer_emits_nothing_and_allocates_no_ids() {
        let tracer = Tracer::new();
        assert!(!tracer.enabled());
        let span = tracer.span("quiet").enter();
        assert_eq!(span.id(), 0);
    }

    #[test]
    fn ring_sink_is_bounded() {
        let ring = RingSink::new(2);
        for i in 0..5 {
            ring.event(&TraceEvent {
                kind: EventKind::Enter,
                span_id: i,
                parent_id: None,
                name: "x".into(),
                fields: vec![],
                elapsed_ns: None,
            });
        }
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].span_id, 3);
        assert_eq!(events[1].span_id, 4);
    }

    #[test]
    fn json_lines_escape_fields() {
        let event = TraceEvent {
            kind: EventKind::Exit,
            span_id: 7,
            parent_id: Some(3),
            name: "a\"b".into(),
            fields: vec![("k".into(), "line\nbreak".into())],
            elapsed_ns: Some(1500),
        };
        assert_eq!(
            event.to_json(),
            r#"{"event":"exit","span":7,"parent":3,"name":"a\"b","elapsed_ns":1500,"k":"line\nbreak"}"#
        );
    }
}
