//! # telemetry — lock-cheap metrics and structured tracing
//!
//! The hub's north star is a production-scale service; a service that
//! size is operated from its numbers, not its logs. This crate is the
//! shared instrumentation substrate: [`Counter`]s, [`Gauge`]s,
//! log2-bucketed latency [`Histogram`]s, a name-keyed [`Registry`], and
//! a structured tracing facade ([`Tracer`]) with pluggable sinks.
//! Everything is `std`-only and fully offline, in the vendored-deps
//! spirit of `crates/vendor/`.
//!
//! # Bucket layout
//!
//! A [`Histogram`] holds [`BUCKETS`] (64) power-of-two buckets. A
//! recorded value `v` lands in bucket `0` when `v == 0`, otherwise in
//! bucket `min(floor(log2(v)) + 1, 63)` — so bucket `i` (for
//! `1 <= i <= 62`) covers the half-open range `[2^(i-1), 2^i)` and the
//! last bucket absorbs everything from `2^62` up. With microsecond
//! samples this spans sub-microsecond dispatches to ~146 years in 64
//! fixed slots: constant memory, no allocation on the record path, and
//! a bounded relative quantile error of at most 2× (one octave).
//!
//! Quantiles are derived from the buckets: `quantile(p)` walks the
//! cumulative counts to the bucket containing rank `ceil(p · count)`
//! and reports that bucket's upper bound, clamped to the exactly
//! tracked maximum. Because ranks grow monotonically with `p` and the
//! cumulative walk is monotone in the bucket index, quantiles are
//! monotone in `p`; because merge is element-wise addition (plus `max`
//! of maxima), merging snapshots is associative and commutative — both
//! properties are pinned by proptests in `tests/histogram_props.rs`.
//!
//! # Why snapshots are lock-free reads
//!
//! Every cell in a counter, gauge or histogram is a single atomic.
//! Writers use `fetch_add` / `fetch_max` with relaxed ordering; a
//! [`HistogramSnapshot`] (or [`RegistrySnapshot`]) is taken by plain
//! atomic loads — no lock is acquired, no writer is ever blocked, and a
//! snapshot in the middle of a storm of writes is still a sane (if
//! momentarily torn across *different* cells) view. The only locks in
//! the crate guard the registry's name→handle maps, and those are taken
//! once per handle lookup, never per recorded event: hot paths hold an
//! `Arc` to their instrument and update it with pure atomics.
//!
//! # Tracing
//!
//! [`Tracer::span`] builds a span (id, optional parent link, `key=value`
//! fields), [`SpanBuilder::enter`] emits an enter event and returns a
//! guard whose drop emits the exit event with the elapsed nanoseconds.
//! Parents default to the innermost live span on the current thread.
//! Sinks are pluggable: [`RingSink`] (bounded in-memory buffer, for
//! tests) and [`StderrJsonSink`] (one JSON object per line on stderr),
//! the latter auto-attached by [`Tracer::from_env`] when the
//! `GITCITE_TRACE` environment variable is set. With no sinks attached
//! the facade is a handful of branch instructions — cheap enough to
//! leave compiled into every dispatch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod registry;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Registry, RegistrySnapshot};
pub use trace::{
    EventKind, RingSink, Span, SpanBuilder, StderrJsonSink, TraceEvent, TraceSink, Tracer,
    TRACE_ENV,
};
