//! Property tests pinning the histogram algebra the whole system leans
//! on: merge is associative (and commutative, with an identity), and
//! quantiles are monotone in `p` and bounded by the true extremes.

use proptest::prelude::*;
use telemetry::{Histogram, HistogramSnapshot};

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 0..64)
}

proptest! {
    /// (a ∪ b) ∪ c == a ∪ (b ∪ c): shard aggregation can fold in any
    /// order and land on identical buckets, counts, sums and maxima.
    #[test]
    fn merge_is_associative(a in arb_samples(), b in arb_samples(), c in arb_samples()) {
        let (a, b, c) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    /// a ∪ b == b ∪ a, and the empty snapshot is the identity.
    #[test]
    fn merge_is_commutative_with_identity(a in arb_samples(), b in arb_samples()) {
        let (a, b) = (snapshot_of(&a), snapshot_of(&b));
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        prop_assert_eq!(a.merge(&HistogramSnapshot::default()), a);
    }

    /// Merging equals recording the concatenation of the sample sets.
    #[test]
    fn merge_equals_union_of_samples(a in arb_samples(), b in arb_samples()) {
        let merged = snapshot_of(&a).merge(&snapshot_of(&b));
        let mut all = a;
        all.extend(b);
        prop_assert_eq!(merged, snapshot_of(&all));
    }

    /// quantile(p) never decreases as p grows — including across a
    /// merge — and stays within [0-bucket, exact max].
    #[test]
    fn quantiles_are_monotone_and_bounded(
        a in arb_samples(),
        b in arb_samples(),
        ps in prop::collection::vec(any::<u64>(), 2..12),
    ) {
        let snap = snapshot_of(&a).merge(&snapshot_of(&b));
        let mut sorted: Vec<f64> = ps.iter().map(|&n| (n % 1001) as f64 / 1000.0).collect();
        sorted.sort_by(|x, y| x.partial_cmp(y).expect("ps are finite"));
        let mut last = 0u64;
        for &p in &sorted {
            let q = snap.quantile(p);
            prop_assert!(q >= last, "quantile({p}) = {q} < previous {last}");
            prop_assert!(q <= snap.max);
            last = q;
        }
    }

    /// The wire form (sparse pairs) is lossless.
    #[test]
    fn sparse_encoding_round_trips(a in arb_samples()) {
        let snap = snapshot_of(&a);
        let back = HistogramSnapshot::from_sparse(&snap.sparse(), snap.count, snap.sum, snap.max);
        prop_assert_eq!(back, snap);
    }
}
