//! Concurrency stress: one hub serving many clients at once.
//!
//! Readers generate citations and clone while writers add/modify/delete
//! citations and push. The test asserts the hub never deadlocks, never
//! loses a successful write, and keeps its audit sequence dense.

use citekit::Citation;
use gitlite::{path, RepoPath, Signature};
use hub::{Hub, Role};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn concurrent_readers_and_writers() {
    let hub = Hub::new("https://hub.example");
    hub.register_user("owner", "The Owner").unwrap();
    let owner = hub.login("owner").unwrap();
    let repo_id = hub.create_repo(&owner, "busy").unwrap();

    // Seed files f0..f7 via a push.
    let mut local = hub.clone_repo(&repo_id).unwrap();
    for i in 0..8 {
        local
            .worktree_mut()
            .write(
                &path(&format!("f{i}.txt")),
                format!("file {i}\n").into_bytes(),
            )
            .unwrap();
    }
    local
        .commit(Signature::new("The Owner", "o@x", 100), "seed")
        .unwrap();
    hub.push(&owner, &repo_id, "main", &local, "main", false)
        .unwrap();

    // Writers: four members each repeatedly cite "their" files.
    for w in 0..4 {
        let name = format!("member{w}");
        hub.register_user(&name, &format!("Member {w}")).unwrap();
        hub.add_member(&owner, &repo_id, &name, Role::Member)
            .unwrap();
    }

    let successes = AtomicUsize::new(0);
    let denials = AtomicUsize::new(0);

    crossbeam::scope(|scope| {
        // Writers.
        for w in 0..4 {
            let hub = &hub;
            let repo_id = &repo_id;
            let successes = &successes;
            scope.spawn(move |_| {
                let token = hub.login(&format!("member{w}")).unwrap();
                for round in 0..10 {
                    let file = path(&format!("f{}.txt", w * 2 + round % 2));
                    let citation =
                        Citation::builder(format!("c-{w}-{round}"), format!("Member {w}")).build();
                    // Add or modify depending on current state; both are
                    // legitimate outcomes under concurrency.
                    let added = hub.add_cite(&token, repo_id, "main", &file, citation.clone());
                    if added.is_err() {
                        let _ = hub.modify_cite(&token, repo_id, "main", &file, citation);
                    }
                    successes.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Readers: anonymous citation generation and clones.
        for _ in 0..4 {
            let hub = &hub;
            let repo_id = &repo_id;
            scope.spawn(move |_| {
                for i in 0..25 {
                    let q = path(&format!("f{}.txt", i % 8));
                    let c = hub.generate_citation(repo_id, "main", &q).unwrap();
                    assert!(!c.repo_name.is_empty());
                    if i % 10 == 0 {
                        let clone = hub.clone_repo(repo_id).unwrap();
                        assert!(clone.head_commit().is_ok());
                    }
                }
            });
        }
        // A hostile visitor hammering writes that must all be denied.
        {
            let hub = &hub;
            let repo_id = &repo_id;
            let denials = &denials;
            scope.spawn(move |_| {
                hub.register_user("intruder", "Intruder").unwrap();
                let token = hub.login("intruder").unwrap();
                for _ in 0..20 {
                    let r = hub.add_cite(
                        &token,
                        repo_id,
                        "main",
                        &RepoPath::root(),
                        Citation::builder("evil", "Intruder").build(),
                    );
                    assert!(r.is_err());
                    denials.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    })
    .unwrap();

    assert_eq!(successes.load(Ordering::Relaxed), 40);
    assert_eq!(denials.load(Ordering::Relaxed), 20);

    // The repository is intact and every written citation is resolvable.
    let log = hub.log(&repo_id, "main").unwrap();
    assert!(log.len() > 2, "writes landed as commits");
    for i in 0..8 {
        let c = hub
            .generate_citation(&repo_id, "main", &path(&format!("f{i}.txt")))
            .unwrap();
        assert!(!c.repo_name.is_empty());
    }
    // Audit log is dense and includes the denials.
    let audit = hub.audit_log();
    for (i, e) in audit.iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }
    let denied = audit
        .iter()
        .filter(|e| e.action == "add_cite" && !e.ok)
        .count();
    assert!(denied >= 20, "intruder denials audited (got {denied})");
}
