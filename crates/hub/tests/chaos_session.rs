//! Fault injection end to end: a client works through the socket-level
//! [`ChaosProxy`] (drops, stalls, truncation, bit-garbling on a seeded
//! schedule) and through the [`ChaosTransport`] wrapper (lost requests,
//! lost responses, synthesized busy refusals). The claims under test:
//! every fault degrades to a *typed* error — never a hang — retries are
//! bounded and only automatic for idempotent reads, and a session that
//! fights its way through register → push → clone → cite leaves zero
//! corrupted objects behind.

use gitlite::path;
use hub::{
    ChaosProxy, ChaosSchedule, ChaosTransport, Hub, HubClient, HubError, InProcess, ProxyConfig,
    RetryPolicy, SocketServer, TcpTransport, Token,
};
use std::sync::Arc;
use std::time::Duration;

/// Attempts per operation before the test declares a hang. Each failed
/// attempt lands on a fresh proxy connection (~half are fault-free), so
/// the odds of exhausting this honestly are astronomically small.
const ATTEMPTS: usize = 50;

fn serve() -> (Arc<Hub>, SocketServer) {
    let hub = Arc::new(Hub::new("https://hub.local"));
    let server = SocketServer::bind(Arc::clone(&hub), "127.0.0.1:0").expect("bind loopback");
    (hub, server)
}

#[test]
fn retry_policy_retries_idempotent_reads_only() {
    let hub = Hub::new("https://hub.local");
    let schedule = ChaosSchedule {
        seed: 1,
        lose_request: 0.0,
        lose_response: 0.0,
        busy: 1.0,
    };
    let client = HubClient::new(ChaosTransport::new(InProcess::new(&hub), schedule))
        .with_retry_policy(RetryPolicy {
            attempts: 3,
            base_delay_ms: 1,
            max_delay_ms: 2,
        });
    // An idempotent read is retried to the attempt cap, then surfaces
    // the typed refusal.
    assert!(matches!(
        client.list_repos(),
        Err(HubError::ServerBusy { .. })
    ));
    assert_eq!(client.transport().fault_counts().2, 3, "3 busy refusals");
    // A write is never retried blindly: one attempt, one refusal.
    assert!(matches!(
        client.register_user("ann", "Ann"),
        Err(HubError::ServerBusy { .. })
    ));
    assert_eq!(client.transport().fault_counts().2, 4, "exactly one more");
}

#[test]
fn lost_responses_leave_the_server_side_effect_standing() {
    let hub = Hub::new("https://hub.local");
    let schedule = ChaosSchedule {
        seed: 1,
        lose_request: 0.0,
        lose_response: 1.0,
        busy: 0.0,
    };
    let client = HubClient::new(ChaosTransport::new(InProcess::new(&hub), schedule));
    // The register executes server-side; only the reply is swallowed.
    // This asymmetry is exactly why writes are excluded from automatic
    // retry: replaying one would double the effect.
    assert!(matches!(
        client.register_user("ann", "Ann"),
        Err(HubError::TransportClosed(_))
    ));
    assert!(hub.login("ann").is_ok(), "effect stood despite lost reply");
}

/// Retries `f` with a fresh login per attempt (tokens are
/// connection-scoped over TCP, and every severed connection revokes
/// its tokens), until `done` observes the effect on the hub directly.
fn until_visible(
    client: &HubClient<TcpTransport>,
    f: impl Fn(&Token) -> Result<(), HubError>,
    done: impl Fn() -> bool,
) {
    for _ in 0..ATTEMPTS {
        if done() {
            return;
        }
        if let Ok(token) = client.login("ann") {
            let _ = f(&token);
        }
    }
    assert!(
        done(),
        "operation did not take effect within {ATTEMPTS} bounded attempts"
    );
}

fn eventually<T>(mut f: impl FnMut() -> Result<T, HubError>) -> T {
    let mut last = None;
    for _ in 0..ATTEMPTS {
        match f() {
            Ok(v) => return v,
            Err(e) => last = Some(e),
        }
    }
    panic!("no success within {ATTEMPTS} bounded attempts (last error: {last:?})");
}

#[test]
fn chaotic_session_completes_with_zero_corruption() {
    let (hub, server) = serve();
    let proxy = ChaosProxy::spawn(
        server.local_addr(),
        // Every connection draws a fault: the session only completes by
        // exploiting that faults trigger at a byte offset (small
        // exchanges slip through before the sever) and by retrying onto
        // fresh connections.
        ProxyConfig {
            seed: 42,
            fault_rate: 1.0,
            stall: Duration::from_millis(25),
        },
    )
    .expect("spawn proxy");

    // Even the initial dial crosses the proxy, so it too gets retried.
    // The short IO timeout is the no-hang guarantee under garbling: a
    // flipped length-prefix byte can leave the client waiting for bytes
    // the server never sent, and the timeout turns that wait into a
    // typed transport_closed on a connection the next attempt replaces.
    let client = HubClient::new(
        eventually(|| {
            TcpTransport::connect(proxy.local_addr())
                .map_err(|e| HubError::TransportClosed(e.to_string()))
        })
        .with_io_timeout(Some(Duration::from_millis(250))),
    );

    // register — idempotence recovered at the application level: done
    // when the hub can log the user in, and a UserExists refusal on a
    // replayed attempt is success, not failure.
    for _ in 0..ATTEMPTS {
        match client.register_user("ann", "Ann Author") {
            Ok(()) | Err(HubError::UserExists(_)) => break,
            Err(_) => continue,
        }
    }
    assert!(hub.login("ann").is_ok(), "registration never landed");

    // create the hosted repository
    until_visible(
        &client,
        |t| client.create_repo(t, "p").map(|_| ()),
        || hub.list_repos().contains(&"ann/p".to_owned()),
    );
    let repo_id = "ann/p".to_owned();

    // build local history on a clone pulled through the chaos
    let mut local = eventually(|| client.clone_repo(&repo_id));
    for i in 0..3 {
        local
            .worktree_mut()
            .write(
                &path("src/lib.rs"),
                format!("pub fn f{i}() {{}}\n").into_bytes(),
            )
            .unwrap();
        local
            .commit(
                gitlite::Signature::new("Ann Author", "ann@x", 100 + i),
                format!("c{i}"),
            )
            .unwrap();
    }
    let tip = local.branch_tip("main").unwrap();

    // push — a write, so never auto-retried; the loop replays it until
    // the hosted tip proves it landed (a reply lost after the server
    // applied the push also counts, caught by the postcondition).
    until_visible(
        &client,
        |t| {
            client
                .push(t, &repo_id, "main", &local, "main", false)
                .map(|_| ())
        },
        || {
            hub.clone_repo(&repo_id)
                .ok()
                .and_then(|r| r.branch_tip("main").ok())
                == Some(tip)
        },
    );

    // cite
    let citation = citekit::Citation::builder("core", "Ann Author")
        .author("Ann Author")
        .build();
    until_visible(
        &client,
        |t| {
            client
                .add_cite(t, &repo_id, "main", &path("src/lib.rs"), citation.clone())
                .map(|_| ())
        },
        || {
            // generate_citation synthesizes a root citation for uncited
            // paths, so only the stored entry proves the cite landed.
            matches!(
                hub.citation_entry(&repo_id, "main", &path("src/lib.rs")),
                Ok(Some(_))
            )
        },
    );

    // Clone back through the chaos and compare against the clean truth:
    // zero corrupted objects. (Integrity is enforced below the proxy —
    // length-prefixed frames refuse truncation, content addressing
    // refuses garbled objects — so a damaged transfer errors and is
    // retried rather than landing.)
    let chaotic_clone = eventually(|| client.clone_repo(&repo_id));
    // The cite committed server-side, so the hosted tip moved past the
    // pushed one; the clean in-process clone is the reference.
    let truth = hub.clone_repo(&repo_id).unwrap();
    assert_eq!(
        chaotic_clone.branch_tip("main").unwrap(),
        truth.branch_tip("main").unwrap()
    );
    assert_eq!(
        chaotic_clone
            .worktree()
            .read_text(&path("src/lib.rs"))
            .unwrap(),
        "pub fn f2() {}\n"
    );
    let served = eventually(|| client.generate_citation(&repo_id, "main", &path("src/lib.rs")));
    assert_eq!(served.repo_name, "core");

    assert!(
        proxy.faults_injected() > 0,
        "the schedule injected no faults — the test proved nothing"
    );
    proxy.shutdown();
    server.shutdown();
}
