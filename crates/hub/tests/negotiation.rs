//! Push negotiation end to end: the have/want exchange, the delta
//! bundle's object count (the acceptance bar — an incremental push of N
//! new commits ships O(N) objects, not the branch closure), pagination
//! semantics, and the failure modes (unanchored deltas, delta imports).

use gitlite::{path, ObjectId, Signature};
use hub::api::RepoBundle;
use hub::{Hub, HubClient, HubError};
use std::collections::HashSet;

fn sig(t: i64) -> Signature {
    Signature::new("Ann", "ann@x", t)
}

/// Hub + signed-in owner + hosted repo seeded with `commits` commits on
/// main, and a local clone at the same tip.
fn seeded(commits: usize) -> (Hub, hub::Token, String, gitlite::Repository) {
    let hub = Hub::new("https://h");
    hub.register_user("ann", "Ann").unwrap();
    let token = hub.login("ann").unwrap();
    let repo_id = hub.create_repo(&token, "p").unwrap();
    let mut local = hub.clone_repo(&repo_id).unwrap();
    for i in 0..commits {
        local
            .worktree_mut()
            .write(&path("churn.txt"), format!("rev {i}\n").into_bytes())
            .unwrap();
        local.commit(sig(100 + i as i64), format!("c{i}")).unwrap();
    }
    hub.push(&token, &repo_id, "main", &local, "main", false)
        .unwrap();
    (hub, token, repo_id, local)
}

fn advance(local: &mut gitlite::Repository, n: usize, from: i64) {
    for i in 0..n {
        local
            .worktree_mut()
            .write(&path("churn.txt"), format!("new {i}\n").into_bytes())
            .unwrap();
        local.commit(sig(from + i as i64), format!("n{i}")).unwrap();
    }
}

#[test]
fn negotiate_partitions_haves_by_reachability() {
    let (hub, _, repo_id, mut local) = seeded(5);
    let known = local.branch_tip("main").unwrap();
    advance(&mut local, 1, 1000);
    let unknown = local.branch_tip("main").unwrap();
    let client = HubClient::in_process(&hub);
    let reply = client.negotiate(&repo_id, &[known, unknown]).unwrap();
    assert_eq!(reply.common, vec![known]);
    assert_eq!(reply.missing, vec![unknown]);
}

/// The acceptance bar: pushing N new commits onto a deep shared history
/// ships O(N) objects — commit + tree + changed blob each — while the
/// full bundle ships the entire closure.
#[test]
fn incremental_push_ships_o_of_n_objects() {
    const BASE: usize = 120;
    const NEW: usize = 10;
    let (hub, token, repo_id, mut local) = seeded(BASE);
    advance(&mut local, NEW, 10_000);
    let tip = local.branch_tip("main").unwrap();

    let full = RepoBundle::from_branch(&local, "main").unwrap();
    let client = HubClient::in_process(&hub);
    let reply = client
        .negotiate(&repo_id, &local.first_parent_chain(tip).unwrap())
        .unwrap();
    let common: HashSet<ObjectId> = reply.common.into_iter().collect();
    let delta = RepoBundle::delta_from_branch(&local, "main", &common).unwrap();

    // Each new commit lands one commit, one root tree and one blob.
    assert!(delta.is_delta());
    assert_eq!(delta.objects.len(), NEW * 3, "delta is not O(N)");
    // The full closure carries the whole history.
    assert!(
        full.objects.len() > BASE,
        "full bundle unexpectedly small: {}",
        full.objects.len()
    );
    assert!(delta.objects.len() * 10 < full.objects.len());

    // And the delta actually lands: the negotiated client push succeeds
    // and the hosted branch serves the new tip.
    let pushed = client
        .push(&token, &repo_id, "main", &local, "main", false)
        .unwrap();
    assert_eq!(pushed, tip);
    assert_eq!(hub.log(&repo_id, "main").unwrap().len(), BASE + NEW + 1);
}

#[test]
fn negotiated_push_round_trips_content() {
    let (hub, token, repo_id, mut local) = seeded(20);
    local
        .worktree_mut()
        .write(&path("src/new.rs"), &b"pub fn f() {}\n"[..])
        .unwrap();
    advance(&mut local, 3, 5_000);
    let client = HubClient::in_process(&hub);
    client
        .push(&token, &repo_id, "main", &local, "main", false)
        .unwrap();
    assert_eq!(
        hub.read_file(&repo_id, "main", &path("src/new.rs"))
            .unwrap(),
        b"pub fn f() {}\n"
    );
}

#[test]
fn sync_skips_the_push_when_server_is_current() {
    let (hub, token, repo_id, mut local) = seeded(5);
    let client = HubClient::in_process(&hub);
    let tip = local.branch_tip("main").unwrap();
    let before = hub.audit_log().len();
    // Server already has the tip: no push request is issued at all.
    assert_eq!(
        client
            .sync(&token, &repo_id, "main", &local, "main")
            .unwrap(),
        tip
    );
    let after = hub.audit_log();
    assert!(
        !after[before..].iter().any(|e| e.action == "push"),
        "sync pushed despite an up-to-date server"
    );
    // Behind: sync pushes the delta.
    advance(&mut local, 2, 2_000);
    let new_tip = local.branch_tip("main").unwrap();
    assert_eq!(
        client
            .sync(&token, &repo_id, "main", &local, "main")
            .unwrap(),
        new_tip
    );
    assert_eq!(hub.log(&repo_id, "main").unwrap()[0].id, new_tip);
}

/// The tip being reachable from *some* branch is not "up to date": sync
/// must still advance the branch it was asked about.
#[test]
fn sync_pushes_when_tip_sits_on_another_branch() {
    let (hub, token, repo_id, mut local) = seeded(5);
    advance(&mut local, 2, 2_000);
    let tip = local.branch_tip("main").unwrap();
    let client = HubClient::in_process(&hub);
    // Land the tip on a side branch only: hosted "dev" has it, "main" lags.
    client
        .push(&token, &repo_id, "dev", &local, "main", false)
        .unwrap();
    assert_ne!(hub.log(&repo_id, "main").unwrap()[0].id, tip);
    // sync targets main — reachability via dev must not fool it.
    assert_eq!(
        client
            .sync(&token, &repo_id, "main", &local, "main")
            .unwrap(),
        tip
    );
    assert_eq!(hub.log(&repo_id, "main").unwrap()[0].id, tip);
    // And a branch the server has never seen is pushed into existence.
    assert_eq!(
        client
            .sync(&token, &repo_id, "feature", &local, "main")
            .unwrap(),
        tip
    );
    assert_eq!(hub.log(&repo_id, "feature").unwrap()[0].id, tip);
}

/// On pack-backed repositories whose commit-graph covers the tips (after
/// a maintenance sweep), negotiate answers from the graph — same
/// partition as the decode path.
#[test]
fn negotiate_answers_from_the_commit_graph_after_maintenance() {
    let dir = std::env::temp_dir().join(format!("gitcite-negotiate-graph-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let hub = Hub::with_pack_storage("https://h", &dir).unwrap();
    hub.register_user("ann", "Ann").unwrap();
    let token = hub.login("ann").unwrap();
    let repo_id = hub.create_repo(&token, "p").unwrap();
    let mut local = hub.clone_repo(&repo_id).unwrap();
    for i in 0..25 {
        local
            .worktree_mut()
            .write(&path("churn.txt"), format!("rev {i}\n").into_bytes())
            .unwrap();
        local.commit(sig(100 + i), format!("c{i}")).unwrap();
    }
    hub.push(&token, &repo_id, "main", &local, "main", false)
        .unwrap();
    // Maintenance packs the store and writes the commit-graph.
    hub.maintenance().unwrap();
    assert!(hub
        .store_stats(&repo_id)
        .unwrap()
        .graph_commits
        .is_some_and(|n| n >= 25));

    let shared_tip = local.branch_tip("main").unwrap();
    advance(&mut local, 2, 2_000);
    let chain = local
        .first_parent_chain(local.branch_tip("main").unwrap())
        .unwrap();
    let client = HubClient::in_process(&hub);
    let reply = client.negotiate(&repo_id, &chain).unwrap();
    assert_eq!(reply.missing.len(), 2, "the two new commits are missing");
    assert!(reply.common.contains(&shared_tip));
    assert_eq!(reply.common.len(), chain.len() - 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unanchored_delta_is_refused_before_touching_the_branch() {
    let (hub, token, repo_id, mut local) = seeded(5);
    let old_tip = hub.log(&repo_id, "main").unwrap()[0].id;
    advance(&mut local, 2, 2_000);
    // Fabricate a delta claiming a basis the server has never seen.
    let bogus = ObjectId::hash_bytes(b"never pushed");
    let mut common = HashSet::new();
    common.insert(local.branch_tip("main").unwrap());
    let mut delta = RepoBundle::delta_from_branch(&local, "main", &common).unwrap();
    delta.basis = vec![bogus];
    let resp = hub.dispatch(hub::ApiRequest::Push {
        token: token.as_str().to_owned(),
        repo_id: repo_id.clone(),
        branch: "main".into(),
        force: false,
        bundle: delta,
    });
    assert!(matches!(
        resp.into_result(),
        Err(HubError::Git(gitlite::GitError::ObjectNotFound(id))) if id == bogus
    ));
    // The branch is untouched.
    assert_eq!(hub.log(&repo_id, "main").unwrap()[0].id, old_tip);
}

#[test]
fn short_delta_fails_connectivity_not_corruption() {
    let (hub, token, repo_id, mut local) = seeded(5);
    advance(&mut local, 3, 2_000);
    let chain = local
        .first_parent_chain(local.branch_tip("main").unwrap())
        .unwrap();
    let client = HubClient::in_process(&hub);
    let reply = client.negotiate(&repo_id, &chain).unwrap();
    let common: HashSet<ObjectId> = reply.common.into_iter().collect();
    let mut delta = RepoBundle::delta_from_branch(&local, "main", &common).unwrap();
    // Drop one middle commit object: the new tip's history has a hole.
    let victim = chain[1];
    delta.objects.retain(|(id, _)| *id != victim);
    let resp = hub.dispatch(hub::ApiRequest::Push {
        token: token.as_str().to_owned(),
        repo_id: repo_id.clone(),
        branch: "main".into(),
        force: false,
        bundle: delta,
    });
    assert!(matches!(
        resp.into_result(),
        Err(HubError::Git(gitlite::GitError::ObjectNotFound(_)))
    ));
    // The branch still serves its complete old history.
    assert_eq!(hub.log(&repo_id, "main").unwrap().len(), 6);
}

#[test]
fn delta_bundles_cannot_import_or_materialize() {
    let (hub, token, _, mut local) = seeded(3);
    advance(&mut local, 1, 2_000);
    let mut common = HashSet::new();
    common.insert(
        local
            .first_parent_chain(local.branch_tip("main").unwrap())
            .unwrap()[1],
    );
    let delta = RepoBundle::delta_from_branch(&local, "main", &common).unwrap();
    assert!(delta.is_delta());
    // Standalone materialization refuses.
    assert!(matches!(
        delta.into_repository(Box::new(gitlite::MemStore::new())),
        Err(gitlite::GitError::ObjectNotFound(_))
    ));
    // Import refuses with bad_request.
    let resp = hub.dispatch(hub::ApiRequest::ImportRepo {
        token: token.as_str().to_owned(),
        name: "q".into(),
        bundle: delta,
    });
    assert!(matches!(resp.into_result(), Err(HubError::BadRequest(_))));
}

// ----- pagination ----------------------------------------------------------

#[test]
fn log_pages_are_stable_while_the_branch_advances() {
    let (hub, token, repo_id, mut local) = seeded(30);
    let client = HubClient::in_process(&hub);
    let full = hub.log(&repo_id, "main").unwrap();

    let first = client.log_page(&repo_id, "main", None, Some(10)).unwrap();
    assert_eq!(first.items.len(), 10);
    assert_eq!(first.items, full[..10]);
    let cursor = first.next.clone().expect("more pages");

    // A writer advances the branch between pages...
    advance(&mut local, 2, 3_000);
    client
        .push(&token, &repo_id, "main", &local, "main", false)
        .unwrap();

    // ...and the continuation still serves the pinned walk, no shifted
    // or duplicated entries.
    let mut rest = Vec::new();
    let mut cursor = Some(cursor);
    while let Some(c) = cursor {
        let page = client
            .log_page(&repo_id, "main", Some(&c), Some(10))
            .unwrap();
        rest.extend(page.items);
        cursor = page.next;
    }
    let mut all = first.items;
    all.extend(rest);
    assert_eq!(all, full);

    // A fresh walk sees the new commits.
    let fresh = client.log_page(&repo_id, "main", None, Some(10)).unwrap();
    assert_eq!(fresh.items[0].id, local.branch_tip("main").unwrap());
}

#[test]
fn audit_and_repo_listings_paginate() {
    let hub = Hub::new("https://h");
    hub.register_user("ann", "Ann").unwrap();
    let token = hub.login("ann").unwrap();
    for name in ["a", "b", "c", "d", "e"] {
        hub.create_repo(&token, name).unwrap();
    }
    let client = HubClient::in_process(&hub);

    // Repo listing: 2 + 2 + 1, ordered, no repeats.
    let mut names = Vec::new();
    let mut cursor = None;
    loop {
        let page = client.list_repos_page(cursor.as_deref(), Some(2)).unwrap();
        assert!(page.items.len() <= 2);
        names.extend(page.items);
        match page.next {
            Some(next) => cursor = Some(next),
            None => break,
        }
    }
    assert_eq!(names, hub.list_repos());

    // Audit pages concatenate to the full log.
    let full = hub.audit_log();
    let mut events = Vec::new();
    let mut cursor = None;
    loop {
        let page = client.audit_log_page(cursor.as_deref(), Some(3)).unwrap();
        events.extend(page.items);
        match page.next {
            Some(next) => cursor = Some(next),
            None => break,
        }
    }
    assert_eq!(events, full);
}

#[test]
fn page_limits_are_clamped_and_bad_cursors_refused() {
    let (hub, _, repo_id, _) = seeded(3);
    let client = HubClient::in_process(&hub);
    // limit 0 falls back to the default instead of an infinite loop.
    let page = client.log_page(&repo_id, "main", None, Some(0)).unwrap();
    assert_eq!(page.items.len(), 4);
    assert!(page.next.is_none());
    // Garbage cursors are a typed bad_request, not a panic.
    assert!(matches!(
        client.log_page(&repo_id, "main", Some("not-a-cursor"), None),
        Err(HubError::BadRequest(_))
    ));
    assert!(matches!(
        client.audit_log_page(Some("x"), None),
        Err(HubError::BadRequest(_))
    ));
}
