//! Chaos on the replication link: a follower pulls from its primary
//! through a [`ChaosProxy`] where **every** connection draws a seeded
//! fault (drop, stall, truncation, bit-garbling), and must still
//! converge to byte-identical refs and objects with zero corruption.
//!
//! The layers that make this hold are the ones under test: every call a
//! sync round makes (`repl_status`, `repl_fetch`, `audit_log_page`) is
//! idempotent, so the pull client retries them onto fresh connections;
//! a garbled envelope fails to parse into a typed `protocol` error and
//! fails the *round*, never the hub; and a damaged bundle is refused
//! wholesale by hash-verified insertion plus the connectivity walk, so
//! partial state never lands — the next round simply re-pulls.

use citekit::Citation;
use gitlite::{path, Signature};
use hub::{ChaosProxy, Follower, ProxyConfig, RepoBundle, SocketServer, TcpTransport};
use std::sync::Arc;
use std::time::Duration;

/// Sync rounds before the test declares the link dead. Each failed
/// round retries its faulted calls on fresh proxy connections, so the
/// odds of exhausting this honestly are astronomically small.
const ROUNDS: usize = 200;

/// Drives sync rounds through the chaos until one fully succeeds.
/// Returns how many rounds failed first.
fn replicate(engine: &Follower<TcpTransport>) -> usize {
    let mut failed = 0;
    for _ in 0..ROUNDS {
        match engine.sync_once() {
            Ok(_) => return failed,
            Err(_) => failed += 1,
        }
    }
    panic!("replication never completed a round within {ROUNDS} attempts");
}

/// The canonical byte-level state of one hosted repository, sorted so
/// two independently grown stores compare equal iff identical.
fn frontier(hub: &hub::Hub, repo_id: &str) -> RepoBundle {
    let repo = hub.clone_repo(repo_id).unwrap();
    let mut bundle = RepoBundle::from_repository(&repo).unwrap();
    bundle.refs.sort();
    bundle.objects.sort_by_key(|entry| entry.0);
    bundle
}

#[test]
fn follower_converges_byte_identically_through_total_chaos() {
    // The primary serves its socket cleanly; only the replication link
    // crosses the proxy, which faults every single connection.
    let primary = Arc::new(hub::Hub::new("https://primary.local"));
    let server = SocketServer::bind(Arc::clone(&primary), "127.0.0.1:0").expect("bind primary");
    let proxy = ChaosProxy::spawn(
        server.local_addr(),
        ProxyConfig {
            seed: 7,
            fault_rate: 1.0,
            stall: Duration::from_millis(25),
        },
    )
    .expect("spawn proxy");

    let follower_hub = Arc::new(hub::Hub::new("https://follower.local"));
    // The short IO timeout is the no-hang guarantee: a garbled length
    // prefix can leave the puller waiting for bytes the primary never
    // sent, and the timeout turns that into a typed error on a
    // connection the next attempt replaces.
    let transport = TcpTransport::connect(proxy.local_addr())
        .expect("dial proxy")
        .with_io_timeout(Some(Duration::from_millis(250)));
    let engine = Follower::new(
        Arc::clone(&follower_hub),
        transport,
        server.local_addr().to_string(),
        30,
    );

    // register → push on the primary.
    primary.register_user("ann", "Ann Author").unwrap();
    let token = primary.login("ann").unwrap();
    let repo_id = primary.create_repo(&token, "p").unwrap();
    let mut local = primary.clone_repo(&repo_id).unwrap();
    for i in 0..3 {
        local
            .worktree_mut()
            .write(
                &path("src/lib.rs"),
                format!("pub fn f{i}() {{}}\n").into_bytes(),
            )
            .unwrap();
        local
            .commit(
                Signature::new("Ann Author", "ann@x", 100 + i),
                format!("c{i}"),
            )
            .unwrap();
    }
    primary
        .push(&token, &repo_id, "main", &local, "main", false)
        .unwrap();

    // replicate: the bootstrap bundle fights its way through the chaos.
    let failed_bootstrap = replicate(&engine);
    assert_eq!(
        primary.audit_log(),
        follower_hub.audit_log(),
        "audit logs differ after bootstrap"
    );
    assert_eq!(
        frontier(&primary, &repo_id),
        frontier(&follower_hub, &repo_id),
        "bootstrap did not converge byte-identically"
    );

    // clone-from-follower: served locally, off the replica.
    let replica_clone = follower_hub.clone_repo(&repo_id).unwrap();
    assert_eq!(
        replica_clone
            .worktree()
            .read_text(&path("src/lib.rs"))
            .unwrap(),
        "pub fn f2() {}\n"
    );

    // cite on the primary, then one more chaotic catch-up round.
    primary
        .add_cite(
            &token,
            &repo_id,
            "main",
            &path("src/lib.rs"),
            Citation::builder("core", "Ann Author")
                .author("Ann Author")
                .build(),
        )
        .unwrap();
    let failed_catchup = replicate(&engine);
    assert_eq!(primary.audit_log(), follower_hub.audit_log());
    assert_eq!(
        frontier(&primary, &repo_id),
        frontier(&follower_hub, &repo_id),
        "catch-up did not converge byte-identically"
    );
    // The replicated citation serves from the follower.
    let served = follower_hub
        .generate_citation(&repo_id, "main", &path("src/lib.rs"))
        .unwrap();
    assert_eq!(served.repo_name, "core");

    assert!(
        proxy.faults_injected() > 0,
        "the schedule injected no faults — the test proved nothing"
    );
    assert!(engine.state().rounds() >= 2, "both syncs completed");
    eprintln!(
        "chaos replication: {} faults injected, {} failed bootstrap rounds, {} failed catch-up rounds",
        proxy.faults_injected(),
        failed_bootstrap,
        failed_catchup
    );
    proxy.shutdown();
    server.shutdown();
}
