//! Loopback socket tests: a real TCP round trip through
//! [`hub::SocketServer`] / [`hub::TcpTransport`] — a full
//! auth → push → clone → cite session over the wire, plus the
//! per-connection auth-token scoping guarantees.

use gitlite::{path, Signature};
use hub::{Hub, HubClient, HubError, SocketServer};
use std::sync::Arc;
use std::time::Duration;

fn serve() -> (Arc<Hub>, SocketServer) {
    let hub = Arc::new(Hub::new("https://hub.local"));
    let server = SocketServer::bind(Arc::clone(&hub), "127.0.0.1:0").expect("bind loopback");
    (hub, server)
}

#[test]
fn full_session_over_tcp() {
    let (_hub, server) = serve();
    let client = HubClient::connect(server.local_addr()).expect("connect");

    // auth
    client.register_user("ann", "Ann Author").unwrap();
    let token = client.login("ann").unwrap();
    assert_eq!(client.whoami(&token).unwrap().username, "ann");

    // create + push (negotiated v2 over the socket)
    let repo_id = client.create_repo(&token, "p").unwrap();
    let mut local = client.clone_repo(&repo_id).unwrap();
    local
        .worktree_mut()
        .write(&path("src/lib.rs"), &b"pub fn f() {}\n"[..])
        .unwrap();
    local
        .commit(Signature::new("Ann Author", "ann@x", 100), "add lib")
        .unwrap();
    for i in 0..5 {
        local
            .worktree_mut()
            .write(&path("churn.txt"), format!("rev {i}\n").into_bytes())
            .unwrap();
        local
            .commit(
                Signature::new("Ann Author", "ann@x", 101 + i),
                format!("c{i}"),
            )
            .unwrap();
    }
    let tip = local.branch_tip("main").unwrap();
    assert_eq!(
        client
            .push(&token, &repo_id, "main", &local, "main", false)
            .unwrap(),
        tip
    );

    // clone back over the wire and compare
    let cloned = client.clone_repo(&repo_id).unwrap();
    assert_eq!(cloned.branch_tip("main").unwrap(), tip);
    assert_eq!(
        cloned.worktree().read_text(&path("src/lib.rs")).unwrap(),
        "pub fn f() {}\n"
    );

    // cite over the wire
    let citation = citekit::Citation::builder("core", "Ann Author")
        .author("Ann Author")
        .build();
    client
        .add_cite(&token, &repo_id, "main", &path("src/lib.rs"), citation)
        .unwrap();
    let served = client
        .generate_citation(&repo_id, "main", &path("src/lib.rs"))
        .unwrap();
    assert_eq!(served.repo_name, "core");

    // paginated reads over the wire
    let page = client.log_page(&repo_id, "main", None, Some(3)).unwrap();
    assert_eq!(page.items.len(), 3);
    assert!(page.next.is_some());

    server.shutdown();
}

#[test]
fn tokens_are_scoped_to_their_connection() {
    let (_hub, server) = serve();
    let conn_a = HubClient::connect(server.local_addr()).unwrap();
    conn_a.register_user("ann", "Ann").unwrap();
    let token = conn_a.login("ann").unwrap();
    conn_a.create_repo(&token, "p").unwrap();

    // The same (valid!) token is refused on a different connection.
    let conn_b = HubClient::connect(server.local_addr()).unwrap();
    assert!(matches!(conn_b.whoami(&token), Err(HubError::AuthFailed)));
    assert!(matches!(
        conn_b.create_repo(&token, "q"),
        Err(HubError::AuthFailed)
    ));
    // Anonymous reads on connection B still work.
    assert_eq!(conn_b.list_repos().unwrap(), vec!["ann/p".to_owned()]);
    // Connection A keeps using its token normally.
    assert_eq!(conn_a.whoami(&token).unwrap().username, "ann");
}

#[test]
fn disconnect_revokes_the_connection_tokens() {
    let (hub, server) = serve();
    let conn = HubClient::connect(server.local_addr()).unwrap();
    conn.register_user("ann", "Ann").unwrap();
    let token = conn.login("ann").unwrap();
    assert_eq!(hub.whoami(&token).unwrap().username, "ann");

    drop(conn); // hang up
                // The serving thread revokes on EOF; poll briefly for it.
    let mut revoked = false;
    for _ in 0..100 {
        if matches!(hub.whoami(&token), Err(HubError::AuthFailed)) {
            revoked = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(revoked, "token outlived its connection");
}

/// The in-process operator/test seams are not part of the network
/// surface: anyone who can reach the port must not skew the platform
/// clock or trigger a global gc sweep.
#[test]
fn operator_methods_are_refused_over_the_socket() {
    use hub::Transport;
    let (hub, server) = serve();
    let transport = hub::TcpTransport::connect(server.local_addr()).unwrap();
    let reply = transport.send(r#"{"v":1,"method":"advance_clock","params":{"ts":9000}}"#);
    assert!(reply.contains(r#""code":"permission_denied""#), "{reply}");
    let reply = transport.send(r#"{"v":1,"method":"maintenance","params":{}}"#);
    assert!(reply.contains(r#""code":"permission_denied""#), "{reply}");
    // The in-process operator path is untouched.
    hub.advance_clock_to(5);
    assert!(hub.maintenance().is_ok());
}

#[test]
fn v1_and_v2_envelopes_share_one_socket() {
    use hub::Transport;
    let (_hub, server) = serve();
    let transport = hub::TcpTransport::connect(server.local_addr()).unwrap();
    // Raw v1 line.
    let reply = transport.send(r#"{"v":1,"method":"list_repos","params":{}}"#);
    assert!(reply.starts_with(r#"{"v":1,"#), "{reply}");
    // Raw v2 line on the same connection.
    let reply = transport.send(r#"{"v":2,"method":"list_repos_page","params":{}}"#);
    assert!(reply.starts_with(r#"{"v":2,"#), "{reply}");
    // Garbage gets a protocol error, and the connection survives.
    let reply = transport.send("not json");
    assert!(reply.contains(r#""code":"protocol""#), "{reply}");
    let reply = transport.send(r#"{"v":1,"method":"list_repos","params":{}}"#);
    assert!(reply.contains(r#""type":"names""#), "{reply}");
}

// ---------------------------------------------------------------------
// Overload shedding

fn serve_with(config: hub::ServerConfig) -> (Arc<Hub>, SocketServer) {
    let hub = Arc::new(Hub::new("https://hub.local"));
    let server =
        SocketServer::bind_with(Arc::clone(&hub), "127.0.0.1:0", config).expect("bind loopback");
    (hub, server)
}

/// A client that surfaces the first refusal instead of retrying through
/// it — shedding assertions must observe `server_busy` itself.
fn no_retry_client(addr: std::net::SocketAddr) -> HubClient<hub::TcpTransport> {
    HubClient::new(hub::TcpTransport::connect(addr).unwrap()).with_retry_policy(hub::RetryPolicy {
        attempts: 1,
        base_delay_ms: 1,
        max_delay_ms: 1,
    })
}

#[test]
fn connections_over_the_cap_are_shed_with_server_busy() {
    let (hub, server) = serve_with(hub::ServerConfig {
        max_open_conns: 1,
        ..hub::ServerConfig::default()
    });
    let conn_a = no_retry_client(server.local_addr());
    conn_a.register_user("ann", "Ann").unwrap(); // forces the accept
    let conn_b = no_retry_client(server.local_addr());
    // The shed connection still negotiated framing; its first real
    // request is refused with the typed error and a retry-after hint,
    // and nothing it sent reached dispatch.
    assert!(matches!(
        conn_b.list_repos(),
        Err(HubError::ServerBusy { retry_after }) if retry_after >= 1
    ));
    let snap = hub.server_metrics(None).unwrap();
    let limits = snap.limits.expect("shed counter published");
    assert!(limits.conns_shed >= 1, "{limits:?}");

    // Capacity freed (conn_a hangs up) means new connections are served
    // again — degradation is graceful in both directions.
    drop(conn_a);
    let mut served = false;
    for _ in 0..200 {
        if no_retry_client(server.local_addr()).list_repos().is_ok() {
            served = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(served, "server never recovered after load dropped");
    server.shutdown();
}

#[test]
fn per_ip_cap_sheds_the_connection_hog() {
    let (_hub, server) = serve_with(hub::ServerConfig {
        max_conns_per_ip: 2,
        ..hub::ServerConfig::default()
    });
    let conn_a = no_retry_client(server.local_addr());
    let conn_b = no_retry_client(server.local_addr());
    conn_a.register_user("ann", "Ann").unwrap();
    conn_b.register_user("bob", "Bob").unwrap();
    // Everything comes from 127.0.0.1, so the third connection trips
    // the per-IP cap even though the global cap is nowhere near.
    let conn_c = no_retry_client(server.local_addr());
    assert!(matches!(
        conn_c.list_repos(),
        Err(HubError::ServerBusy { .. })
    ));
    // The two under-cap connections keep working.
    assert_eq!(
        conn_a
            .whoami(&conn_a.login("ann").unwrap())
            .unwrap()
            .username,
        "ann"
    );
    assert_eq!(
        conn_b
            .whoami(&conn_b.login("bob").unwrap())
            .unwrap()
            .username,
        "bob"
    );
    server.shutdown();
}
