//! Hub on durable packfile storage: server-side repositories created
//! through `Hub::with_pack_storage` live on `CachedStore<PackStore>`, so
//! pushed objects are durable on disk, survive maintenance repacks, and
//! keep serving clones and citation generation.

use gitlite::{path, ObjectStore, PackStore, Signature};
use hub::Hub;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("hub-pack-storage-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn hosted_repos_persist_through_pack_storage() {
    let data_dir = temp_dir("hosted");
    let hub = Hub::with_pack_storage("https://hub.example", &data_dir).unwrap();
    hub.register_user("owner", "The Owner").unwrap();
    let token = hub.login("owner").unwrap();
    let repo_id = hub.create_repo(&token, "packed").unwrap();

    // Push a commit; its objects must land on disk, not just in memory.
    let mut local = hub.clone_repo(&repo_id).unwrap();
    local
        .worktree_mut()
        .write(&path("src/lib.rs"), &b"pub fn f() {}\n"[..])
        .unwrap();
    local
        .commit(Signature::new("The Owner", "o@x", 100), "server work")
        .unwrap();
    let tip = hub
        .push(&token, &repo_id, "main", &local, "main", false)
        .unwrap();

    let repo_root = data_dir.join("repo-0");
    let fresh = PackStore::open(&repo_root).unwrap();
    assert!(fresh.contains(tip), "pushed tip is durable on disk");

    // Server-side maintenance: repack the repository's store, then make
    // sure the hub still serves reads (its buffered handle is
    // content-addressed, so the rewrite is invisible to it).
    let mut maintenance = PackStore::open(&repo_root).unwrap();
    let report = maintenance.gc(&[tip]).unwrap();
    assert!(report.packed > 0);
    assert_eq!(maintenance.loose_len(), 0);

    let clone = hub.clone_repo(&repo_id).unwrap();
    assert_eq!(clone.head_commit().unwrap(), tip);
    let citation = hub.generate_citation(&repo_id, "main", &path("src/lib.rs"));
    assert!(citation.is_ok());

    // gc also wrote the commit-graph sidecar; a reopened store serves
    // history walks from it.
    let graphed = PackStore::open(&repo_root).unwrap();
    let graph = graphed.commit_graph().expect("gc wrote a commit-graph");
    assert!(graph.contains(tip));

    // And a store reopened after the repack serves the same history.
    let reopened = PackStore::open(&repo_root).unwrap();
    assert!(reopened.contains(tip));
    assert_eq!(reopened.pack_count(), 1);

    // A later hub over the same data directory must not adopt (or clobber)
    // the previous run's repo-0: its first repository skips to repo-1.
    let hub2 = Hub::with_pack_storage("https://hub.example", &data_dir).unwrap();
    hub2.register_user("owner", "The Owner").unwrap();
    let token2 = hub2.login("owner").unwrap();
    hub2.create_repo(&token2, "second-run").unwrap();
    assert!(data_dir.join("repo-1").exists());
    let untouched = PackStore::open(&repo_root).unwrap();
    assert!(untouched.contains(tip), "first run's objects are untouched");
    std::fs::remove_dir_all(&data_dir).unwrap();
}

#[test]
fn maintenance_builds_the_commit_graph_and_stats_report_it() {
    let data_dir = temp_dir("graph");
    let hub = Hub::with_pack_storage("https://hub.example", &data_dir).unwrap();
    hub.register_user("owner", "The Owner").unwrap();
    let token = hub.login("owner").unwrap();
    let repo_id = hub.create_repo(&token, "graphed").unwrap();

    // A few versions of history through the hub's own write paths.
    let mut local = hub.clone_repo(&repo_id).unwrap();
    for i in 0..3 {
        local
            .worktree_mut()
            .write(&path(&format!("f{i}.txt")), format!("v{i}\n").into_bytes())
            .unwrap();
        local
            .commit(Signature::new("The Owner", "o@x", 100 + i), format!("V{i}"))
            .unwrap();
    }
    hub.push(&token, &repo_id, "main", &local, "main", false)
        .unwrap();
    let log_before = hub.log(&repo_id, "main").unwrap();
    assert!(log_before.len() >= 4);

    // Before maintenance: no graph yet, stats say so.
    let stats = hub.store_stats(&repo_id).unwrap();
    assert_eq!(stats.graph_commits, None, "no graph before the first gc");

    // The hub's maintenance sweep runs PackStore::gc per repo, which now
    // also writes the commit-graph — and the refreshed handle serves the
    // log/credit/audit read paths from it.
    let sweep = hub.maintenance().unwrap();
    assert!(sweep.iter().all(|r| r.supported && r.error.is_none()));
    let stats = hub.store_stats(&repo_id).unwrap();
    assert_eq!(
        stats.graph_commits,
        Some(log_before.len() as u64),
        "stats report the graph covering the full history"
    );
    assert_eq!(
        hub.log(&repo_id, "main").unwrap(),
        log_before,
        "graph-served log is identical to the pre-graph one"
    );
    std::fs::remove_dir_all(&data_dir).unwrap();
}
