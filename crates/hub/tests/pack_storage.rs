//! Hub on durable packfile storage: server-side repositories created
//! through `Hub::with_pack_storage` live on `CachedStore<PackStore>`, so
//! pushed objects are durable on disk, survive maintenance repacks, and
//! keep serving clones and citation generation.

use gitlite::{path, ObjectStore, PackStore, Signature};
use hub::Hub;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("hub-pack-storage-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn hosted_repos_persist_through_pack_storage() {
    let data_dir = temp_dir("hosted");
    let hub = Hub::with_pack_storage("https://hub.example", &data_dir).unwrap();
    hub.register_user("owner", "The Owner").unwrap();
    let token = hub.login("owner").unwrap();
    let repo_id = hub.create_repo(&token, "packed").unwrap();

    // Push a commit; its objects must land on disk, not just in memory.
    let mut local = hub.clone_repo(&repo_id).unwrap();
    local
        .worktree_mut()
        .write(&path("src/lib.rs"), &b"pub fn f() {}\n"[..])
        .unwrap();
    local
        .commit(Signature::new("The Owner", "o@x", 100), "server work")
        .unwrap();
    let tip = hub
        .push(&token, &repo_id, "main", &local, "main", false)
        .unwrap();

    let repo_root = data_dir.join("repo-0");
    let fresh = PackStore::open(&repo_root).unwrap();
    assert!(fresh.contains(tip), "pushed tip is durable on disk");

    // Server-side maintenance: repack the repository's store, then make
    // sure the hub still serves reads (its buffered handle is
    // content-addressed, so the rewrite is invisible to it).
    let mut maintenance = PackStore::open(&repo_root).unwrap();
    let report = maintenance.gc(&[tip]).unwrap();
    assert!(report.packed > 0);
    assert_eq!(maintenance.loose_len(), 0);

    let clone = hub.clone_repo(&repo_id).unwrap();
    assert_eq!(clone.head_commit().unwrap(), tip);
    let citation = hub.generate_citation(&repo_id, "main", &path("src/lib.rs"));
    assert!(citation.is_ok());

    // And a store reopened after the repack serves the same history.
    let reopened = PackStore::open(&repo_root).unwrap();
    assert!(reopened.contains(tip));
    assert_eq!(reopened.pack_count(), 1);

    // A later hub over the same data directory must not adopt (or clobber)
    // the previous run's repo-0: its first repository skips to repo-1.
    let hub2 = Hub::with_pack_storage("https://hub.example", &data_dir).unwrap();
    hub2.register_user("owner", "The Owner").unwrap();
    let token2 = hub2.login("owner").unwrap();
    hub2.create_repo(&token2, "second-run").unwrap();
    assert!(data_dir.join("repo-1").exists());
    let untouched = PackStore::open(&repo_root).unwrap();
    assert!(untouched.contains(tip), "first run's objects are untouched");
    std::fs::remove_dir_all(&data_dir).unwrap();
}
