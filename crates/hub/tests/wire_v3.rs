//! Protocol v3 wire fixtures: golden strings for batch envelopes and the
//! `objects_ext` side-channel form, golden bytes for the binary framing,
//! the v3 guard rules (constructs refused in pre-v3 envelopes, side
//! channels consumed exactly), and proptests for frame and side-channel
//! round trips.

use gitlite::ObjectId;
use hub::api::{
    ApiRequest, ApiResponse, ErrorCode, MethodMetrics, MetricsSnapshot, RepoBundle,
    TransportMetrics, WireError, WireHistogram,
};
use hub::transport::frame;
use hub::{PROTOCOL_V3, PROTOCOL_VERSION};
use proptest::prelude::*;

fn id(byte: u8) -> ObjectId {
    ObjectId::from_hex(&format!("{byte:02x}").repeat(20)).unwrap()
}

// ----- golden envelopes ----------------------------------------------------

#[test]
fn golden_batch_request() {
    let batch = ApiRequest::Batch {
        requests: vec![
            ApiRequest::Login {
                username: "ann".into(),
                secret: None,
            },
            ApiRequest::ListRepos,
        ],
    };
    let expected = concat!(
        r#"{"v":3,"method":"batch","params":{"requests":["#,
        r#"{"v":1,"method":"login","params":{"username":"ann"}},"#,
        r#"{"v":1,"method":"list_repos","params":{}}"#,
        r#"]}}"#,
    );
    assert_eq!(batch.encode(), expected);
    assert_eq!(ApiRequest::parse(expected).unwrap(), batch);
    assert_eq!(batch.version(), PROTOCOL_V3);
}

#[test]
fn golden_batch_response() {
    // Item-level failure sits beside an item-level success: the batch
    // itself is a successful response.
    let batch = ApiResponse::Batch(vec![
        ApiResponse::Token("ghp_1".into()),
        ApiResponse::Error(WireError {
            code: ErrorCode::AuthFailed,
            message: "authentication failed".into(),
            detail: None,
        }),
    ]);
    let expected = concat!(
        r#"{"v":3,"result":{"type":"batch","responses":["#,
        r#"{"v":1,"result":{"type":"token","token":"ghp_1"}},"#,
        r#"{"v":1,"error":{"code":"auth_failed","message":"authentication failed"}}"#,
        r#"]}}"#,
    );
    assert_eq!(batch.encode(), expected);
    assert_eq!(ApiResponse::parse(expected).unwrap(), batch);
}

#[test]
fn golden_objects_ext_push() {
    let push = ApiRequest::Push {
        token: "ghp_1".into(),
        repo_id: "ann/p".into(),
        branch: "main".into(),
        force: false,
        bundle: RepoBundle {
            name: "p".into(),
            head: Some("main".into()),
            refs: vec![("main".into(), id(0xcc))],
            objects: vec![(id(0xdd), vec![0x01, 0x02])],
            basis: vec![id(0xee)],
        },
    };
    let (envelope, objects) = push.encode_ext();
    // The hex object array is gone; the envelope only counts the records
    // that travel beside it.
    let expected = format!(
        concat!(
            r#"{{"v":3,"method":"push","params":{{"token":"ghp_1","repo_id":"ann/p","branch":"main","force":false,"#,
            r#""bundle":{{"name":"p","head":"main","refs":[["main","{cc}"]],"objects_ext":1,"basis":["{ee}"]}}}}}}"#,
        ),
        cc = "cc".repeat(20),
        ee = "ee".repeat(20),
    );
    assert_eq!(envelope, expected);
    assert_eq!(objects, vec![(id(0xdd), vec![0x01, 0x02])]);
    // Joining envelope and side channel reconstructs the request.
    assert_eq!(ApiRequest::parse_ext(&envelope, objects).unwrap(), push);
}

#[test]
fn golden_objects_ext_bundle_response() {
    let bundle = ApiResponse::Bundle(RepoBundle {
        name: "p".into(),
        head: None,
        refs: vec![("main".into(), id(0xaa))],
        objects: vec![(id(0xaa), vec![0xff; 4]), (id(0xbb), Vec::new())],
        basis: vec![],
    });
    let (envelope, objects) = bundle.encode_ext();
    let expected = format!(
        r#"{{"v":3,"result":{{"type":"bundle","bundle":{{"name":"p","refs":[["main","{aa}"]],"objects_ext":2}}}}}}"#,
        aa = "aa".repeat(20),
    );
    assert_eq!(envelope, expected);
    assert_eq!(objects.len(), 2);
    assert_eq!(ApiResponse::parse_ext(&envelope, objects).unwrap(), bundle);
}

#[test]
fn golden_server_metrics_request() {
    let req = ApiRequest::ServerMetrics {
        token: Some("ghp_1".into()),
    };
    let expected = r#"{"v":3,"method":"server_metrics","params":{"token":"ghp_1"}}"#;
    assert_eq!(req.encode(), expected);
    assert_eq!(ApiRequest::parse(expected).unwrap(), req);
    assert_eq!(req.version(), PROTOCOL_V3);
    // Absent-field rule: the tokenless (trusted in-process) form omits
    // the key entirely rather than writing null.
    let bare = ApiRequest::ServerMetrics { token: None };
    let expected = r#"{"v":3,"method":"server_metrics","params":{}}"#;
    assert_eq!(bare.encode(), expected);
    assert_eq!(ApiRequest::parse(expected).unwrap(), bare);
    // A v3-only method re-stamped as v2 is refused, not guessed at.
    let err = ApiRequest::parse(r#"{"v":2,"method":"server_metrics","params":{}}"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::Protocol);
    assert!(
        err.message.contains("requires protocol v3"),
        "{}",
        err.message
    );
}

#[test]
fn golden_server_metrics_response() {
    let resp = ApiResponse::Metrics(MetricsSnapshot {
        methods: vec![MethodMetrics {
            method: "log".into(),
            calls: 3,
            errors: vec![("repo_not_found".into(), 1)],
            latency: WireHistogram {
                count: 3,
                sum_us: 700,
                max_us: 500,
                buckets: vec![(7, 2), (9, 1)],
            },
        }],
        transport: Some(TransportMetrics {
            open_connections: 2,
            queue_depth: 0,
            busy_workers: 1,
            bytes_in_line: 10,
            bytes_out_line: 20,
            bytes_in_binary: 30,
            bytes_out_binary: 40,
            frames_rejected: 0,
            transport_closed: 1,
            obj_raw_bytes: 100,
            obj_deflate_bytes: 60,
        }),
        store: None,
        limits: None,
        repl: None,
    });
    let expected = concat!(
        r#"{"v":3,"result":{"type":"metrics","metrics":{"#,
        r#""methods":[{"method":"log","calls":3,"errors":[["repo_not_found",1]],"#,
        r#""latency":{"count":3,"sum_us":700,"max_us":500,"buckets":[[7,2],[9,1]]}}],"#,
        r#""transport":{"open_connections":2,"queue_depth":0,"busy_workers":1,"#,
        r#""bytes_in_line":10,"bytes_out_line":20,"bytes_in_binary":30,"bytes_out_binary":40,"#,
        r#""frames_rejected":0,"transport_closed":1,"obj_raw_bytes":100,"obj_deflate_bytes":60}"#,
        r#"}}}"#,
    );
    assert_eq!(resp.encode(), expected);
    assert_eq!(ApiResponse::parse(expected).unwrap(), resp);
}

#[test]
fn server_metrics_absent_field_rules() {
    // Empty error tallies, empty buckets, and missing transport/store
    // sections are omitted keys, never empty arrays or nulls — so the
    // golden bytes stay stable as sections come and go.
    let lean = ApiResponse::Metrics(MetricsSnapshot {
        methods: vec![MethodMetrics {
            method: "list_repos".into(),
            calls: 0,
            errors: vec![],
            latency: WireHistogram {
                count: 0,
                sum_us: 0,
                max_us: 0,
                buckets: vec![],
            },
        }],
        transport: None,
        store: None,
        limits: None,
        repl: None,
    });
    let expected = concat!(
        r#"{"v":3,"result":{"type":"metrics","metrics":{"#,
        r#""methods":[{"method":"list_repos","calls":0,"#,
        r#""latency":{"count":0,"sum_us":0,"max_us":0}}]"#,
        r#"}}}"#,
    );
    assert_eq!(lean.encode(), expected);
    assert_eq!(ApiResponse::parse(expected).unwrap(), lean);
}

// ----- golden frame bytes --------------------------------------------------

#[test]
fn golden_frame_bytes() {
    // ENV frame: kind, u32 BE length, payload.
    let mut env = Vec::new();
    frame::write_frame(&mut env, frame::ENV, b"{}");
    assert_eq!(env, [0x01, 0, 0, 0, 2, b'{', b'}']);
    assert_eq!(frame::encode_message("{}", &[]), env);

    // The probe is a PING frame plus the newline that makes a line
    // server answer it as one garbage line.
    assert_eq!(frame::PROBE, [0x05, 0, 0, 0, 0, b'\n']);

    // PONG carries the protocol version as a u32 BE payload.
    assert_eq!(
        frame::pong(PROTOCOL_VERSION),
        [0x06, 0, 0, 0, 4, 0, 0, 0, PROTOCOL_VERSION as u8]
    );
}

#[test]
fn object_stream_is_framed_and_compressed() {
    let objects: Vec<(ObjectId, Vec<u8>)> = (0..64u32)
        .map(|i| {
            let bytes = format!("commit payload number {i} ")
                .repeat(40)
                .into_bytes();
            (ObjectId::hash_bytes(&bytes), bytes)
        })
        .collect();
    let message = frame::encode_message(r#"{"v":3}"#, &objects);
    // ENV_OBJ leads, END closes.
    assert_eq!(message[0], frame::ENV_OBJ);
    assert_eq!(message[message.len() - 5], frame::END);
    let (envelope, back) = frame::read_message(&mut &message[..]).unwrap();
    assert_eq!(envelope, r#"{"v":3}"#);
    assert_eq!(back, objects);
    // Deflate beats the raw record bytes on repetitive payloads — and
    // by construction beats v2's hex doubling by even more.
    let raw: usize = objects.iter().map(|(_, b)| 24 + b.len()).sum();
    assert!(message.len() < raw, "{} vs {raw}", message.len());
}

// ----- guard rules ---------------------------------------------------------

#[test]
fn objects_ext_needs_the_side_channel() {
    let (envelope, objects) = ApiRequest::Push {
        token: "t".into(),
        repo_id: "a/p".into(),
        branch: "main".into(),
        force: false,
        bundle: RepoBundle {
            name: "p".into(),
            head: None,
            refs: vec![],
            objects: vec![(id(0xaa), vec![1])],
            basis: vec![],
        },
    }
    .encode_ext();
    // Plain parse has no side channel to draw from: refused.
    let err = ApiRequest::parse(&envelope).unwrap_err();
    assert_eq!(err.code, ErrorCode::Protocol);
    // A short side channel is refused.
    let err = ApiRequest::parse_ext(&envelope, vec![]).unwrap_err();
    assert_eq!(err.code, ErrorCode::Protocol);
    assert!(err.message.contains("claims 1"), "{}", err.message);
    // Leftover side-channel objects are refused.
    let mut extra = objects.clone();
    extra.push((id(0xbb), vec![2]));
    let err = ApiRequest::parse_ext(&envelope, extra).unwrap_err();
    assert!(err.message.contains("unconsumed"), "{}", err.message);
    // Exactly consumed parses.
    assert!(ApiRequest::parse_ext(&envelope, objects).is_ok());
}

#[test]
fn v3_constructs_are_refused_in_older_envelopes() {
    // objects_ext re-stamped as v2: a v2 peer would misread it.
    let (envelope, objects) = ApiRequest::Push {
        token: "t".into(),
        repo_id: "a/p".into(),
        branch: "main".into(),
        force: false,
        bundle: RepoBundle {
            name: "p".into(),
            head: None,
            refs: vec![],
            objects: vec![(id(0xaa), vec![1])],
            basis: vec![],
        },
    }
    .encode_ext();
    let downgraded = envelope.replace(r#"{"v":3,"#, r#"{"v":2,"#);
    let err = ApiRequest::parse_ext(&downgraded, objects).unwrap_err();
    assert!(
        err.message.contains("requires protocol v3"),
        "{}",
        err.message
    );
    // A batch inside a v2 envelope is likewise refused.
    let err =
        ApiRequest::parse(r#"{"v":2,"method":"batch","params":{"requests":[]}}"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::Protocol);
}

#[test]
fn nested_batches_are_refused_on_the_wire() {
    let nested = concat!(
        r#"{"v":3,"method":"batch","params":{"requests":["#,
        r#"{"v":3,"method":"batch","params":{"requests":[]}}"#,
        r#"]}}"#,
    );
    let err = ApiRequest::parse(nested).unwrap_err();
    assert!(err.message.contains("nest"), "{}", err.message);
}

// ----- proptests -----------------------------------------------------------

fn arb_objects() -> impl Strategy<Value = Vec<(ObjectId, Vec<u8>)>> {
    prop::collection::vec(
        (
            any::<u64>().prop_map(|n| ObjectId::hash_bytes(&n.to_be_bytes())),
            prop::collection::vec(any::<u8>(), 0..600),
        ),
        0..24,
    )
}

proptest! {
    /// Any (envelope, objects) message survives the frame codec intact —
    /// chunking, compression and record framing included.
    #[test]
    fn frame_messages_round_trip(envelope in "[ -~]{0,200}", objects in arb_objects()) {
        let message = frame::encode_message(&envelope, &objects);
        let (env_back, obj_back) = frame::read_message(&mut &message[..]).unwrap();
        prop_assert_eq!(env_back, envelope);
        prop_assert_eq!(obj_back, objects);
    }

    /// encode_ext → parse_ext is the identity on bundle-carrying
    /// requests, whatever the object payloads.
    #[test]
    fn side_channel_round_trips(objects in arb_objects()) {
        let push = ApiRequest::Push {
            token: "t".into(),
            repo_id: "a/p".into(),
            branch: "main".into(),
            force: false,
            bundle: RepoBundle {
                name: "p".into(),
                head: Some("main".into()),
                refs: vec![("main".into(), id(0xaa))],
                objects,
                basis: vec![],
            },
        };
        let (envelope, side) = push.encode_ext();
        prop_assert_eq!(ApiRequest::parse_ext(&envelope, side).unwrap(), push);
    }

    /// Requests without bundles encode identically through both paths,
    /// with an empty side channel.
    #[test]
    fn bundleless_requests_do_not_touch_the_side_channel(name in "[a-z]{1,8}") {
        let req = ApiRequest::Login {
            username: name,
            secret: None,
        };
        let (envelope, side) = req.encode_ext();
        prop_assert_eq!(&envelope, &req.encode());
        prop_assert!(side.is_empty());
    }
}
