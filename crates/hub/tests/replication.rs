//! Multi-hub replication ([`hub::repl`]): a follower hub pulls per-repo
//! deltas from a primary, serves replicated reads locally inside a
//! staleness bound, and refuses everything else with the typed
//! `not_primary` redirect that [`FleetTransport`] follows. The claims
//! under test: convergence is byte-identical (objects, refs, audit,
//! deposits), catch-up is incremental (deltas after the bootstrap, and
//! across an engine restart — the cursor is derived from local state,
//! not stored), writes during catch-up are picked up by the next round,
//! staleness is enforced, operator seams stay refused on follower
//! sockets, and the placement endpoint routes writes to a repository's
//! home hub.

use citekit::Citation;
use gitlite::{path, Signature};
use hub::{
    ApiRequest, Follower, HubClient, HubError, InProcess, Placement, RepoBundle, SocketServer,
    TcpTransport,
};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn sig(t: i64) -> Signature {
    Signature::new("Ann Author", "ann@x", t)
}

/// A primary hub with one user and `repos` repositories of a few
/// commits each.
fn seeded_primary(repos: usize) -> (hub::Hub, hub::Token, Vec<String>) {
    let primary = hub::Hub::new("https://primary.local");
    primary.register_user("ann", "Ann Author").unwrap();
    let token = primary.login("ann").unwrap();
    let mut ids = Vec::new();
    for r in 0..repos {
        let repo_id = primary.create_repo(&token, &format!("p{r}")).unwrap();
        let mut local = primary.clone_repo(&repo_id).unwrap();
        for i in 0..3 {
            local
                .worktree_mut()
                .write(
                    &path("src/lib.rs"),
                    format!("pub fn r{r}v{i}() {{}}\n").into_bytes(),
                )
                .unwrap();
            local.commit(sig(100 + i), format!("c{i}")).unwrap();
        }
        primary
            .push(&token, &repo_id, "main", &local, "main", false)
            .unwrap();
        ids.push(repo_id);
    }
    (primary, token, ids)
}

/// The canonical byte-level frontier of one hosted repository: every
/// ref, every reachable object's canonical bytes, sorted so two
/// independently grown stores compare equal iff they hold identical
/// state.
fn frontier(hub: &hub::Hub, repo_id: &str) -> RepoBundle {
    let repo = hub.clone_repo(repo_id).unwrap();
    let mut bundle = RepoBundle::from_repository(&repo).unwrap();
    bundle.refs.sort();
    bundle.objects.sort_by_key(|entry| entry.0);
    bundle
}

fn assert_converged(primary: &hub::Hub, follower: &hub::Hub) {
    // Audit first: the frontier clones below record fresh `clone` audit
    // events on the primary, which the *next* round will replicate.
    assert_eq!(
        primary.audit_log(),
        follower.audit_log(),
        "audit logs differ"
    );
    let mut repos = primary.list_repos();
    repos.sort();
    let mut replicated = follower.list_repos();
    replicated.sort();
    assert_eq!(repos, replicated, "repo registries differ");
    for repo_id in &repos {
        assert_eq!(
            frontier(primary, repo_id),
            frontier(follower, repo_id),
            "refs/objects of {repo_id} are not byte-identical"
        );
    }
}

#[test]
fn follower_bootstraps_then_stays_incremental() {
    let (primary, token, ids) = seeded_primary(2);
    let follower_hub = Arc::new(hub::Hub::new("https://follower.local"));
    let engine = Follower::new(
        Arc::clone(&follower_hub),
        InProcess::new(&primary),
        "primary.local:7070",
        30,
    );

    // Bootstrap: both repositories arrive as full bundles, the audit
    // log and the logical epoch come along.
    let report = engine.sync_once().unwrap();
    assert_eq!(report.repos_checked, 2);
    assert_eq!(report.repos_synced, 2);
    assert_eq!(report.full_bundles, 2);
    assert_eq!(report.delta_bundles, 0);
    assert!(report.audit_ingested > 0, "audit log replicated");

    // An idle round moves nothing.
    let idle = engine.sync_once().unwrap();
    assert_eq!(idle.repos_synced, 0);
    assert_eq!(idle.audit_ingested, 0);
    assert_converged(&primary, &follower_hub);

    // Writes during catch-up: new commits on one repo, a feature branch
    // on the other, a cite, a deposit — the next round ships exactly
    // the difference, as deltas, never as a re-bootstrap.
    let mut local = primary.clone_repo(&ids[0]).unwrap();
    local
        .worktree_mut()
        .write(&path("src/new.rs"), &b"pub fn newer() {}\n"[..])
        .unwrap();
    local.commit(sig(200), "newer").unwrap();
    primary
        .push(&token, &ids[0], "main", &local, "main", false)
        .unwrap();
    let mut feature = primary.clone_repo(&ids[1]).unwrap();
    feature.create_branch("feature").unwrap();
    feature.checkout_branch("feature").unwrap();
    feature
        .worktree_mut()
        .write(&path("src/feat.rs"), &b"pub fn feat() {}\n"[..])
        .unwrap();
    feature.commit(sig(201), "feat").unwrap();
    primary
        .push(&token, &ids[1], "feature", &feature, "feature", false)
        .unwrap();
    primary
        .add_cite(
            &token,
            &ids[0],
            "main",
            &path("src/new.rs"),
            Citation::builder("p0", "Ann Author")
                .author("Ann Author")
                .build(),
        )
        .unwrap();
    let deposit = primary.deposit(&token, &ids[0], "main", "P0 v1").unwrap();

    let delta = engine.sync_once().unwrap();
    assert_eq!(delta.repos_synced, 2);
    assert_eq!(delta.full_bundles, 0, "catch-up must not re-bootstrap");
    assert_eq!(delta.delta_bundles, 2);
    assert!(delta.audit_ingested > 0);
    assert_eq!(delta.deposits_ingested, 1);
    assert_converged(&primary, &follower_hub);

    // The replicated deposit resolves locally; the replicated branch
    // and citation serve locally.
    assert_eq!(
        follower_hub.resolve_doi(&deposit.doi).unwrap(),
        primary.resolve_doi(&deposit.doi).unwrap()
    );
    assert!(follower_hub
        .branches(&ids[1])
        .unwrap()
        .contains(&"feature".to_owned()));
    let cited = follower_hub
        .generate_citation(&ids[0], "main", &path("src/new.rs"))
        .unwrap();
    assert_eq!(cited.repo_name, "p0");

    // Lag metrics surface through server_metrics.
    let state = engine.state();
    assert_eq!(state.primary(), "primary.local:7070");
    assert_eq!(state.rounds(), 3);
    assert_eq!(state.reconnects(), 0);
    let metrics = follower_hub.server_metrics(None).unwrap();
    let repl = metrics.repl.expect("follower exports a repl section");
    assert_eq!(repl.primary, "primary.local:7070");
    assert!(repl.lag_seconds >= 0, "synced: lag is a real number");
    assert_eq!(repl.repos_behind, 0);
    assert_eq!(repl.rounds, 3);
    // A primary exports no repl section at all.
    assert!(primary.server_metrics(None).unwrap().repl.is_none());
}

#[test]
fn engine_restart_resumes_incrementally_and_lost_state_rebootstraps_safely() {
    let (primary, token, ids) = seeded_primary(1);
    let follower_hub = Arc::new(hub::Hub::new("https://follower.local"));
    {
        let engine = Follower::new(
            Arc::clone(&follower_hub),
            InProcess::new(&primary),
            "primary.local:7070",
            30,
        );
        engine.sync_once().unwrap();
    } // engine dropped: simulates a replication-link restart

    // The primary moves on while no engine is attached.
    let mut local = primary.clone_repo(&ids[0]).unwrap();
    local
        .worktree_mut()
        .write(&path("src/later.rs"), &b"pub fn later() {}\n"[..])
        .unwrap();
    local.commit(sig(300), "later").unwrap();
    primary
        .push(&token, &ids[0], "main", &local, "main", false)
        .unwrap();

    // A fresh engine over the same hub state derives its cursor from
    // the follower's own branch tips and audit length — catch-up is a
    // delta and an audit tail, not a re-bootstrap.
    let engine = Follower::new(
        Arc::clone(&follower_hub),
        InProcess::new(&primary),
        "primary.local:7070",
        30,
    );
    let resumed = engine.sync_once().unwrap();
    assert_eq!(resumed.full_bundles, 0, "restart must resume incrementally");
    assert_eq!(resumed.delta_bundles, 1);
    assert!(resumed.audit_ingested > 0);
    assert_converged(&primary, &follower_hub);

    // A follower that lost its state entirely (fresh process, empty
    // registry) re-bootstraps from nothing to the same bytes — the
    // derived cursor can never disagree with the data it describes.
    let blank = Arc::new(hub::Hub::new("https://follower2.local"));
    let engine2 = Follower::new(
        Arc::clone(&blank),
        InProcess::new(&primary),
        "primary.local:7070",
        30,
    );
    let boot = engine2.sync_once().unwrap();
    assert_eq!(boot.full_bundles, 1);
    assert_converged(&primary, &blank);
}

#[test]
fn follower_refuses_writes_and_unreplicated_reads_with_the_primary_address() {
    let (primary, _token, ids) = seeded_primary(1);
    let follower_hub = Arc::new(hub::Hub::new("https://follower.local"));
    // A locally provisioned account (the CLI's operator bootstrap) may
    // still log in; it must be created before follower mode flips on.
    follower_hub.register_user("op", "Operator").unwrap();
    let engine = Follower::new(
        Arc::clone(&follower_hub),
        InProcess::new(&primary),
        "primary.local:7070",
        30,
    );
    engine.sync_once().unwrap();

    let client = HubClient::in_process(&follower_hub);
    let redirected = |err: HubError| match err {
        HubError::NotPrimary { primary } => assert_eq!(primary, "primary.local:7070"),
        other => panic!("expected not_primary, got {other:?}"),
    };

    // Writes redirect...
    redirected(client.register_user("bob", "Bob").unwrap_err());
    let op = client.login("op").unwrap(); // local account: served
    redirected(client.create_repo(&op, "nope").unwrap_err());
    let local = primary.clone_repo(&ids[0]).unwrap();
    redirected(
        client
            .push(&op, &ids[0], "main", &local, "main", false)
            .unwrap_err(),
    );
    redirected(
        client
            .add_cite(
                &op,
                &ids[0],
                "main",
                &path("src/lib.rs"),
                Citation::builder("p0", "A").build(),
            )
            .unwrap_err(),
    );
    redirected(client.deposit(&op, &ids[0], "main", "t").unwrap_err());
    // ...and so do reads whose truth lives only on the primary: roles
    // are not replicated, archive state is per-hub.
    redirected(client.role_of(&ids[0], "ann").unwrap_err());
    redirected(client.can_write(&op, &ids[0]).unwrap_err());
    redirected(client.archive(&ids[0]).unwrap_err());
    // An account the follower does not hold cannot mint tokens here.
    redirected(client.login("ann").unwrap_err());

    // Replicated reads are served locally.
    assert_eq!(client.list_repos().unwrap(), vec![ids[0].clone()]);
    assert!(client.log(&ids[0], "main").unwrap().len() >= 3);
}

#[test]
fn staleness_bound_gates_replicated_reads() {
    let (primary, _token, ids) = seeded_primary(1);
    let follower_hub = Arc::new(hub::Hub::new("https://follower.local"));
    // Staleness bound 0: reads are served only in the wall-clock second
    // of a successful sync round.
    let engine = Follower::new(
        Arc::clone(&follower_hub),
        InProcess::new(&primary),
        "primary.local:7070",
        0,
    );
    let client = HubClient::in_process(&follower_hub);

    // Before the first sync a follower has nothing trustworthy to say:
    // even list_repos redirects, and lag reads as "never synced".
    assert!(matches!(
        client.list_repos().unwrap_err(),
        HubError::NotPrimary { .. }
    ));
    assert_eq!(engine.state().lag_seconds(hub_now()), -1);

    engine.sync_once().unwrap();
    assert_eq!(client.list_repos().unwrap(), vec![ids[0].clone()]);

    // Fall outside the bound: the same read redirects again...
    std::thread::sleep(Duration::from_millis(1100));
    assert!(matches!(
        client.list_repos().unwrap_err(),
        HubError::NotPrimary { .. }
    ));
    // ...until the next round refreshes the staleness clock.
    engine.sync_once().unwrap();
    assert_eq!(client.list_repos().unwrap(), vec![ids[0].clone()]);
}

/// Wall-clock seconds, mirroring the follower's staleness clock.
fn hub_now() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

/// Calls on one primary method so far, per the primary's own
/// `server_metrics`.
fn primary_calls(primary: &hub::Hub, method: &str) -> u64 {
    primary
        .server_metrics(None)
        .unwrap()
        .methods
        .iter()
        .find(|m| m.method == method)
        .map(|m| m.calls)
        .unwrap_or(0)
}

#[test]
fn fleet_client_reads_from_the_follower_and_routes_writes_to_the_primary() {
    // Real sockets end to end: the not_primary redirect carries a
    // dialable address, and FleetTransport follows it.
    let (primary, _token, ids) = seeded_primary(1);
    let primary = Arc::new(primary);
    let primary_server =
        SocketServer::bind(Arc::clone(&primary), "127.0.0.1:0").expect("bind primary");
    let primary_addr = primary_server.local_addr().to_string();

    let follower_hub = Arc::new(hub::Hub::new("https://follower.local"));
    let engine = Follower::new(
        Arc::clone(&follower_hub),
        TcpTransport::connect(&*primary_addr).expect("dial primary"),
        primary_addr.clone(),
        30,
    );
    engine.sync_once().unwrap();
    let follower_server =
        SocketServer::bind(Arc::clone(&follower_hub), "127.0.0.1:0").expect("bind follower");

    let fleet = HubClient::new(hub::FleetTransport::new(
        TcpTransport::connect(follower_server.local_addr()).expect("dial follower"),
        |addr: &str| {
            addr.parse::<SocketAddr>()
                .ok()
                .and_then(|a| TcpTransport::connect(a).ok())
        },
    ));

    // A brand-new account: register and login both redirect (accounts
    // live on the primary), transparently.
    fleet.register_user("bob", "Bob Builder").unwrap();
    let token = fleet.login("bob").unwrap();
    assert_eq!(
        fleet.transport().primary_addr().as_deref(),
        Some(&*primary_addr),
        "the advertised primary was dialed and cached"
    );

    // Reads ride the follower: the primary sees no log_page traffic.
    let before = primary_calls(&primary, "log_page");
    let page = fleet.log_page(&ids[0], "main", None, Some(1)).unwrap();
    assert_eq!(primary_calls(&primary, "log_page"), before);

    // sync() short-circuit: tips match, so the whole exchange is one
    // follower-served log_page — the primary is not touched at all.
    let mut local = fleet.clone_repo(&ids[0]).unwrap();
    let tip = local.branch_tip("main").unwrap();
    assert_eq!(page.items[0].id, tip);
    let (lp, push) = (
        primary_calls(&primary, "log_page"),
        primary_calls(&primary, "push"),
    );
    // bob may push: make him a member first (routed to the primary).
    let ann = fleet.login("ann").unwrap();
    fleet
        .add_member(&ann, &ids[0], "bob", hub::Role::Member)
        .unwrap();
    assert_eq!(
        fleet.sync(&token, &ids[0], "main", &local, "main").unwrap(),
        tip
    );
    assert_eq!(primary_calls(&primary, "log_page"), lp);
    assert_eq!(primary_calls(&primary, "push"), push, "primary untouched");

    // Now the local copy is ahead: the follower's stale answer routes
    // sync() into a push, which redirects to the primary and lands.
    local
        .worktree_mut()
        .write(&path("src/bob.rs"), &b"pub fn bob() {}\n"[..])
        .unwrap();
    local
        .commit(Signature::new("Bob Builder", "bob@x", 400), "bob work")
        .unwrap();
    let new_tip = local.branch_tip("main").unwrap();
    assert_eq!(
        fleet.sync(&token, &ids[0], "main", &local, "main").unwrap(),
        new_tip
    );
    assert_eq!(primary_calls(&primary, "push"), push + 1);
    assert_eq!(
        primary
            .clone_repo(&ids[0])
            .unwrap()
            .branch_tip("main")
            .unwrap(),
        new_tip
    );

    // The next sync round replicates bob's push back to the follower.
    engine.sync_once().unwrap();
    assert_eq!(
        fleet
            .log_page(&ids[0], "main", None, Some(1))
            .unwrap()
            .items[0]
            .id,
        new_tip
    );

    follower_server.shutdown();
    primary_server.shutdown();
}

#[test]
fn operator_seams_stay_refused_on_follower_sockets() {
    let (primary, _token, _ids) = seeded_primary(1);
    let follower_hub = Arc::new(hub::Hub::new("https://follower.local"));
    let engine = Follower::new(
        Arc::clone(&follower_hub),
        InProcess::new(&primary),
        "primary.local:7070",
        30,
    );
    engine.sync_once().unwrap();
    let server =
        SocketServer::bind(Arc::clone(&follower_hub), "127.0.0.1:0").expect("bind follower");
    let client = HubClient::connect(server.local_addr()).expect("dial follower");

    // The same socket hardening a primary gets: clock and maintenance
    // seams are never remote-callable, metrics demand an operator token.
    assert!(
        client.maintenance().is_err(),
        "maintenance refused on sockets"
    );
    assert!(matches!(
        client.call(ApiRequest::AdvanceClock { ts: 9_999 }),
        Err(HubError::PermissionDenied(_))
    ));
    assert!(
        client.server_metrics(None).is_err(),
        "metrics need an operator"
    );

    // But the replication endpoints stay anonymously readable — a
    // follower must itself be clonable by a further replica.
    let status = client.repl_status().unwrap();
    assert_eq!(status.repos.len(), 1);
    server.shutdown();
}

#[test]
fn placement_is_queryable_over_the_wire_and_routes_writes_home() {
    let (primary, _token, ids) = seeded_primary(1);
    let hubs = ["hub-a:7070", "hub-b:7070", "hub-c:7070"];
    primary.set_placement(Placement::new(hubs));
    let client = HubClient::in_process(&primary);

    // The fleet listing and a per-repo primary, straight off the map.
    let info = client.placement(None).unwrap();
    assert_eq!(info.hubs, hubs.map(str::to_owned).to_vec());
    assert_eq!(info.primary, None, "no repo asked about, no primary named");
    let routed = client.placement(Some(&ids[0])).unwrap();
    let expected = Placement::new(hubs)
        .primary_for(&ids[0])
        .unwrap()
        .to_owned();
    assert_eq!(routed.primary.as_deref(), Some(&*expected));
    assert!(hubs.contains(&&*expected));

    // A follower with no placement map of its own still advertises its
    // replication primary, so a lost client can always route writes.
    let follower_hub = Arc::new(hub::Hub::new("https://follower.local"));
    let engine = Follower::new(
        Arc::clone(&follower_hub),
        InProcess::new(&primary),
        "primary.local:7070",
        30,
    );
    engine.sync_once().unwrap();
    let follower_client = HubClient::in_process(&follower_hub);
    let fallback = follower_client.placement(Some(&ids[0])).unwrap();
    assert!(fallback.hubs.is_empty());
    assert_eq!(fallback.primary.as_deref(), Some("primary.local:7070"));
}
