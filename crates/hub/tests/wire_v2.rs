//! Protocol v2 wire fixtures: golden strings for every new method and
//! result shape, plus the version-negotiation proofs — v1 envelopes keep
//! round-tripping byte-identically through a v2-speaking build, and v2
//! constructs are refused inside v1 envelopes.

use gitlite::ObjectId;
use hub::api::{ApiRequest, ApiResponse, ErrorCode, Negotiation, Page, RepoBundle};
use hub::{LogEntry, PROTOCOL_V1, PROTOCOL_V2};

fn id(byte: u8) -> ObjectId {
    ObjectId::from_hex(&format!("{byte:02x}").repeat(20)).unwrap()
}

fn golden_request(req: ApiRequest, expected: &str) {
    assert_eq!(
        req.encode(),
        expected,
        "encoding drifted for {}",
        req.method()
    );
    assert_eq!(
        ApiRequest::parse(expected).unwrap(),
        req,
        "golden string no longer parses for {}",
        req.method()
    );
}

fn golden_response(resp: ApiResponse, expected: &str) {
    assert_eq!(
        resp.encode(),
        expected,
        "encoding drifted for {}",
        resp.kind()
    );
    assert_eq!(
        ApiResponse::parse(expected).unwrap(),
        resp,
        "golden string no longer parses for {}",
        resp.kind()
    );
}

// ----- golden v2 requests --------------------------------------------------

#[test]
fn golden_negotiate() {
    golden_request(
        ApiRequest::Negotiate {
            repo_id: "ann/p".into(),
            haves: vec![id(0xaa), id(0xbb)],
        },
        &format!(
            r#"{{"v":2,"method":"negotiate","params":{{"repo_id":"ann/p","haves":["{}","{}"]}}}}"#,
            "aa".repeat(20),
            "bb".repeat(20),
        ),
    );
}

#[test]
fn golden_log_page() {
    golden_request(
        ApiRequest::LogPage {
            repo_id: "ann/p".into(),
            branch: "main".into(),
            cursor: Some(format!("{}:25", "aa".repeat(20))),
            limit: Some(25),
        },
        &format!(
            r#"{{"v":2,"method":"log_page","params":{{"repo_id":"ann/p","branch":"main","cursor":"{}:25","limit":25}}}}"#,
            "aa".repeat(20),
        ),
    );
    // Cursor and limit are optional.
    golden_request(
        ApiRequest::LogPage {
            repo_id: "ann/p".into(),
            branch: "main".into(),
            cursor: None,
            limit: None,
        },
        r#"{"v":2,"method":"log_page","params":{"repo_id":"ann/p","branch":"main"}}"#,
    );
}

#[test]
fn golden_audit_log_page() {
    golden_request(
        ApiRequest::AuditLogPage {
            cursor: Some("17".into()),
            limit: Some(100),
        },
        r#"{"v":2,"method":"audit_log_page","params":{"cursor":"17","limit":100}}"#,
    );
}

#[test]
fn golden_list_repos_page() {
    golden_request(
        ApiRequest::ListReposPage {
            cursor: Some("ann/p".into()),
            limit: Some(2),
        },
        r#"{"v":2,"method":"list_repos_page","params":{"cursor":"ann/p","limit":2}}"#,
    );
}

#[test]
fn golden_delta_push() {
    let bundle = RepoBundle {
        name: "p".into(),
        head: Some("main".into()),
        refs: vec![("main".into(), id(0xcc))],
        objects: vec![(id(0xdd), vec![0x01, 0x02])],
        basis: vec![id(0xee)],
    };
    golden_request(
        ApiRequest::Push {
            token: "ghp_1".into(),
            repo_id: "ann/p".into(),
            branch: "main".into(),
            force: false,
            bundle,
        },
        &format!(
            concat!(
                r#"{{"v":2,"method":"push","params":{{"token":"ghp_1","repo_id":"ann/p","branch":"main","force":false,"#,
                r#""bundle":{{"name":"p","head":"main","refs":[["main","{cc}"]],"objects":[["{dd}","0102"]],"basis":["{ee}"]}}}}}}"#,
            ),
            cc = "cc".repeat(20),
            dd = "dd".repeat(20),
            ee = "ee".repeat(20),
        ),
    );
}

// ----- golden v2 responses -------------------------------------------------

#[test]
fn golden_negotiation_response() {
    golden_response(
        ApiResponse::Negotiation(Negotiation {
            common: vec![id(0xaa)],
            missing: vec![id(0xbb)],
        }),
        &format!(
            r#"{{"v":2,"result":{{"type":"negotiation","negotiation":{{"common":["{}"],"missing":["{}"]}}}}}}"#,
            "aa".repeat(20),
            "bb".repeat(20),
        ),
    );
}

#[test]
fn golden_log_page_response() {
    golden_response(
        ApiResponse::LogPage(Page {
            items: vec![LogEntry {
                id: id(0xaa),
                author: "Ann".into(),
                timestamp: 42,
                message: "c1".into(),
            }],
            next: Some(format!("{}:1", "bb".repeat(20))),
        }),
        &format!(
            r#"{{"v":2,"result":{{"type":"log_page","entries":[{{"id":"{}","author":"Ann","timestamp":42,"message":"c1"}}],"next":"{}:1"}}}}"#,
            "aa".repeat(20),
            "bb".repeat(20),
        ),
    );
    // Last page: no `next` key at all.
    golden_response(
        ApiResponse::LogPage(Page {
            items: vec![],
            next: None,
        }),
        r#"{"v":2,"result":{"type":"log_page","entries":[]}}"#,
    );
}

#[test]
fn golden_names_page_response() {
    golden_response(
        ApiResponse::NamesPage(Page {
            items: vec!["ann/p".into(), "bob/q".into()],
            next: Some("bob/q".into()),
        }),
        r#"{"v":2,"result":{"type":"names_page","names":["ann/p","bob/q"],"next":"bob/q"}}"#,
    );
}

#[test]
fn golden_audit_page_response() {
    golden_response(
        ApiResponse::AuditPage(Page {
            items: vec![hub::AuditEvent {
                seq: 3,
                timestamp: 9,
                actor: None,
                action: "clone".into(),
                target: "ann/p".into(),
                ok: true,
            }],
            next: Some("4".into()),
        }),
        r#"{"v":2,"result":{"type":"audit_page","events":[{"seq":3,"timestamp":9,"actor":null,"action":"clone","target":"ann/p","ok":true}],"next":"4"}}"#,
    );
}

// ----- version negotiation -------------------------------------------------

/// The exact v1 golden strings from `wire_protocol.rs`, re-checked here
/// through the v2-speaking parser: parse → re-encode must be
/// byte-identical, proving a v1 peer sees no difference.
#[test]
fn v1_envelopes_round_trip_byte_identically() {
    let v1_goldens = [
        r#"{"v":1,"method":"login","params":{"username":"ann"}}"#,
        r#"{"v":1,"method":"add_member","params":{"token":"ghp_1","repo_id":"ann/p","username":"bob","role":"member"}}"#,
        r#"{"v":1,"method":"read_file","params":{"repo_id":"ann/p","branch":"main","path":"src/lib.rs"}}"#,
        r#"{"v":1,"method":"merge_branches","params":{"token":"ghp_1","repo_id":"ann/p","branch":"main","other_branch":"gui","strategy":"union"}}"#,
        r#"{"v":1,"method":"deposit","params":{"token":"ghp_1","repo_id":"ann/p","branch":"main","title":"p v1.0"}}"#,
        r#"{"v":1,"method":"find_repos_citing","params":{"author":"Ada"}}"#,
        r#"{"v":1,"method":"maintenance","params":{}}"#,
        r#"{"v":1,"method":"store_stats","params":{"repo_id":"ann/p"}}"#,
        // A full-bundle push stays v1 even though the type gained `basis`.
        &format!(
            r#"{{"v":1,"method":"push","params":{{"token":"ghp_1","repo_id":"ann/p","branch":"main","force":true,"bundle":{{"name":"p","refs":[["main","{aa}"]],"objects":[["{aa}","00"]]}}}}}}"#,
            aa = "aa".repeat(20),
        ),
    ];
    for golden in v1_goldens {
        let req = ApiRequest::parse(golden).unwrap_or_else(|e| panic!("{golden}: {e}"));
        assert_eq!(req.version(), PROTOCOL_V1, "{golden}");
        assert_eq!(req.encode(), *golden, "v1 wire form drifted");
    }
}

#[test]
fn v2_methods_are_refused_in_v1_envelopes() {
    for (method, params) in [
        ("negotiate", r#"{"repo_id":"a/p","haves":[]}"#),
        ("log_page", r#"{"repo_id":"a/p","branch":"main"}"#),
        ("audit_log_page", "{}"),
        ("list_repos_page", "{}"),
    ] {
        let v2 = format!(r#"{{"v":2,"method":"{method}","params":{params}}}"#);
        let req = ApiRequest::parse(&v2).unwrap_or_else(|e| panic!("{v2}: {e}"));
        assert_eq!(req.version(), PROTOCOL_V2);
        let v1 = format!(r#"{{"v":1,"method":"{method}","params":{params}}}"#);
        let err = ApiRequest::parse(&v1).unwrap_err();
        assert_eq!(err.code, ErrorCode::Protocol, "{method} accepted in v1");
    }
}

#[test]
fn future_versions_are_refused_with_protocol_error() {
    let err =
        ApiRequest::parse(r#"{"v":4,"method":"login","params":{"username":"a"}}"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::Protocol);
    let err = ApiResponse::parse(r#"{"v":9,"result":{"type":"unit"}}"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::Protocol);
}

/// End to end through the router: a v1 wire client and a v2 wire client
/// hit the same hub; the v1 envelope is answered in v1, the v2 one in v2.
#[test]
fn hub_serves_both_versions_side_by_side() {
    let hub = hub::Hub::new("https://h");
    hub.register_user("ann", "Ann").unwrap();
    // v1 envelope in, v1 envelope out.
    let reply = hub.handle_wire(r#"{"v":1,"method":"list_repos","params":{}}"#);
    assert!(reply.starts_with(r#"{"v":1,"#), "{reply}");
    // v2 envelope in, v2 result out.
    let reply = hub.handle_wire(r#"{"v":2,"method":"list_repos_page","params":{"limit":10}}"#);
    assert!(reply.starts_with(r#"{"v":2,"#), "{reply}");
    assert!(reply.contains(r#""type":"names_page""#), "{reply}");
    // A v2 method in a v1 envelope is refused by the router too.
    let reply = hub.handle_wire(r#"{"v":1,"method":"list_repos_page","params":{}}"#);
    assert!(reply.contains(r#""code":"protocol""#), "{reply}");
}
