//! Property tests for the wire protocol: any [`ApiRequest`] or
//! [`ApiResponse`] the generators can produce must survive
//! encode → sjson parse → equal, plus golden-string fixtures pinning the
//! exact wire form of one request per method family (the strings a
//! non-Rust client would have to produce).

use citekit::{Citation, MergeStrategy, Resolution};
use gitlite::{CacheStats, ObjectId, RepoPath};
use hub::api::{
    ApiRequest, ApiResponse, ErrorCode, MergeOutcome, MergeSummary, Negotiation, Page, RepoBundle,
    RepoMaintenance, StoreStats, WireError,
};
use hub::{ArchiveReport, AuditEvent, Deposit, LogEntry, Role, SwhKind, User};
use proptest::prelude::*;

// ----- generators ----------------------------------------------------------

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z]{1,8}".prop_map(|s| s)
}

fn arb_repo_id() -> impl Strategy<Value = String> {
    ("[a-z]{1,6}", "[a-z]{1,6}").prop_map(|(o, n)| format!("{o}/{n}"))
}

fn arb_text() -> impl Strategy<Value = String> {
    // Printable ASCII plus some escapes; sjson's own proptests cover the
    // full unicode space.
    "[ -~]{0,16}".prop_map(|s| s)
}

fn arb_path() -> impl Strategy<Value = RepoPath> {
    prop::collection::vec("[a-z0-9]{1,5}", 0..4)
        .prop_map(|cs| RepoPath::parse(&cs.join("/")).expect("generated components are valid"))
}

fn arb_id() -> impl Strategy<Value = ObjectId> {
    any::<u64>().prop_map(|n| ObjectId::hash_bytes(&n.to_be_bytes()))
}

fn arb_citation() -> impl Strategy<Value = Citation> {
    (
        (arb_text(), arb_text(), arb_text(), arb_text(), arb_text()),
        prop::collection::vec(arb_text(), 0..3),
        prop::option::of(arb_text()),
        prop::option::of(arb_text()),
        any::<i64>(),
    )
        .prop_map(
            |((name, owner, date, commit, url), authors, doi, note, stars)| {
                let mut b = Citation::builder(name, owner)
                    .commit(commit, date)
                    .url(url)
                    .authors(authors)
                    .extra("stars", stars);
                if let Some(d) = doi {
                    b = b.doi(d);
                }
                if let Some(n) = note {
                    b = b.note(n);
                }
                b.build()
            },
        )
}

fn arb_role() -> impl Strategy<Value = Role> {
    prop_oneof![Just(Role::Reader), Just(Role::Member), Just(Role::Owner)]
}

fn arb_strategy() -> impl Strategy<Value = MergeStrategy> {
    prop_oneof![
        Just(MergeStrategy::Union),
        Just(MergeStrategy::Ours),
        Just(MergeStrategy::Theirs),
        Just(MergeStrategy::ThreeWay),
    ]
}

fn arb_bundle() -> impl Strategy<Value = RepoBundle> {
    (
        arb_name(),
        prop::option::of(arb_name()),
        prop::collection::vec((arb_name(), arb_id()), 0..3),
        prop::collection::vec((arb_id(), prop::collection::vec(any::<u8>(), 0..24)), 0..4),
        prop::collection::vec(arb_id(), 0..3),
    )
        .prop_map(|(name, head, refs, objects, basis)| RepoBundle {
            name,
            head,
            refs,
            objects,
            basis,
        })
}

fn arb_cursor() -> impl Strategy<Value = Option<String>> {
    prop::option::of("[a-z0-9:]{1,12}".prop_map(|s: String| s))
}

fn arb_limit() -> impl Strategy<Value = Option<u32>> {
    prop::option::of(any::<u64>().prop_map(|n| (n % 600) as u32))
}

fn arb_request() -> impl Strategy<Value = ApiRequest> {
    let token = || "[a-z0-9_]{4,12}".prop_map(|s: String| s);
    prop_oneof![
        (arb_name(), arb_text()).prop_map(|(username, display_name)| ApiRequest::RegisterUser {
            username,
            display_name,
            secret: None
        }),
        arb_name().prop_map(|username| ApiRequest::Login {
            username,
            secret: None
        }),
        token().prop_map(|token| ApiRequest::Revoke { token }),
        token().prop_map(|token| ApiRequest::Whoami { token }),
        (token(), arb_name()).prop_map(|(token, name)| ApiRequest::CreateRepo { token, name }),
        (token(), arb_name(), arb_bundle()).prop_map(|(token, name, bundle)| {
            ApiRequest::ImportRepo {
                token,
                name,
                bundle,
            }
        }),
        (token(), arb_repo_id(), arb_name(), arb_role()).prop_map(
            |(token, repo_id, username, role)| ApiRequest::AddMember {
                token,
                repo_id,
                username,
                role
            }
        ),
        (arb_repo_id(), arb_name())
            .prop_map(|(repo_id, username)| ApiRequest::RoleOf { repo_id, username }),
        (token(), arb_repo_id())
            .prop_map(|(token, repo_id)| ApiRequest::CanWrite { token, repo_id }),
        Just(ApiRequest::ListRepos),
        arb_repo_id().prop_map(|repo_id| ApiRequest::Branches { repo_id }),
        (arb_repo_id(), arb_name())
            .prop_map(|(repo_id, branch)| ApiRequest::ListFiles { repo_id, branch }),
        (arb_repo_id(), arb_name(), arb_path()).prop_map(|(repo_id, branch, path)| {
            ApiRequest::ReadFile {
                repo_id,
                branch,
                path,
            }
        }),
        (arb_repo_id(), arb_name())
            .prop_map(|(repo_id, branch)| ApiRequest::Log { repo_id, branch }),
        (arb_repo_id(), arb_name(), arb_cursor(), arb_limit()).prop_map(
            |(repo_id, branch, cursor, limit)| ApiRequest::LogPage {
                repo_id,
                branch,
                cursor,
                limit,
            }
        ),
        (arb_cursor(), arb_limit())
            .prop_map(|(cursor, limit)| ApiRequest::AuditLogPage { cursor, limit }),
        (arb_cursor(), arb_limit())
            .prop_map(|(cursor, limit)| ApiRequest::ListReposPage { cursor, limit }),
        (arb_repo_id(), prop::collection::vec(arb_id(), 0..4))
            .prop_map(|(repo_id, haves)| ApiRequest::Negotiate { repo_id, haves }),
        arb_repo_id().prop_map(|repo_id| ApiRequest::CloneRepo { repo_id }),
        (arb_repo_id(), arb_name(), arb_path()).prop_map(|(repo_id, branch, path)| {
            ApiRequest::GenerateCitation {
                repo_id,
                branch,
                path,
            }
        }),
        (arb_repo_id(), arb_name(), arb_path()).prop_map(|(repo_id, branch, path)| {
            ApiRequest::CitationEntry {
                repo_id,
                branch,
                path,
            }
        }),
        (
            token(),
            arb_repo_id(),
            arb_name(),
            arb_path(),
            arb_citation()
        )
            .prop_map(
                |(token, repo_id, branch, path, citation)| ApiRequest::AddCite {
                    token,
                    repo_id,
                    branch,
                    path,
                    citation,
                }
            ),
        (
            token(),
            arb_repo_id(),
            arb_name(),
            arb_path(),
            arb_citation()
        )
            .prop_map(
                |(token, repo_id, branch, path, citation)| ApiRequest::ModifyCite {
                    token,
                    repo_id,
                    branch,
                    path,
                    citation,
                }
            ),
        (token(), arb_repo_id(), arb_name(), arb_path()).prop_map(
            |(token, repo_id, branch, path)| ApiRequest::DelCite {
                token,
                repo_id,
                branch,
                path,
            }
        ),
        (
            token(),
            arb_repo_id(),
            arb_name(),
            any::<bool>(),
            arb_bundle()
        )
            .prop_map(|(token, repo_id, branch, force, bundle)| ApiRequest::Push {
                token,
                repo_id,
                branch,
                force,
                bundle,
            }),
        (token(), arb_repo_id(), arb_name()).prop_map(|(token, src_repo_id, new_name)| {
            ApiRequest::Fork {
                token,
                src_repo_id,
                new_name,
            }
        }),
        (
            token(),
            arb_repo_id(),
            arb_name(),
            arb_name(),
            arb_strategy()
        )
            .prop_map(|(token, repo_id, branch, other_branch, strategy)| {
                ApiRequest::MergeBranches {
                    token,
                    repo_id,
                    branch,
                    other_branch,
                    strategy,
                }
            }),
        (token(), arb_repo_id(), arb_name(), arb_text()).prop_map(
            |(token, repo_id, branch, title)| ApiRequest::Deposit {
                token,
                repo_id,
                branch,
                title,
            }
        ),
        arb_text().prop_map(|doi| ApiRequest::ResolveDoi { doi }),
        arb_repo_id().prop_map(|repo_id| ApiRequest::Archive { repo_id }),
        arb_text().prop_map(|swhid| ApiRequest::ResolveSwhid { swhid }),
        arb_repo_id().prop_map(|repo_id| ApiRequest::ArchiveVisits { repo_id }),
        (arb_repo_id(), arb_name())
            .prop_map(|(repo_id, branch)| ApiRequest::CreditedAuthors { repo_id, branch }),
        arb_text().prop_map(|author| ApiRequest::FindReposCiting { author }),
        Just(ApiRequest::AuditLog),
        arb_repo_id().prop_map(|repo_id| ApiRequest::StoreStats { repo_id }),
        Just(ApiRequest::Maintenance),
        any::<i64>().prop_map(|ts| ApiRequest::AdvanceClock { ts }),
    ]
}

fn arb_resolution() -> impl Strategy<Value = Resolution> {
    prop_oneof![
        Just(Resolution::Ours),
        Just(Resolution::Theirs),
        Just(Resolution::Drop),
        Just(Resolution::Unresolved),
        arb_citation().prop_map(Resolution::Custom),
    ]
}

fn arb_merge_summary() -> impl Strategy<Value = MergeSummary> {
    (
        prop_oneof![
            Just(MergeOutcome::AlreadyUpToDate),
            arb_id().prop_map(MergeOutcome::FastForwarded),
            arb_id().prop_map(MergeOutcome::Merged),
        ],
        prop::collection::vec((arb_path(), arb_resolution()), 0..3),
        prop::collection::vec(arb_path(), 0..3),
    )
        .prop_map(|(outcome, citation_conflicts, dropped)| MergeSummary {
            outcome,
            citation_conflicts,
            dropped,
        })
}

fn arb_error() -> impl Strategy<Value = WireError> {
    (
        prop_oneof![
            Just(ErrorCode::AuthFailed),
            Just(ErrorCode::PermissionDenied),
            Just(ErrorCode::UserNotFound),
            Just(ErrorCode::RepoNotFound),
            Just(ErrorCode::BadRequest),
            Just(ErrorCode::NonFastForward),
            Just(ErrorCode::AlreadyCited),
            Just(ErrorCode::Cite),
            Just(ErrorCode::Git),
            Just(ErrorCode::Protocol),
        ],
        arb_text(),
        prop::option::of(arb_text()),
    )
        .prop_map(|(code, message, detail)| WireError {
            code,
            message,
            detail,
        })
}

fn arb_response() -> impl Strategy<Value = ApiResponse> {
    let small = || any::<u8>().prop_map(u64::from);
    prop_oneof![
        Just(ApiResponse::Unit),
        "[a-z0-9_]{4,12}".prop_map(|t: String| ApiResponse::Token(t)),
        (arb_name(), arb_text(), arb_text()).prop_map(|(username, display_name, email)| {
            ApiResponse::User(User {
                username,
                display_name,
                email,
            })
        }),
        arb_repo_id().prop_map(ApiResponse::Id),
        prop::collection::vec(arb_name(), 0..4).prop_map(ApiResponse::Names),
        prop::collection::vec(arb_path(), 0..4).prop_map(ApiResponse::Paths),
        prop::collection::vec(any::<u8>(), 0..32).prop_map(ApiResponse::FileData),
        prop::collection::vec(
            (arb_id(), arb_text(), any::<i64>(), arb_text()).prop_map(
                |(id, author, timestamp, message)| LogEntry {
                    id,
                    author,
                    timestamp,
                    message,
                }
            ),
            0..3
        )
        .prop_map(ApiResponse::Log),
        (
            prop::collection::vec(
                (arb_id(), arb_text(), any::<i64>(), arb_text()).prop_map(
                    |(id, author, timestamp, message)| LogEntry {
                        id,
                        author,
                        timestamp,
                        message,
                    }
                ),
                0..3
            ),
            arb_cursor()
        )
            .prop_map(|(items, next)| ApiResponse::LogPage(Page { items, next })),
        (prop::collection::vec(arb_name(), 0..4), arb_cursor())
            .prop_map(|(items, next)| ApiResponse::NamesPage(Page { items, next })),
        (
            prop::collection::vec(arb_id(), 0..3),
            prop::collection::vec(arb_id(), 0..3)
        )
            .prop_map(|(common, missing)| ApiResponse::Negotiation(Negotiation {
                common,
                missing
            })),
        arb_citation().prop_map(ApiResponse::Citation),
        prop::option::of(arb_citation()).prop_map(ApiResponse::CitationOpt),
        arb_id().prop_map(ApiResponse::Commit),
        any::<bool>().prop_map(ApiResponse::Bool),
        prop::option::of(arb_role()).prop_map(ApiResponse::RoleOpt),
        arb_merge_summary().prop_map(ApiResponse::Merge),
        (
            (arb_text(), arb_repo_id(), arb_id(), arb_id()),
            arb_text(),
            prop::collection::vec(arb_text(), 0..3),
            any::<i64>()
        )
            .prop_map(
                |((doi, repo_id, version, tree), title, creators, deposited_at)| {
                    ApiResponse::Deposit(Deposit {
                        doi,
                        repo_id,
                        version,
                        tree,
                        title,
                        creators,
                        deposited_at,
                    })
                }
            ),
        (
            arb_text(),
            prop::collection::vec(arb_text(), 0..3),
            (small(), small(), small())
        )
            .prop_map(|(origin, heads, (c, d, r))| {
                ApiResponse::Archive(ArchiveReport {
                    origin,
                    heads,
                    new_objects: (c as usize, d as usize, r as usize),
                })
            }),
        (
            prop_oneof![
                Just(SwhKind::Content),
                Just(SwhKind::Directory),
                Just(SwhKind::Revision)
            ],
            arb_id()
        )
            .prop_map(|(kind, id)| ApiResponse::Swhid(kind, id)),
        small().prop_map(ApiResponse::Count),
        prop::collection::vec((arb_text(), prop::collection::vec(arb_path(), 0..3)), 0..3)
            .prop_map(ApiResponse::Credits),
        prop::collection::vec(
            (
                (small(), any::<i64>()),
                prop::option::of(arb_name()),
                arb_name(),
                arb_text(),
                any::<bool>()
            )
                .prop_map(|((seq, timestamp), actor, action, target, ok)| AuditEvent {
                    seq,
                    timestamp,
                    actor,
                    action,
                    target,
                    ok,
                }),
            0..3
        )
        .prop_map(ApiResponse::Audit),
        (
            prop::collection::vec(
                (
                    (small(), any::<i64>()),
                    prop::option::of(arb_name()),
                    arb_name(),
                    arb_text(),
                    any::<bool>()
                )
                    .prop_map(|((seq, timestamp), actor, action, target, ok)| {
                        AuditEvent {
                            seq,
                            timestamp,
                            actor,
                            action,
                            target,
                            ok,
                        }
                    }),
                0..3
            ),
            arb_cursor()
        )
            .prop_map(|(items, next)| ApiResponse::AuditPage(Page { items, next })),
        (
            arb_repo_id(),
            small(),
            prop::option::of((small(), small(), small(), small(), small())),
            prop::option::of(small()),
            prop::option::of(small()),
            prop::option::of(small())
        )
            .prop_map(
                |(repo_id, objects, cache, graph_commits, delta_objects, bloom_commits)| {
                    ApiResponse::Stats(StoreStats {
                        repo_id,
                        objects,
                        cache: cache.map(|(hits, misses, evictions, len, capacity)| CacheStats {
                            hits,
                            misses,
                            evictions,
                            len: len as usize,
                            capacity: capacity as usize,
                        }),
                        graph_commits,
                        delta_objects,
                        bloom_commits,
                    })
                }
            ),
        prop::collection::vec(
            (
                arb_repo_id(),
                any::<bool>(),
                small(),
                small(),
                prop::option::of(arb_text())
            )
                .prop_map(|(repo_id, supported, packed, dropped, error)| {
                    RepoMaintenance {
                        repo_id,
                        supported,
                        packed,
                        dropped,
                        error,
                    }
                }),
            0..3
        )
        .prop_map(ApiResponse::Maintenance),
        arb_bundle().prop_map(ApiResponse::Bundle),
        arb_error().prop_map(ApiResponse::Error),
    ]
}

// ----- the properties ------------------------------------------------------

proptest! {
    #[test]
    fn requests_round_trip(req in arb_request()) {
        let text = req.encode();
        let back = ApiRequest::parse(&text).expect("encoded request must parse");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn responses_round_trip(resp in arb_response()) {
        let text = resp.encode();
        let back = ApiResponse::parse(&text).expect("encoded response must parse");
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn request_parser_never_panics(s in "\\PC{0,64}") {
        let _ = ApiRequest::parse(&s);
    }

    #[test]
    fn response_parser_never_panics(s in "\\PC{0,64}") {
        let _ = ApiResponse::parse(&s);
    }
}

// ----- golden fixtures: one request per method family ----------------------
//
// These pin the exact bytes a non-Rust client must produce. Breaking one
// of these strings means the protocol version must be bumped.

fn golden(req: ApiRequest, expected: &str) {
    assert_eq!(
        req.encode(),
        expected,
        "encoding drifted for {}",
        req.method()
    );
    assert_eq!(
        ApiRequest::parse(expected).unwrap(),
        req,
        "golden string no longer parses for {}",
        req.method()
    );
}

#[test]
fn golden_auth_family() {
    golden(
        ApiRequest::Login {
            username: "ann".into(),
            secret: None,
        },
        r#"{"v":1,"method":"login","params":{"username":"ann"}}"#,
    );
}

#[test]
fn golden_repo_family() {
    golden(
        ApiRequest::AddMember {
            token: "ghp_1".into(),
            repo_id: "ann/p".into(),
            username: "bob".into(),
            role: Role::Member,
        },
        r#"{"v":1,"method":"add_member","params":{"token":"ghp_1","repo_id":"ann/p","username":"bob","role":"member"}}"#,
    );
}

#[test]
fn golden_read_family() {
    golden(
        ApiRequest::ReadFile {
            repo_id: "ann/p".into(),
            branch: "main".into(),
            path: RepoPath::parse("src/lib.rs").unwrap(),
        },
        r#"{"v":1,"method":"read_file","params":{"repo_id":"ann/p","branch":"main","path":"src/lib.rs"}}"#,
    );
}

#[test]
fn golden_citation_family() {
    golden(
        ApiRequest::AddCite {
            token: "ghp_1".into(),
            repo_id: "ann/p".into(),
            branch: "main".into(),
            path: RepoPath::parse("src").unwrap(),
            citation: Citation::builder("core", "Ann").author("Ann").build(),
        },
        r#"{"v":1,"method":"add_cite","params":{"token":"ghp_1","repo_id":"ann/p","branch":"main","path":"src","citation":{"repoName":"core","owner":"Ann","committedDate":"","commitID":"","url":"","authorList":["Ann"]}}}"#,
    );
}

#[test]
fn golden_sync_family() {
    golden(
        ApiRequest::MergeBranches {
            token: "ghp_1".into(),
            repo_id: "ann/p".into(),
            branch: "main".into(),
            other_branch: "gui".into(),
            strategy: MergeStrategy::Union,
        },
        r#"{"v":1,"method":"merge_branches","params":{"token":"ghp_1","repo_id":"ann/p","branch":"main","other_branch":"gui","strategy":"union"}}"#,
    );
}

#[test]
fn golden_archive_family() {
    golden(
        ApiRequest::Deposit {
            token: "ghp_1".into(),
            repo_id: "ann/p".into(),
            branch: "main".into(),
            title: "p v1.0".into(),
        },
        r#"{"v":1,"method":"deposit","params":{"token":"ghp_1","repo_id":"ann/p","branch":"main","title":"p v1.0"}}"#,
    );
}

#[test]
fn golden_credit_family() {
    golden(
        ApiRequest::FindReposCiting {
            author: "Ada".into(),
        },
        r#"{"v":1,"method":"find_repos_citing","params":{"author":"Ada"}}"#,
    );
}

#[test]
fn golden_operations_family() {
    golden(
        ApiRequest::Maintenance,
        r#"{"v":1,"method":"maintenance","params":{}}"#,
    );
    golden(
        ApiRequest::StoreStats {
            repo_id: "ann/p".into(),
        },
        r#"{"v":1,"method":"store_stats","params":{"repo_id":"ann/p"}}"#,
    );
}

#[test]
fn golden_responses() {
    let resp = ApiResponse::Commit(
        ObjectId::from_hex("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa").unwrap(),
    );
    assert_eq!(
        resp.encode(),
        r#"{"v":1,"result":{"type":"commit","id":"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"}}"#
    );
    let err = ApiResponse::Error(WireError {
        code: ErrorCode::RepoNotFound,
        message: "no such repository: ann/p".into(),
        detail: Some("ann/p".into()),
    });
    assert_eq!(
        err.encode(),
        r#"{"v":1,"error":{"code":"repo_not_found","message":"no such repository: ann/p","detail":"ann/p"}}"#
    );
}

#[test]
fn golden_store_stats_absent_field_rules() {
    // A stats payload from a backend with neither delta packs nor Bloom
    // filters must stay byte-identical to the pre-delta wire form: the
    // new keys are simply absent.
    let old_shape = ApiResponse::Stats(StoreStats {
        repo_id: "ann/p".into(),
        objects: 7,
        cache: None,
        graph_commits: None,
        delta_objects: None,
        bloom_commits: None,
    });
    let old_wire = r#"{"v":1,"result":{"type":"stats","stats":{"repo_id":"ann/p","objects":7}}}"#;
    assert_eq!(old_shape.encode(), old_wire);
    // And an old peer's bytes parse with the new fields defaulting to
    // absent, not erroring.
    assert_eq!(ApiResponse::parse(old_wire).unwrap(), old_shape);

    // When the backend reports them, the keys appear after graph_commits.
    let new_shape = ApiResponse::Stats(StoreStats {
        repo_id: "ann/p".into(),
        objects: 7,
        cache: None,
        graph_commits: Some(5),
        delta_objects: Some(3),
        bloom_commits: Some(5),
    });
    let new_wire = r#"{"v":1,"result":{"type":"stats","stats":{"repo_id":"ann/p","objects":7,"graph_commits":5,"delta_objects":3,"bloom_commits":5}}}"#;
    assert_eq!(new_shape.encode(), new_wire);
    assert_eq!(ApiResponse::parse(new_wire).unwrap(), new_shape);
}
