//! Protocol v3 socket tests: binary-framing sessions through the
//! event-driven server, mixed v1/v2/v3 traffic on one listener, the
//! line-server fallback, the hardening limits (frame caps, read
//! timeouts), transport-closed mapping, and batch envelopes over TCP.

use gitlite::{path, Signature};
use hub::transport::frame;
use hub::{
    ApiRequest, ApiResponse, ErrorCode, Hub, HubClient, HubError, ServerConfig, SocketServer,
    TcpTransport, Transport,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn serve() -> (Arc<Hub>, SocketServer) {
    let hub = Arc::new(Hub::new("https://hub.local"));
    let server = SocketServer::bind(Arc::clone(&hub), "127.0.0.1:0").expect("bind loopback");
    (hub, server)
}

#[test]
fn port_zero_resolves_to_a_real_port() {
    let (_hub, server) = serve();
    assert_ne!(server.local_addr().port(), 0);
}

/// The full session of `transport_tcp.rs`, but negotiated up to binary
/// framing: bundles travel as compressed raw bytes, not hex.
#[test]
fn full_session_over_binary_framing() {
    let (_hub, server) = serve();
    let client = HubClient::connect(server.local_addr()).expect("connect");

    client.register_user("ann", "Ann Author").unwrap();
    let token = client.login("ann").unwrap();
    // The first call probed and upgraded.
    assert!(client.transport().is_binary());

    let repo_id = client.create_repo(&token, "p").unwrap();
    let mut local = client.clone_repo(&repo_id).unwrap();
    for i in 0..6 {
        local
            .worktree_mut()
            .write(&path("src/lib.rs"), format!("// rev {i}\n").into_bytes())
            .unwrap();
        local
            .commit(
                Signature::new("Ann Author", "ann@x", 100 + i),
                format!("c{i}"),
            )
            .unwrap();
    }
    let tip = local.branch_tip("main").unwrap();
    assert_eq!(
        client
            .push(&token, &repo_id, "main", &local, "main", false)
            .unwrap(),
        tip
    );
    let cloned = client.clone_repo(&repo_id).unwrap();
    assert_eq!(cloned.branch_tip("main").unwrap(), tip);
    assert_eq!(
        cloned.worktree().read_text(&path("src/lib.rs")).unwrap(),
        "// rev 5\n"
    );
}

/// One listener, three protocol generations at once: a raw v1 line
/// client, a raw v2 line client and a v3 binary client interleave
/// requests without disturbing each other.
#[test]
fn v1_v2_and_v3_clients_interleave_on_one_listener() {
    let (_hub, server) = serve();
    let addr = server.local_addr();

    // v3 binary client sets up some state.
    let v3 = HubClient::connect(addr).unwrap();
    v3.register_user("ann", "Ann").unwrap();
    let token = v3.login("ann").unwrap();
    v3.create_repo(&token, "p").unwrap();
    assert!(v3.transport().is_binary());

    // Raw v1 line client: write a line, read a line.
    let mut v1 = BufReader::new(TcpStream::connect(addr).unwrap());
    v1.get_ref()
        .write_all(b"{\"v\":1,\"method\":\"list_repos\",\"params\":{}}\n")
        .unwrap();
    let mut reply = String::new();
    v1.read_line(&mut reply).unwrap();
    assert!(reply.starts_with(r#"{"v":1,"#), "{reply}");
    assert!(reply.contains("ann/p"), "{reply}");

    // Raw v2 line client on its own connection.
    let mut v2 = BufReader::new(TcpStream::connect(addr).unwrap());
    v2.get_ref()
        .write_all(b"{\"v\":2,\"method\":\"list_repos_page\",\"params\":{}}\n")
        .unwrap();
    let mut reply = String::new();
    v2.read_line(&mut reply).unwrap();
    assert!(reply.starts_with(r#"{"v":2,"#), "{reply}");
    assert!(reply.contains(r#""type":"names_page""#), "{reply}");

    // The v3 client keeps working between and after the line traffic.
    assert_eq!(v3.list_repos().unwrap(), vec!["ann/p".to_owned()]);

    // And the line connections stay line-framed: another round each.
    v1.get_ref()
        .write_all(b"{\"v\":1,\"method\":\"list_repos\",\"params\":{}}\n")
        .unwrap();
    let mut reply = String::new();
    v1.read_line(&mut reply).unwrap();
    assert!(reply.contains(r#""type":"names""#), "{reply}");
}

/// A client dialing a line-only (pre-v3) server falls back to line
/// framing on the same connection and works normally.
#[test]
fn client_falls_back_against_a_line_only_server() {
    let hub = Arc::new(Hub::new("https://hub.local"));
    hub.register_user("ann", "Ann").unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let served = Arc::clone(&hub);
    let stub = std::thread::spawn(move || {
        // The old thread-per-connection shape: read lines, answer lines,
        // garbage gets a protocol-error envelope. No PONG, ever.
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        while {
            line.clear();
            reader.read_line(&mut line).unwrap_or(0) > 0
        } {
            let reply = served.handle_wire(line.trim());
            let mut out = stream.try_clone().unwrap();
            out.write_all(reply.as_bytes()).unwrap();
            out.write_all(b"\n").unwrap();
        }
    });

    let client = HubClient::connect(addr).unwrap();
    // Works — and without the binary upgrade.
    assert!(client.list_repos().unwrap().is_empty());
    assert!(!client.transport().is_binary());
    let token = client.login("ann").unwrap();
    client.create_repo(&token, "p").unwrap();
    assert_eq!(client.list_repos().unwrap(), vec!["ann/p".to_owned()]);
    drop(client);
    stub.join().unwrap();
}

/// A server that goes away mid-session surfaces as the dedicated
/// transport-closed error, not a generic protocol failure.
#[test]
fn server_shutdown_maps_to_transport_closed() {
    let (hub, server) = serve();
    let client = HubClient::connect(server.local_addr()).unwrap();
    assert!(client.list_repos().unwrap().is_empty());
    server.shutdown(); // closes every connection
    let mut saw_closed = false;
    for _ in 0..100 {
        match client.list_repos() {
            Err(HubError::TransportClosed(msg)) => {
                assert!(!msg.is_empty());
                saw_closed = true;
                break;
            }
            // The close can race the next write; keep trying briefly.
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(saw_closed, "hangup never surfaced as TransportClosed");

    // The server kept its own books: the abrupt teardown the client just
    // observed shows up in the transport counters (trusted in-process
    // read — the socket is gone).
    let snapshot = hub.server_metrics(None).unwrap();
    let transport = snapshot.transport.expect("socket server registered gauges");
    assert!(
        transport.transport_closed >= 1,
        "shutdown under a live peer must count as an abrupt close, got {}",
        transport.transport_closed
    );
    assert_eq!(transport.open_connections, 0, "all gauges wound down");
}

/// An oversized binary frame is answered with a protocol error and the
/// connection is closed.
#[test]
fn oversized_frames_are_refused() {
    let hub = Arc::new(Hub::new("https://hub.local"));
    let config = ServerConfig {
        max_frame_len: 128,
        ..ServerConfig::default()
    };
    let server = SocketServer::bind_with(Arc::clone(&hub), "127.0.0.1:0", config).unwrap();

    let transport = TcpTransport::connect(server.local_addr()).unwrap();
    // Small envelopes fit.
    let reply = transport.send(r#"{"v":1,"method":"list_repos","params":{}}"#);
    assert!(reply.contains(r#""type":"names""#), "{reply}");
    // An envelope past the cap gets a protocol error...
    let long = format!(
        r#"{{"v":1,"method":"login","params":{{"username":"{}"}}}}"#,
        "a".repeat(200)
    );
    let reply = transport.send(&long);
    assert!(reply.contains(r#""code":"protocol""#), "{reply}");
    assert!(reply.contains("exceeds"), "{reply}");
    // ...and the connection is then closed.
    let mut saw_closed = false;
    for _ in 0..100 {
        let reply = transport.send(r#"{"v":1,"method":"list_repos","params":{}}"#);
        if reply.contains(r#""code":"transport_closed""#) {
            saw_closed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_closed, "connection survived a frame-limit violation");
}

/// The same cap governs line framing: a request line that never ends is
/// answered (in line framing) and closed.
#[test]
fn oversized_lines_are_refused() {
    let hub = Arc::new(Hub::new("https://hub.local"));
    let config = ServerConfig {
        max_frame_len: 128,
        ..ServerConfig::default()
    };
    let server = SocketServer::bind_with(Arc::clone(&hub), "127.0.0.1:0", config).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // 300 bytes of an unterminated "line".
    stream.write_all(&[b'{'; 300]).unwrap();
    let mut reply = String::new();
    let mut reader = BufReader::new(stream);
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains(r#""code":"protocol""#), "{reply}");
    assert!(reply.contains("frame limit"), "{reply}");
    // Close follows: EOF.
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).unwrap_or(0), 0);
}

/// A connection stalled mid-request is timed out: error reply, then
/// close. Idle connections between requests are unaffected.
#[test]
fn stalled_partial_requests_time_out() {
    let hub = Arc::new(Hub::new("https://hub.local"));
    let config = ServerConfig {
        read_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let server = SocketServer::bind_with(Arc::clone(&hub), "127.0.0.1:0", config).unwrap();

    // Binary connection that starts a frame and stops: the header
    // promises 100 payload bytes, only 3 arrive.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(&[frame::ENV, 0, 0, 0, 100, 1, 2, 3])
        .unwrap();
    let (envelope, _) = frame::read_message(&mut stream).expect("timeout reply");
    assert!(envelope.contains(r#""code":"protocol""#), "{envelope}");
    assert!(envelope.contains("timed out"), "{envelope}");
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0);

    // An idle connection with no partial request survives far past the
    // read timeout.
    let client = HubClient::connect(server.local_addr()).unwrap();
    assert!(client.list_repos().unwrap().is_empty());
    std::thread::sleep(Duration::from_millis(500));
    assert!(client.list_repos().unwrap().is_empty());
}

/// Batch envelopes over the socket: one round trip, per-item results,
/// and the per-item transport guards (token scoping, operator seams).
#[test]
fn batch_over_the_socket_guards_each_item() {
    let (_hub, server) = serve();
    let addr = server.local_addr();

    let conn_a = HubClient::connect(addr).unwrap();
    conn_a.register_user("ann", "Ann").unwrap();
    let token_a = conn_a.login("ann").unwrap();
    conn_a.create_repo(&token_a, "p").unwrap();

    let conn_b = HubClient::connect(addr).unwrap();
    conn_b.register_user("bob", "Bob").unwrap();
    let token_b = conn_b.login("bob").unwrap();

    // On connection B: its own token works, A's leaked token is refused,
    // an operator seam is refused, and an anonymous read sails through —
    // all in one envelope, each item judged alone.
    let responses = conn_b
        .batch(vec![
            ApiRequest::Whoami {
                token: token_b.as_str().to_owned(),
            },
            ApiRequest::Whoami {
                token: token_a.as_str().to_owned(),
            },
            ApiRequest::Maintenance,
            ApiRequest::ListRepos,
        ])
        .unwrap();
    assert_eq!(responses.len(), 4);
    match &responses[0] {
        ApiResponse::User(u) => assert_eq!(u.username, "bob"),
        other => panic!("expected bob, got {other:?}"),
    }
    match &responses[1] {
        ApiResponse::Error(e) => assert_eq!(e.code, ErrorCode::AuthFailed),
        other => panic!("expected auth_failed, got {other:?}"),
    }
    match &responses[2] {
        ApiResponse::Error(e) => assert_eq!(e.code, ErrorCode::PermissionDenied),
        other => panic!("expected permission_denied, got {other:?}"),
    }
    match &responses[3] {
        ApiResponse::Names(names) => assert_eq!(names, &["ann/p".to_owned()]),
        other => panic!("expected names, got {other:?}"),
    }
}

/// A batched login mints its token on the issuing connection, exactly
/// like a sequential one.
#[test]
fn batched_login_scopes_its_token() {
    let (_hub, server) = serve();
    let client = HubClient::connect(server.local_addr()).unwrap();
    client.register_user("ann", "Ann").unwrap();
    let responses = client
        .batch(vec![ApiRequest::Login {
            username: "ann".into(),
            secret: None,
        }])
        .unwrap();
    let token = match &responses[0] {
        ApiResponse::Token(t) => hub::Token::new(t.clone()),
        other => panic!("expected token, got {other:?}"),
    };
    // Minted in a batch, honored outside it — same connection.
    assert_eq!(client.whoami(&token).unwrap().username, "ann");
}

/// `server_metrics` over the socket is operator-scoped: an operator
/// token reads the counters, a plain member token and the tokenless
/// form are both refused.
#[test]
fn server_metrics_on_the_socket_requires_an_operator_token() {
    let (hub, server) = serve();
    hub.register_user("ops", "Ops").unwrap();
    hub.grant_operator("ops").unwrap();
    let addr = server.local_addr();

    let client = HubClient::connect(addr).unwrap();
    client.register_user("ann", "Ann").unwrap();
    let member = client.login("ann").unwrap();

    // A plain member token is refused.
    match client.server_metrics(Some(&member)) {
        Err(HubError::PermissionDenied(msg)) => assert!(msg.contains("operator"), "{msg}"),
        other => panic!("expected permission_denied, got {other:?}"),
    }
    // The tokenless (in-process trusted) form is refused over the wire.
    match client.server_metrics(None) {
        Err(HubError::PermissionDenied(msg)) => assert!(msg.contains("operator"), "{msg}"),
        other => panic!("expected permission_denied, got {other:?}"),
    }

    // An operator token on its own connection reads the snapshot, and the
    // method calls made above are already on the books.
    let ops_conn = HubClient::connect(addr).unwrap();
    let ops_token = ops_conn.login("ops").unwrap();
    let snapshot = ops_conn.server_metrics(Some(&ops_token)).unwrap();
    let login_calls: u64 = snapshot
        .methods
        .iter()
        .filter(|m| m.method == "login")
        .map(|m| m.calls)
        .sum();
    assert!(login_calls >= 2, "logins recorded, got {login_calls}");
    let transport = snapshot.transport.expect("socket gauges registered");
    assert!(transport.open_connections >= 2, "both connections counted");
    assert!(transport.bytes_in_binary + transport.bytes_in_line > 0);
}

/// Interleaved pipelining on one binary connection: several requests
/// written before any reply is read come back in order.
#[test]
fn pipelined_binary_requests_are_answered_in_order() {
    let (_hub, server) = serve();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut burst = Vec::new();
    for name in ["ann", "bob", "cat"] {
        let req = ApiRequest::RegisterUser {
            username: name.into(),
            display_name: name.to_uppercase(),
            secret: None,
        };
        burst.extend_from_slice(&frame::encode_message(&req.encode(), &[]));
    }
    burst.extend_from_slice(&frame::encode_message(&ApiRequest::ListRepos.encode(), &[]));
    stream.write_all(&burst).unwrap();
    for _ in 0..3 {
        let (envelope, _) = frame::read_message(&mut stream).unwrap();
        assert!(envelope.contains(r#""type":"unit""#), "{envelope}");
    }
    let (envelope, _) = frame::read_message(&mut stream).unwrap();
    assert!(envelope.contains(r#""type":"names""#), "{envelope}");
}
