//! End-to-end protocol coverage: every method family driven through
//! [`HubClient`] over the [`InProcess`] transport — so each call is
//! encoded to the wire envelope, parsed by the hub, dispatched, and the
//! response parsed back. Anything that works here works over a socket.

use citekit::{Citation, CitedRepo, MergeStrategy};
use gitlite::{path, RepoPath, Repository, Signature};
use hub::api::MergeOutcome;
use hub::{Hub, HubClient, HubError, Role};

fn client_hub() -> Hub {
    Hub::new("https://hub.example")
}

#[test]
fn auth_and_repo_lifecycle_over_the_wire() {
    let hub = client_hub();
    let client = HubClient::in_process(&hub);

    // Auth family.
    client.register_user("ann", "Ann A").unwrap();
    client.register_user("bob", "Bob B").unwrap();
    let ann = client.login("ann").unwrap();
    let bob = client.login("bob").unwrap();
    assert_eq!(client.whoami(&ann).unwrap().display_name, "Ann A");
    assert!(matches!(
        client.login("nobody"),
        Err(HubError::UserNotFound(_))
    ));

    // Repo CRUD family.
    let repo_id = client.create_repo(&ann, "proto").unwrap();
    assert_eq!(repo_id, "ann/proto");
    assert_eq!(client.list_repos().unwrap(), vec!["ann/proto".to_owned()]);
    client
        .add_member(&ann, &repo_id, "bob", Role::Member)
        .unwrap();
    assert_eq!(client.role_of(&repo_id, "bob").unwrap(), Some(Role::Member));
    assert!(client.can_write(&bob, &repo_id).unwrap());

    // Revoked tokens fail with a typed error reconstructed from its code.
    client.revoke(&bob).unwrap();
    assert!(matches!(
        client.can_write(&bob, &repo_id),
        Err(HubError::AuthFailed)
    ));
}

#[test]
fn reads_citations_and_sync_over_the_wire() {
    let hub = client_hub();
    let client = HubClient::in_process(&hub);
    client.register_user("ann", "Ann A").unwrap();
    let ann = client.login("ann").unwrap();
    let repo_id = client.create_repo(&ann, "proto").unwrap();

    // Clone over the wire, commit locally, push the objects back.
    let mut local = client.clone_repo(&repo_id).unwrap();
    local
        .worktree_mut()
        .write(&path("src/lib.rs"), &b"pub fn x() {}\n"[..])
        .unwrap();
    local
        .commit(Signature::new("Ann A", "a@x", 100), "add lib")
        .unwrap();
    client
        .push(&ann, &repo_id, "main", &local, "main", false)
        .unwrap();

    // Read family.
    assert_eq!(client.branches(&repo_id).unwrap(), vec!["main".to_owned()]);
    let files = client.list_files(&repo_id, "main").unwrap();
    assert!(files.contains(&path("src/lib.rs")));
    assert_eq!(
        client
            .read_file(&repo_id, "main", &path("src/lib.rs"))
            .unwrap(),
        b"pub fn x() {}\n"
    );
    let log = client.log(&repo_id, "main").unwrap();
    assert_eq!(log[0].message, "add lib");

    // Citation family.
    client
        .add_cite(
            &ann,
            &repo_id,
            "main",
            &path("src"),
            Citation::builder("proto-core", "Ann A")
                .author("Ann A")
                .build(),
        )
        .unwrap();
    let c = client
        .generate_citation(&repo_id, "main", &path("src/lib.rs"))
        .unwrap();
    assert_eq!(c.repo_name, "proto-core");
    let explicit = client
        .citation_entry(&repo_id, "main", &path("src"))
        .unwrap()
        .unwrap();
    assert_eq!(explicit.repo_name, "proto-core");
    let mut modified = explicit.clone();
    modified.note = Some("wire".into());
    client
        .modify_cite(&ann, &repo_id, "main", &path("src"), modified)
        .unwrap();
    client
        .del_cite(&ann, &repo_id, "main", &path("src"))
        .unwrap();
    assert!(client
        .citation_entry(&repo_id, "main", &path("src"))
        .unwrap()
        .is_none());

    // Sync family: fork + server-side merge.
    client.register_user("sue", "Sue S").unwrap();
    let sue = client.login("sue").unwrap();
    let fork_id = client.fork(&sue, &repo_id, "proto-fork").unwrap();
    assert_eq!(fork_id, "sue/proto-fork");
    let root = client
        .generate_citation(&fork_id, "main", &RepoPath::root())
        .unwrap();
    assert_eq!(root.owner, "Sue S");

    let mut work = CitedRepo::open(client.clone_repo(&repo_id).unwrap()).unwrap();
    work.create_branch("side").unwrap();
    work.checkout_branch("side").unwrap();
    work.write_file(&path("side.txt"), &b"side\n"[..]).unwrap();
    work.commit(Signature::new("Ann A", "a@x", 200), "side work")
        .unwrap();
    let work = work.into_repository();
    client
        .push(&ann, &repo_id, "side", &work, "side", false)
        .unwrap();
    let report = client
        .merge_branches(&ann, &repo_id, "main", "side", MergeStrategy::Union)
        .unwrap();
    assert!(matches!(
        report.outcome,
        MergeOutcome::Merged(_) | MergeOutcome::FastForwarded(_)
    ));
    assert!(client
        .list_files(&repo_id, "main")
        .unwrap()
        .contains(&path("side.txt")));

    // Non-fast-forward pushes come back as their own error code.
    let mut stale = CitedRepo::open(client.clone_repo(&fork_id).unwrap()).unwrap();
    stale.write_file(&path("stale.txt"), &b"s\n"[..]).unwrap();
    stale
        .commit(Signature::new("Ann A", "a@x", 300), "stale")
        .unwrap();
    let stale = stale.into_repository();
    assert!(matches!(
        client.push(&ann, &repo_id, "main", &stale, "main", false),
        Err(HubError::Git(gitlite::GitError::NonFastForward { .. }))
    ));
}

#[test]
fn archives_credit_and_operations_over_the_wire() {
    let hub = client_hub();
    let client = HubClient::in_process(&hub);
    client.register_user("ann", "Ann A").unwrap();
    let ann = client.login("ann").unwrap();
    let repo_id = client.create_repo(&ann, "proto").unwrap();

    // Archive family.
    let deposit = client.deposit(&ann, &repo_id, "main", "proto v1").unwrap();
    assert!(deposit.doi.starts_with("10.5281/zenodo."));
    assert_eq!(client.resolve_doi(&deposit.doi).unwrap().repo_id, repo_id);
    let report = client.archive(&repo_id).unwrap();
    assert_eq!(report.heads.len(), 1);
    assert!(client.resolve_swhid(&report.heads[0]).is_ok());
    assert_eq!(client.archive_visits(&repo_id).unwrap(), 1);

    // Credit family.
    let credits = client.credited_authors(&repo_id, "main").unwrap();
    assert_eq!(credits[0].0, "Ann A");
    let citing = client.find_repos_citing("Ann A").unwrap();
    assert_eq!(citing.len(), 1);
    assert_eq!(citing[0].0, repo_id);

    // Operations family.
    let audit = client.audit_log().unwrap();
    assert!(audit.iter().any(|e| e.action == "deposit"));
    let stats = client.store_stats(&repo_id).unwrap();
    assert!(stats.objects > 0);
    let maintenance = client.maintenance().unwrap();
    assert_eq!(maintenance.len(), 1);
    assert!(!maintenance[0].supported, "mem stores have no gc");
}

#[test]
fn import_repo_over_the_wire_rehomes_objects() {
    let hub = client_hub();
    let client = HubClient::in_process(&hub);
    client.register_user("lab", "The Lab").unwrap();
    let lab = client.login("lab").unwrap();

    let mut legacy = Repository::init("legacy");
    legacy
        .worktree_mut()
        .write(&path("a.txt"), &b"a\n"[..])
        .unwrap();
    legacy
        .commit(Signature::new("Ada", "ada@x", 10), "first")
        .unwrap();
    let cited = citekit::retrofit(
        legacy,
        &citekit::RetrofitOptions::new("maintainers", "https://hub.example/lab/legacy"),
        Signature::new("Ada", "ada@x", 11),
    )
    .unwrap()
    .0;

    let repo_id = client.import_repo(&lab, "legacy", cited.repo()).unwrap();
    assert_eq!(repo_id, "lab/legacy");
    let c = client
        .generate_citation(&repo_id, "main", &path("a.txt"))
        .unwrap();
    assert!(!c.repo_name.is_empty());
    // Importing a contentless repository is refused.
    let empty = Repository::init("empty");
    assert!(matches!(
        client.import_repo(&lab, "empty", &empty),
        Err(HubError::Git(_))
    ));
}
