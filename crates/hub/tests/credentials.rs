//! Untrusted-deployment behaviour: secret-bearing registration and
//! login, brute-force lockout with decay, token expiry and refresh
//! against the hub clock, per-user/per-repo rate limits, and size
//! quotas on push/import — all surfaced as typed errors, all audited,
//! all deterministic (the hub clock only moves when an operation or
//! `advance_clock_to` moves it).

use gitlite::{path, Repository, Signature};
use hub::{
    ApiResponse, Hub, HubError, LimitsConfig, RateLimit, FAILURE_DECAY_TICKS, LOCKOUT_TICKS,
    MAX_LOGIN_FAILURES,
};

fn hub() -> Hub {
    Hub::new("https://hub.local")
}

/// A one-commit repository whose objects sum to a few hundred bytes —
/// enough to land on either side of a small quota.
fn small_repo(text: &str) -> Repository {
    let mut repo = Repository::init("local");
    repo.worktree_mut()
        .write(&path("f.txt"), text.as_bytes())
        .unwrap();
    repo.commit(Signature::new("Ann", "a@x", 100), "c").unwrap();
    repo
}

#[test]
fn secret_protected_accounts_verify_the_secret() {
    let hub = hub();
    hub.register_user_with_secret("ann", "Ann", "s3cret")
        .unwrap();
    // Wrong secret and missing secret are the same uniform failure.
    assert!(matches!(
        hub.login_with_secret("ann", "wrong"),
        Err(HubError::AuthFailed)
    ));
    assert!(matches!(hub.login("ann"), Err(HubError::AuthFailed)));
    // The right secret mints a working token.
    let token = hub.login_with_secret("ann", "s3cret").unwrap();
    assert_eq!(hub.whoami(&token).unwrap().username, "ann");
}

#[test]
fn open_accounts_refuse_an_unexpected_secret() {
    let hub = hub();
    hub.register_user("bob", "Bob").unwrap();
    // Presenting a secret to an account that has none is refused rather
    // than silently ignored.
    assert!(matches!(
        hub.login_with_secret("bob", "anything"),
        Err(HubError::AuthFailed)
    ));
    assert!(hub.login("bob").is_ok());
}

#[test]
fn auth_required_hubs_demand_secrets_everywhere() {
    let hub = hub();
    hub.register_user("early", "Joined Before").unwrap();
    hub.set_auth_required(true);
    // Registration without a secret is refused outright.
    assert!(matches!(
        hub.register_user("late", "Too Late"),
        Err(HubError::BadRequest(_))
    ));
    hub.register_user_with_secret("late", "On Time", "pw")
        .unwrap();
    assert!(hub.login_with_secret("late", "pw").is_ok());
    // Accounts that predate the policy can no longer log in secretless.
    assert!(matches!(hub.login("early"), Err(HubError::AuthFailed)));
}

#[test]
fn brute_force_locks_the_account_then_releases() {
    let hub = hub();
    hub.register_user_with_secret("ann", "Ann", "s3cret")
        .unwrap();
    for _ in 0..MAX_LOGIN_FAILURES {
        assert!(matches!(
            hub.login_with_secret("ann", "guess"),
            Err(HubError::AuthFailed)
        ));
    }
    // Locked: even the right secret is refused — no oracle during the
    // window — with a typed retry-after hint in hub-clock ticks.
    let locked = hub.login_with_secret("ann", "s3cret");
    let retry_after = match locked {
        Err(HubError::RateLimited { retry_after }) => retry_after,
        other => panic!("expected RateLimited, got {other:?}"),
    };
    assert!(retry_after > 0 && retry_after <= LOCKOUT_TICKS);
    // Wait out the window on the deterministic clock and get back in.
    hub.advance_clock_to(2 * LOCKOUT_TICKS + MAX_LOGIN_FAILURES as i64);
    let token = hub.login_with_secret("ann", "s3cret").unwrap();
    assert_eq!(hub.whoami(&token).unwrap().username, "ann");
    // Success cleared the streak: one more bad guess is a plain failure.
    assert!(matches!(
        hub.login_with_secret("ann", "guess"),
        Err(HubError::AuthFailed)
    ));
}

#[test]
fn failure_streaks_decay_between_attempts() {
    let hub = hub();
    hub.register_user_with_secret("ann", "Ann", "s3cret")
        .unwrap();
    for _ in 0..MAX_LOGIN_FAILURES - 1 {
        let _ = hub.login_with_secret("ann", "guess");
    }
    // A long-enough quiet period resets the count, so the next failure
    // starts a fresh streak instead of tripping the lock.
    hub.advance_clock_to(FAILURE_DECAY_TICKS + MAX_LOGIN_FAILURES as i64);
    assert!(matches!(
        hub.login_with_secret("ann", "guess"),
        Err(HubError::AuthFailed)
    ));
    let token = hub.login_with_secret("ann", "s3cret").unwrap();
    assert_eq!(hub.whoami(&token).unwrap().username, "ann");
}

#[test]
fn tokens_expire_on_the_hub_clock_and_refresh() {
    let hub = hub();
    hub.set_token_ttl(10);
    hub.register_user("ann", "Ann").unwrap();
    let token = hub.login("ann").unwrap();
    assert_eq!(hub.whoami(&token).unwrap().username, "ann");

    hub.advance_clock_to(1_000);
    // Expired is its own typed error — distinguishable from a bad token.
    assert!(matches!(hub.whoami(&token), Err(HubError::TokenExpired)));
    // Refresh exchanges it for a fresh token and revokes the old one.
    let fresh = hub.refresh(&token).unwrap();
    assert_eq!(hub.whoami(&fresh).unwrap().username, "ann");
    assert!(matches!(hub.whoami(&token), Err(HubError::AuthFailed)));
    // A second refresh of the retired token fails like any unknown token.
    assert!(matches!(hub.refresh(&token), Err(HubError::AuthFailed)));

    // ttl 0 turns expiry back off for newly minted tokens.
    hub.set_token_ttl(0);
    let forever = hub.login("ann").unwrap();
    hub.advance_clock_to(1_000_000);
    assert_eq!(hub.whoami(&forever).unwrap().username, "ann");
}

#[test]
fn per_user_rate_limit_charges_token_bearing_requests() {
    let hub = hub();
    hub.register_user("ann", "Ann").unwrap();
    let token = hub.login("ann").unwrap();
    hub.set_limits(LimitsConfig {
        user_rate: Some(RateLimit {
            capacity: 3,
            refill_per_tick: 1,
        }),
        ..LimitsConfig::default()
    });
    for _ in 0..3 {
        hub.whoami(&token).unwrap();
    }
    assert!(matches!(
        hub.whoami(&token),
        Err(HubError::RateLimited { retry_after: 1 })
    ));
    // Anonymous reads carry no token, so they are never charged here.
    assert!(hub.list_repos().is_empty());
    // One clock tick refills one request.
    hub.advance_clock_to(hub_clock(&hub) + 1);
    hub.whoami(&token).unwrap();
    assert!(matches!(
        hub.whoami(&token),
        Err(HubError::RateLimited { .. })
    ));
}

#[test]
fn per_repo_rate_limit_charges_requests_naming_the_repo() {
    let hub = hub();
    hub.register_user("ann", "Ann").unwrap();
    let token = hub.login("ann").unwrap();
    let repo_id = hub.create_repo(&token, "p").unwrap();
    hub.set_limits(LimitsConfig {
        repo_rate: Some(RateLimit {
            capacity: 2,
            refill_per_tick: 1,
        }),
        ..LimitsConfig::default()
    });
    hub.branches(&repo_id).unwrap();
    hub.list_files(&repo_id, "main").unwrap();
    assert!(matches!(
        hub.branches(&repo_id),
        Err(HubError::RateLimited { retry_after: 1 })
    ));
    // Requests that name no repository stay unthrottled.
    assert_eq!(hub.list_repos(), vec![repo_id]);
}

#[test]
fn bundle_quota_rejects_oversized_push_and_import() {
    let hub = hub();
    hub.register_user("ann", "Ann").unwrap();
    let token = hub.login("ann").unwrap();
    hub.set_limits(LimitsConfig {
        max_bundle_bytes: Some(64),
        ..LimitsConfig::default()
    });
    // Import: the bundle is checked before the repository exists.
    let big = small_repo(&"x".repeat(512));
    assert!(matches!(
        hub.import_repo(&token, "big", big),
        Err(HubError::QuotaExceeded(_))
    ));
    assert!(hub.list_repos().is_empty());

    // Push: the bundle is checked before any object lands.
    hub.set_limits(LimitsConfig::default());
    let repo_id = hub.import_repo(&token, "p", small_repo("v0\n")).unwrap();
    let tip_before = hub
        .clone_repo(&repo_id)
        .unwrap()
        .branch_tip("main")
        .unwrap();
    let mut local = hub.clone_repo(&repo_id).unwrap();
    local
        .worktree_mut()
        .write(&path("blob.bin"), "y".repeat(512).into_bytes())
        .unwrap();
    local
        .commit(Signature::new("Ann", "a@x", 101), "big blob")
        .unwrap();
    hub.set_limits(LimitsConfig {
        max_bundle_bytes: Some(64),
        ..LimitsConfig::default()
    });
    assert!(matches!(
        hub.push(&token, &repo_id, "main", &local, "main", false),
        Err(HubError::QuotaExceeded(_))
    ));
    // The refused push left the hosted branch exactly where it was.
    assert_eq!(
        hub.clone_repo(&repo_id)
            .unwrap()
            .branch_tip("main")
            .unwrap(),
        tip_before
    );
}

#[test]
fn repo_byte_quota_caps_accumulated_accepted_bytes() {
    let hub = hub();
    hub.register_user("ann", "Ann").unwrap();
    let token = hub.login("ann").unwrap();
    hub.set_limits(LimitsConfig {
        max_repo_bytes: Some(2_000),
        ..LimitsConfig::default()
    });
    let repo_id = hub.import_repo(&token, "p", small_repo("v0\n")).unwrap();
    let mut local = hub.clone_repo(&repo_id).unwrap();
    // Push churn until the ledger crosses the cap: the denial is typed
    // and names the would-be total, and the repository still serves.
    let mut denied = None;
    for i in 0..64 {
        local
            .worktree_mut()
            .write(
                &path("f.txt"),
                format!("{i}: {}\n", "z".repeat(200)).into_bytes(),
            )
            .unwrap();
        local
            .commit(Signature::new("Ann", "a@x", 200 + i), format!("c{i}"))
            .unwrap();
        match hub.push(&token, &repo_id, "main", &local, "main", false) {
            Ok(_) => continue,
            Err(e) => {
                denied = Some(e);
                break;
            }
        }
    }
    match denied {
        Some(HubError::QuotaExceeded(why)) => assert!(why.contains("cap 2000"), "{why}"),
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    assert!(hub.clone_repo(&repo_id).is_ok());
}

#[test]
fn denials_are_audited_and_counted() {
    let hub = hub();
    hub.register_user_with_secret("ann", "Ann", "s3cret")
        .unwrap();
    let _ = hub.login_with_secret("ann", "guess");
    let token = hub.login_with_secret("ann", "s3cret").unwrap();
    hub.set_limits(LimitsConfig {
        max_bundle_bytes: Some(8),
        ..LimitsConfig::default()
    });
    assert!(hub.import_repo(&token, "p", small_repo("v0\n")).is_err()); // quota
    hub.set_limits(LimitsConfig {
        user_rate: Some(RateLimit {
            capacity: 1,
            refill_per_tick: 1,
        }),
        ..LimitsConfig::default()
    });
    hub.whoami(&token).unwrap(); // drains the burst capacity...
    assert!(hub.whoami(&token).is_err()); // ...and reads never refill it

    let log = hub.audit_log();
    let find = |action: &str| {
        log.iter()
            .find(|e| e.action == action && !e.ok)
            .unwrap_or_else(|| panic!("no failed {action:?} audit entry"))
    };
    find("login");
    find("quota_exceeded");
    find("rate_limited");

    // The same denials surface as wire-queryable counters.
    hub.grant_operator("ann").unwrap();
    hub.set_limits(LimitsConfig::default());
    let operator = hub.login_with_secret("ann", "s3cret").unwrap();
    let snap = hub.server_metrics(Some(&operator)).unwrap();
    let limits = snap
        .limits
        .as_ref()
        .expect("limits section present after denials");
    assert!(limits.auth_failures >= 1, "{limits:?}");
    assert!(limits.rate_rejections >= 1, "{limits:?}");
    assert!(limits.quota_rejections >= 1, "{limits:?}");
    let prom = snap.to_prometheus();
    assert!(prom.contains("gitcite_auth_failures_total"), "{prom}");
    assert!(prom.contains("gitcite_rate_rejections_total"), "{prom}");
    assert!(prom.contains("gitcite_quota_rejections_total"), "{prom}");
}

#[test]
fn new_error_codes_round_trip_the_wire() {
    let cases = [
        HubError::TokenExpired,
        HubError::RateLimited { retry_after: 7 },
        HubError::QuotaExceeded("bundle is 512 bytes (cap 64)".into()),
        HubError::ServerBusy { retry_after: 1 },
    ];
    for err in cases {
        let encoded = ApiResponse::from_error(&err).encode();
        let decoded = ApiResponse::parse(&encoded).unwrap().into_result();
        assert_eq!(format!("{:?}", decoded.unwrap_err()), format!("{err:?}"));
    }
}

/// Reads the hub clock without assuming a starting value: audit entries
/// carry the logical timestamp the clock had reached.
fn hub_clock(hub: &Hub) -> i64 {
    hub.audit_log().last().map_or(0, |e| e.timestamp)
}
