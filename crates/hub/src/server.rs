//! The hub itself: users, tokens, hosted repositories and the versioned
//! Cloud Platform API (paper Figure 1's "Project Hosting Platform" +
//! "Cloud Platform API").
//!
//! # API surface
//!
//! Every operation is a [`crate::api::ApiRequest`] routed through
//! [`Hub::dispatch`]; [`Hub::handle_wire`] is the same router behind the
//! sjson wire encoding (what [`crate::transport::SocketServer`] calls per
//! connection line). The typed methods (`login`, `add_cite`, `push`, ...)
//! are thin wrappers that build the request, dispatch it, and unpack the
//! typed result — so the wire protocol is, by construction, the complete
//! surface. Protocol v2 operations — `negotiate` + delta-bundle pushes
//! (`apply_delta_push`), and the paginated `log_page` /
//! `audit_log_page` / `list_repos_page` reads — are served side by side
//! with the v1 surface; see [`crate::api`] for the versioning rules.
//!
//! # Locking
//!
//! State is sharded so the read-heavy citation workload scales:
//!
//! * `users` / `tokens` — `RwLock`ed tables (auth is a shared read).
//! * `repos` — an `RwLock` map of `Arc<RwLock<HostedRepo>>`. Reads on
//!   different repositories touch different locks entirely; shared reads
//!   on the *same* repository (generate_citation, read_file, log, ...)
//!   proceed concurrently under one read guard.
//! * `audit` / `zenodo` / `heritage` — leaf `Mutex`es around append-mostly
//!   simulators.
//! * `clock` / token counter — atomics.
//!
//! Lock order: a repository lock is only ever taken *after* the `repos`
//! map guard has been dropped (the `Arc` is cloned out), and the leaf
//! mutexes never take any other lock — so the order
//! `users/tokens → repos map → one repository → leaf` is acyclic and
//! deadlock-free. The abuse-resistance tables added for untrusted
//! deployments (`credentials`, `login_states`, the token buckets and
//! `repo_bytes`) are leaves in the same sense: each is locked briefly
//! and never while holding another lock.
//!
//! # Credentials, lockout, quotas
//!
//! See [`crate::perm`] for the full model. In short: users may enroll a
//! secret at registration (stored as a salted SHA-256, verified
//! constant-time), tokens can carry a hub-clock expiry and be
//! `refresh`ed, repeated failed logins lock the account out with decay,
//! and [`Hub::set_limits`] arms per-user/per-repo token buckets plus
//! bundle/repository size quotas — all off by default, all denials
//! audited and tallied in the `limits` section of
//! [`Hub::server_metrics`].

use crate::api::{
    ApiRequest, ApiResponse, LimitsMetrics, MergeOutcome, MergeSummary, MethodMetrics,
    MetricsSnapshot, Negotiation, Page, PlacementInfo, ReplRepoStatus, ReplStatus, RepoBundle,
    RepoMaintenance, StoreMetrics, StoreStats, TransportMetrics, WireHistogram, DEFAULT_PAGE_SIZE,
    MAX_PAGE_SIZE,
};
use crate::audit::{AuditEvent, AuditLog};
use crate::error::{HubError, Result};
use crate::heritage::{ArchiveReport, Heritage, SwhKind};
use crate::perm::{Action, Role};
use crate::placement::Placement;
use crate::repl::ReplState;
use crate::zenodo::{Deposit, Zenodo};
use citekit::{Citation, CitedRepo, ForkOptions, MergeStrategy, Resolution};
use gitlite::{ObjectId, RepoPath, Repository, Signature};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// An opaque personal-access token.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token(String);

impl Token {
    /// Wraps a raw token string (e.g. one pasted into the popup's
    /// credential box, or received over the wire).
    pub fn new(raw: impl Into<String>) -> Token {
        Token(raw.into())
    }

    /// The raw token string (for display in the popup's credential box).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// A registered user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct User {
    /// Login name (unique).
    pub username: String,
    /// Display name used in citations and commit signatures.
    pub display_name: String,
    /// Email used in commit signatures.
    pub email: String,
}

#[derive(Debug)]
struct HostedRepo {
    repo: Repository,
    /// username → role. Absence means Reader (public repositories).
    roles: BTreeMap<String, Role>,
}

type RepoCell = Arc<RwLock<HostedRepo>>;

/// One repository's derived replication cursor as the follower sees it:
/// `(current branch, branch tips)`.
type LocalFrontier = (Option<String>, Vec<(String, ObjectId)>);

/// Factory producing the object-store backend for each newly created
/// hosted repository. Defaults to in-memory [`gitlite::MemStore`]s; a
/// deployment can plug in durable or cached backends without touching
/// any server logic (every repository operation goes through the
/// [`gitlite::ObjectStore`] trait).
pub type StoreFactory = Box<dyn Fn() -> Box<dyn gitlite::ObjectStore> + Send + Sync>;

/// One latency measurement per this many dispatches (see
/// [`Hub::dispatch`] for why latency is sampled at all).
const LATENCY_SAMPLE: u64 = 16;

/// Dispatch instrumentation for one wire method: lock-cheap cells for
/// the hot path (relaxed atomic bumps), a small mutexed tally map
/// touched only on the error path.
#[derive(Debug, Default)]
struct MethodStats {
    calls: telemetry::Counter,
    /// Dispatch latency, microseconds — a 1-in-[`LATENCY_SAMPLE`]
    /// sample of calls, so its `count` is the number of *timed* calls,
    /// not the (exact) `calls` counter.
    latency: telemetry::Histogram,
    /// error code → occurrences.
    errors: Mutex<BTreeMap<String, u64>>,
}

/// Consecutive failed logins before an account locks out.
pub const MAX_LOGIN_FAILURES: u32 = 5;

/// How long (hub-clock ticks) a locked-out account stays locked.
pub const LOCKOUT_TICKS: i64 = 60;

/// A failure streak decays to zero after this many ticks without a new
/// failure, so one fat-fingered week-old attempt never compounds.
pub const FAILURE_DECAY_TICKS: i64 = 60;

/// An enrolled login secret: `hash = SHA-256(salt ‖ secret)`. The salt is
/// derived deterministically per user (username + registration tick), so
/// identical secrets still hash differently across users and a stolen
/// table cannot be attacked with one precomputed dictionary.
#[derive(Clone)]
struct Credential {
    salt: [u8; 16],
    hash: [u8; 32],
}

impl Credential {
    fn derive(username: &str, registered_at: i64, secret: &str) -> Credential {
        let mut h = sha2::Sha256::new();
        h.update(b"gitcite.credential.salt\x00");
        h.update(username.as_bytes());
        h.update(&registered_at.to_be_bytes());
        let digest = h.finalize();
        let mut salt = [0u8; 16];
        salt.copy_from_slice(&digest[..16]);
        let hash = Self::hash_with(&salt, secret);
        Credential { salt, hash }
    }

    fn hash_with(salt: &[u8; 16], secret: &str) -> [u8; 32] {
        let mut h = sha2::Sha256::new();
        h.update(salt);
        h.update(secret.as_bytes());
        h.finalize()
    }

    fn verify(&self, secret: &str) -> bool {
        sha2::ct_eq(&Self::hash_with(&self.salt, secret), &self.hash)
    }
}

/// A minted token's session entry.
#[derive(Clone)]
struct TokenEntry {
    username: String,
    /// Hub-clock tick past which [`Hub::auth`] refuses with
    /// `TokenExpired`; `None` = no expiry (the default).
    expires_at: Option<i64>,
}

/// Per-user failed-login tracking (brute-force lockout with decay).
#[derive(Default)]
struct LoginState {
    failures: u32,
    last_failure: i64,
    locked_until: i64,
}

/// One deterministic token bucket, refilled by the hub clock — tests
/// drive it exactly via `advance_clock`, production drives it via the
/// mutating-operation ticks.
struct TokenBucket {
    tokens: u64,
    last_refill: i64,
}

impl TokenBucket {
    /// Refills for elapsed ticks, then tries to take one token.
    fn try_take(&mut self, now: i64, limit: RateLimit) -> bool {
        let elapsed = (now - self.last_refill).max(0) as u64;
        self.tokens = self
            .tokens
            .saturating_add(elapsed.saturating_mul(limit.refill_per_tick))
            .min(limit.capacity);
        self.last_refill = now;
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }
}

/// A token-bucket shape: sustained rate `refill_per_tick` with bursts up
/// to `capacity`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Bucket size — how many requests may burst back-to-back.
    pub capacity: u64,
    /// Tokens restored per hub-clock tick (sustained rate).
    pub refill_per_tick: u64,
}

/// Abuse-resistance configuration, all off by default. Armed via
/// [`Hub::set_limits`]; every `None` disables that check entirely, so an
/// unconfigured hub behaves exactly as before.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LimitsConfig {
    /// Per-user bucket charged for every token-bearing request.
    pub user_rate: Option<RateLimit>,
    /// Per-repository bucket charged for every request naming a repo.
    pub repo_rate: Option<RateLimit>,
    /// Largest push/import bundle accepted, in summed object bytes.
    pub max_bundle_bytes: Option<u64>,
    /// Cap on a repository's accumulated accepted object bytes
    /// (import + pushes) — checked before any object lands.
    pub max_repo_bytes: Option<u64>,
}

/// The hosting platform.
pub struct Hub {
    users: RwLock<BTreeMap<String, User>>,
    tokens: RwLock<HashMap<String, TokenEntry>>, // token → session
    /// Enrolled login secrets (username → salted hash). Users without an
    /// entry keep the paper simulator's open username-only login unless
    /// [`Hub::set_auth_required`] closes it.
    credentials: RwLock<HashMap<String, Credential>>,
    /// Failed-login streaks and lockouts, keyed by username.
    login_states: Mutex<HashMap<String, LoginState>>,
    limits: RwLock<LimitsConfig>,
    user_buckets: Mutex<HashMap<String, TokenBucket>>,
    repo_buckets: Mutex<HashMap<String, TokenBucket>>,
    /// Object bytes accepted over the wire per repository — the basis
    /// the `max_repo_bytes` quota is enforced against.
    repo_bytes: Mutex<HashMap<String, u64>>,
    /// Token lifetime in hub-clock ticks; 0 = tokens never expire.
    token_ttl: AtomicI64,
    /// When set, registration and login both require a secret.
    auth_required: AtomicBool,
    /// Denial tallies (plain fields, not registry instruments: the
    /// registry's emptiness is the "has a transport attached" signal).
    auth_failures: telemetry::Counter,
    rate_rejections: telemetry::Counter,
    quota_rejections: telemetry::Counter,
    repos: RwLock<BTreeMap<String, RepoCell>>,
    audit: Mutex<AuditLog>,
    zenodo: Mutex<Zenodo>,
    heritage: Mutex<Heritage>,
    clock: AtomicI64,
    next_token: AtomicU64,
    /// Base URL used when synthesizing repository URLs.
    base_url: String,
    /// Backend factory for server-side repositories.
    store_factory: StoreFactory,
    /// Per-method dispatch stats (calls, latency, error tallies), one
    /// flat slot per [`crate::api::METHOD_NAMES`] entry — the dispatch
    /// hot path indexes an array, it never takes a lock or clones an
    /// `Arc`.
    method_stats: Box<[MethodStats]>,
    /// Shared instrument registry: the socket transport hangs its
    /// gauges and counters here (see [`Hub::metrics`]), which is how
    /// `server_metrics` sees reactor state without a dependency cycle.
    metrics: Arc<telemetry::Registry>,
    /// Structured-tracing facade; sinks attach via `GITCITE_TRACE`
    /// (stderr JSON lines) or [`Hub::tracer`].
    tracer: telemetry::Tracer,
    /// Dispatch instrumentation switch — the observability bench
    /// measures both sides of it. On by default.
    metrics_enabled: AtomicBool,
    /// Usernames holding the operator capability (`server_metrics`
    /// over sockets, like `maintenance` is operator-only there).
    operators: RwLock<HashSet<String>>,
    /// Follower-mode replication state. `Some` routes every dispatch
    /// through the follower gate (see [`Hub::set_follower`] and
    /// [`crate::repl`]); `None` is an ordinary primary hub.
    repl: RwLock<Option<Arc<ReplState>>>,
    /// Fleet placement map served by the `placement` endpoint; `None`
    /// until an operator installs one via [`Hub::set_placement`].
    placement: RwLock<Option<Placement>>,
}

impl Default for Hub {
    fn default() -> Self {
        Hub::new("")
    }
}

/// A log entry returned by [`Hub::log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Commit id.
    pub id: ObjectId,
    /// Author display name.
    pub author: String,
    /// Commit timestamp.
    pub timestamp: i64,
    /// Commit message.
    pub message: String,
}

impl Hub {
    /// Creates a hub whose repositories live under `base_url`
    /// (e.g. `https://hub.example`).
    pub fn new(base_url: impl Into<String>) -> Self {
        Self::with_store_factory(base_url, Box::new(|| Box::new(gitlite::MemStore::new())))
    }

    /// [`Hub::new`] with a custom object-store backend per repository —
    /// e.g. `DiskStore`s under a data directory, or `CachedStore`s for
    /// read-heavy serving.
    pub fn with_store_factory(base_url: impl Into<String>, store_factory: StoreFactory) -> Self {
        Hub {
            users: RwLock::new(BTreeMap::new()),
            tokens: RwLock::new(HashMap::new()),
            credentials: RwLock::new(HashMap::new()),
            login_states: Mutex::new(HashMap::new()),
            limits: RwLock::new(LimitsConfig::default()),
            user_buckets: Mutex::new(HashMap::new()),
            repo_buckets: Mutex::new(HashMap::new()),
            repo_bytes: Mutex::new(HashMap::new()),
            token_ttl: AtomicI64::new(0),
            auth_required: AtomicBool::new(false),
            auth_failures: telemetry::Counter::default(),
            rate_rejections: telemetry::Counter::default(),
            quota_rejections: telemetry::Counter::default(),
            repos: RwLock::new(BTreeMap::new()),
            audit: Mutex::new(AuditLog::default()),
            zenodo: Mutex::new(Zenodo::default()),
            heritage: Mutex::new(Heritage::default()),
            clock: AtomicI64::new(0),
            next_token: AtomicU64::new(0),
            base_url: base_url.into(),
            store_factory,
            method_stats: crate::api::METHOD_NAMES
                .iter()
                .map(|_| MethodStats::default())
                .collect(),
            metrics: Arc::new(telemetry::Registry::new()),
            tracer: telemetry::Tracer::from_env(),
            metrics_enabled: AtomicBool::new(true),
            operators: RwLock::new(HashSet::new()),
            repl: RwLock::new(None),
            placement: RwLock::new(None),
        }
    }

    /// [`Hub::new`] with durable packfile storage: each hosted repository
    /// is created on a `CachedStore<PackStore>` rooted under its own
    /// subdirectory of `data_dir` (`repo-0`, `repo-1`, ...). Reads hit
    /// the LRU, cold loads come from buffered packs, and new pushes land
    /// as loose objects until maintenance repacks them — the server-side
    /// counterpart of the local tool's `.gitcite/objects` layout.
    ///
    /// Errors if `data_dir` cannot be created; per-repository stores are
    /// then created lazily by the factory. Directories left behind by an
    /// earlier hub over the same `data_dir` are skipped, never reused —
    /// the repo registry itself is in-memory, so a fresh hub must not
    /// silently adopt (or trip over) a previous run's objects.
    pub fn with_pack_storage(
        base_url: impl Into<String>,
        data_dir: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<Self> {
        let data_dir = data_dir.into();
        std::fs::create_dir_all(&data_dir)?;
        let next = AtomicU64::new(0);
        Ok(Self::with_store_factory(
            base_url,
            Box::new(move || {
                let root = loop {
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    let candidate = data_dir.join(format!("repo-{n}"));
                    if !candidate.exists() {
                        break candidate;
                    }
                };
                let store =
                    gitlite::PackStore::open(root).expect("hub data directory must stay writable");
                Box::new(gitlite::CachedStore::new(store))
            }),
        ))
    }

    /// Repository URL for an id.
    pub fn repo_url(&self, repo_id: &str) -> String {
        format!("{}/{}", self.base_url, repo_id)
    }

    // ----- the router --------------------------------------------------------

    /// Routes one typed request to its operation. Every public hub
    /// operation is reachable here; the typed methods below are wrappers
    /// over this single entry point.
    pub fn dispatch(&self, request: ApiRequest) -> ApiResponse {
        if !self.metrics_enabled.load(Ordering::Relaxed) {
            return match self.route(request) {
                Ok(response) => response,
                Err(e) => ApiResponse::from_error(&e),
            };
        }
        // Batch items recurse through this same entry point, so each is
        // counted and timed individually in addition to the envelope.
        // Span construction allocates its field strings, so it is built
        // only when a sink is actually attached.
        let _span = if self.tracer.enabled() {
            Some(
                self.tracer
                    .span("dispatch")
                    .field("method", request.method())
                    .enter(),
            )
        } else {
            None
        };
        let stats = &self.method_stats[request.method_index()];
        // Latency is sampled 1-in-LATENCY_SAMPLE: the two monotonic clock
        // reads cost more than all the counter bumps combined, and on
        // the microsecond-scale read path paying them every call blows
        // the <2% overhead budget. Sampling keys off the call counter,
        // so the first call of every method is always timed and sparse
        // methods still get real quantiles; `calls` stays exact.
        let sampled = stats.calls.bump().is_multiple_of(LATENCY_SAMPLE);
        let start = sampled.then(Instant::now);
        let response = match self.route(request) {
            Ok(response) => response,
            Err(e) => ApiResponse::from_error(&e),
        };
        if let Some(start) = start {
            let elapsed_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            stats.latency.record(elapsed_us);
        }
        if let ApiResponse::Error(e) = &response {
            *stats
                .errors
                .lock()
                .entry(e.code.as_str().to_owned())
                .or_insert(0) += 1;
        }
        response
    }

    /// [`Hub::dispatch`] behind the sjson wire encoding: parses the
    /// request envelope, routes it, and encodes the response envelope.
    /// This is the function a socket/HTTP transport would expose.
    pub fn handle_wire(&self, request: &str) -> String {
        match ApiRequest::parse(request) {
            Ok(req) => self.dispatch(req).encode(),
            Err(e) => ApiResponse::Error(e).encode(),
        }
    }

    fn route(&self, request: ApiRequest) -> Result<ApiResponse> {
        use ApiRequest as Q;
        use ApiResponse as R;
        // Abuse resistance runs before any operation logic: a
        // rate-limited caller costs two map lookups and a bucket charge,
        // never a repository lock. Batch envelopes carry no token or
        // repo, so only their items (which recurse through dispatch)
        // are charged.
        self.enforce_rate_limits(&request)?;
        // Follower gate: a replica refuses writes (and reads it cannot
        // answer faithfully or freshly) with a typed redirect to the
        // primary. No-op on ordinary hubs.
        self.check_follower(&request)?;
        Ok(match request {
            Q::RegisterUser {
                username,
                display_name,
                secret,
            } => {
                self.op_register_user(&username, &display_name, secret.as_deref())?;
                R::Unit
            }
            Q::Login { username, secret } => R::Token(self.op_login(&username, secret.as_deref())?),
            Q::Refresh { token } => R::Token(self.op_refresh(&token)?),
            Q::Revoke { token } => {
                self.tokens.write().remove(&token);
                R::Unit
            }
            Q::Whoami { token } => R::User(self.auth(&token)?),
            Q::CreateRepo { token, name } => R::Id(self.op_create_repo(&token, &name)?),
            Q::ImportRepo {
                token,
                name,
                bundle,
            } => R::Id(self.op_import_repo(&token, &name, &bundle)?),
            Q::AddMember {
                token,
                repo_id,
                username,
                role,
            } => {
                self.op_add_member(&token, &repo_id, &username, role)?;
                R::Unit
            }
            Q::RoleOf { repo_id, username } => {
                let cell = self.repo(&repo_id)?;
                let role = cell.read().roles.get(&username).copied();
                R::RoleOpt(role)
            }
            Q::CanWrite { token, repo_id } => {
                let user = self.auth(&token)?;
                let cell = self.repo(&repo_id)?;
                let allowed = cell
                    .read()
                    .roles
                    .get(&user.username)
                    .copied()
                    .unwrap_or(Role::Reader)
                    .allows(Action::Write);
                R::Bool(allowed)
            }
            Q::ListRepos => R::Names(self.repos.read().keys().cloned().collect()),
            Q::Branches { repo_id } => {
                let cell = self.repo(&repo_id)?;
                let names = cell
                    .read()
                    .repo
                    .branches()
                    .map(|(b, _)| b.to_owned())
                    .collect();
                R::Names(names)
            }
            Q::ListFiles { repo_id, branch } => {
                let cell = self.repo(&repo_id)?;
                let hosted = cell.read();
                let tip = hosted.repo.branch_tip(&branch).map_err(HubError::Git)?;
                R::Paths(
                    hosted
                        .repo
                        .snapshot(tip)
                        .map_err(HubError::Git)?
                        .into_keys()
                        .collect(),
                )
            }
            Q::ReadFile {
                repo_id,
                branch,
                path,
            } => {
                let cell = self.repo(&repo_id)?;
                let hosted = cell.read();
                let tip = hosted.repo.branch_tip(&branch).map_err(HubError::Git)?;
                R::FileData(
                    hosted
                        .repo
                        .file_at(tip, &path)
                        .map_err(HubError::Git)?
                        .to_vec(),
                )
            }
            Q::Log { repo_id, branch } => R::Log(self.op_log(&repo_id, &branch)?),
            Q::LogPage {
                repo_id,
                branch,
                cursor,
                limit,
            } => R::LogPage(self.op_log_page(&repo_id, &branch, cursor.as_deref(), limit)?),
            Q::AuditLogPage { cursor, limit } => {
                R::AuditPage(self.op_audit_log_page(cursor.as_deref(), limit)?)
            }
            Q::ListReposPage { cursor, limit } => {
                R::NamesPage(self.op_list_repos_page(cursor.as_deref(), limit))
            }
            Q::Negotiate { repo_id, haves } => R::Negotiation(self.op_negotiate(&repo_id, &haves)?),
            Q::CloneRepo { repo_id } => {
                let cell = self.repo(&repo_id)?;
                let bundle = {
                    let hosted = cell.read();
                    RepoBundle::from_repository(&hosted.repo).map_err(HubError::Git)?
                };
                let ts = self.tick();
                self.record(ts, None, "clone", &repo_id, true);
                R::Bundle(bundle)
            }
            Q::GenerateCitation {
                repo_id,
                branch,
                path,
            } => {
                let cell = self.repo(&repo_id)?;
                let citation = {
                    let hosted = cell.read();
                    let tip = hosted.repo.branch_tip(&branch).map_err(HubError::Git)?;
                    let cited = CitedRepo::open(hosted.repo.clone()).map_err(HubError::Cite)?;
                    cited.cite_at(tip, &path).map_err(HubError::Cite)?
                };
                let ts = self.tick();
                self.record(ts, None, "generate_citation", &repo_id, true);
                R::Citation(citation)
            }
            Q::CitationEntry {
                repo_id,
                branch,
                path,
            } => {
                let cell = self.repo(&repo_id)?;
                let hosted = cell.read();
                let tip = hosted.repo.branch_tip(&branch).map_err(HubError::Git)?;
                let text = hosted
                    .repo
                    .file_at(tip, &citekit::citation_path())
                    .map_err(HubError::Git)?;
                let func = citekit::file::parse(&String::from_utf8_lossy(&text))
                    .map_err(HubError::Cite)?;
                R::CitationOpt(func.get(&path).cloned())
            }
            Q::AddCite {
                token,
                repo_id,
                branch,
                path,
                citation,
            } => R::Commit(self.cite_op(
                &token,
                &repo_id,
                &branch,
                "add_cite",
                move |cited, p| cited.add_cite(p, citation),
                &path,
            )?),
            Q::ModifyCite {
                token,
                repo_id,
                branch,
                path,
                citation,
            } => R::Commit(self.cite_op(
                &token,
                &repo_id,
                &branch,
                "modify_cite",
                move |cited, p| cited.modify_cite(p, citation).map(|_| ()),
                &path,
            )?),
            Q::DelCite {
                token,
                repo_id,
                branch,
                path,
            } => R::Commit(self.cite_op(
                &token,
                &repo_id,
                &branch,
                "del_cite",
                move |cited, p| cited.del_cite(p).map(|_| ()),
                &path,
            )?),
            Q::Push {
                token,
                repo_id,
                branch,
                force,
                bundle,
            } => R::Commit(self.op_push(&token, &repo_id, &branch, force, &bundle)?),
            Q::Fork {
                token,
                src_repo_id,
                new_name,
            } => R::Id(self.op_fork(&token, &src_repo_id, &new_name)?),
            Q::MergeBranches {
                token,
                repo_id,
                branch,
                other_branch,
                strategy,
            } => R::Merge(self.op_merge(&token, &repo_id, &branch, &other_branch, strategy)?),
            Q::Deposit {
                token,
                repo_id,
                branch,
                title,
            } => R::Deposit(self.op_deposit(&token, &repo_id, &branch, &title)?),
            Q::ResolveDoi { doi } => R::Deposit(
                self.zenodo
                    .lock()
                    .resolve(&doi)
                    .cloned()
                    .ok_or(HubError::DoiNotFound(doi))?,
            ),
            Q::Archive { repo_id } => {
                let cell = self.repo(&repo_id)?;
                let repo = cell.read().repo.clone();
                let origin = format!("{}/{}", self.base_url, repo_id);
                let report = self.heritage.lock().archive(&origin, &repo)?;
                let ts = self.tick();
                self.record(ts, None, "archive", &repo_id, true);
                R::Archive(report)
            }
            Q::ResolveSwhid { swhid } => {
                let (kind, id) = self.heritage.lock().resolve(&swhid)?;
                R::Swhid(kind, id)
            }
            Q::ArchiveVisits { repo_id } => {
                let origin = format!("{}/{}", self.base_url, repo_id);
                R::Count(self.heritage.lock().visits(&origin) as u64)
            }
            Q::CreditedAuthors { repo_id, branch } => {
                let cell = self.repo(&repo_id)?;
                let mut work = cell.read().repo.clone();
                work.checkout_branch(&branch).map_err(HubError::Git)?;
                let cited = CitedRepo::open(work).map_err(HubError::Cite)?;
                R::Credits(cited.credited_authors())
            }
            Q::FindReposCiting { author } => R::Credits(self.op_find_repos_citing(&author)),
            Q::AuditLog => R::Audit(self.audit.lock().events().to_vec()),
            Q::StoreStats { repo_id } => {
                let cell = self.repo(&repo_id)?;
                let hosted = cell.read();
                R::Stats(StoreStats {
                    repo_id,
                    objects: hosted.repo.odb().len() as u64,
                    cache: hosted.repo.odb().cache_metrics(),
                    graph_commits: hosted.repo.odb().commit_graph().map(|g| g.len() as u64),
                    delta_objects: hosted.repo.odb().delta_objects(),
                    bloom_commits: hosted
                        .repo
                        .odb()
                        .commit_graph()
                        .map(|g| g.bloom_coverage() as u64),
                })
            }
            Q::Maintenance => R::Maintenance(self.op_maintenance()?),
            Q::ServerMetrics { token } => {
                // Tokenless requests are the trusted in-process path
                // (sockets always attach a token; see the transport's
                // operator seam). A token, wherever it came from, must
                // belong to an operator.
                if let Some(token) = &token {
                    let user = self.auth(token)?;
                    if !self.operators.read().contains(&user.username) {
                        return Err(HubError::PermissionDenied(
                            "server_metrics requires the operator capability".into(),
                        ));
                    }
                }
                R::Metrics(self.op_server_metrics())
            }
            Q::AdvanceClock { ts } => {
                self.clock.fetch_max(ts, Ordering::SeqCst);
                R::Unit
            }
            Q::Batch { requests } => {
                // v3: execute in request order; a failed item becomes an
                // error entry in the response list without aborting its
                // siblings. The parser refuses nested batches, but guard
                // here too for requests built in-process.
                let responses = requests
                    .into_iter()
                    .map(|inner| {
                        if matches!(inner, Q::Batch { .. }) {
                            ApiResponse::from_error(&HubError::Protocol(
                                "batch requests cannot nest".into(),
                            ))
                        } else {
                            self.dispatch(inner)
                        }
                    })
                    .collect();
                R::Batch(responses)
            }
            Q::ReplStatus => R::ReplStatus(self.op_repl_status()),
            Q::ReplFetch { repo_id, haves } => R::Bundle(self.op_repl_fetch(&repo_id, &haves)?),
            Q::Placement { repo_id } => R::Placement(self.op_placement(repo_id.as_deref())),
        })
    }

    /// The follower-mode dispatch gate (see [`crate::repl`] for the
    /// model). Decides, per request, whether a replica may serve it:
    ///
    /// * **Writes** — and reads whose truth lives only on the primary
    ///   (roles are not replicated; archive state is per-hub) — are
    ///   refused with [`HubError::NotPrimary`] carrying the primary's
    ///   address, which fleet-aware clients follow transparently.
    /// * **Replicated reads** are served locally, but only while the
    ///   last successful sync round is inside the staleness bound.
    /// * **Session plumbing, operator seams and the replication
    ///   endpoints themselves** are always local: a follower must stay
    ///   observable (and must itself be clonable by a further replica)
    ///   even when it has fallen behind.
    ///
    /// `login` is the one nuanced case: accounts are not replicated, so
    /// it redirects — except for users provisioned directly on this hub
    /// (the CLI's operator bootstrap), who must be able to log in to
    /// read `server_metrics` over a socket.
    fn check_follower(&self, request: &ApiRequest) -> Result<()> {
        let state = match self.repl.read().as_ref() {
            Some(state) => Arc::clone(state),
            None => return Ok(()),
        };
        use ApiRequest as Q;
        let redirect = || HubError::NotPrimary {
            primary: state.primary().to_owned(),
        };
        match request {
            Q::RegisterUser { .. }
            | Q::CreateRepo { .. }
            | Q::ImportRepo { .. }
            | Q::AddMember { .. }
            | Q::AddCite { .. }
            | Q::ModifyCite { .. }
            | Q::DelCite { .. }
            | Q::Push { .. }
            | Q::Fork { .. }
            | Q::MergeBranches { .. }
            | Q::Deposit { .. }
            | Q::Archive { .. }
            | Q::CanWrite { .. }
            | Q::RoleOf { .. }
            | Q::ResolveSwhid { .. }
            | Q::ArchiveVisits { .. } => Err(redirect()),
            Q::Login { username, .. } => {
                if self.users.read().contains_key(username) {
                    Ok(())
                } else {
                    Err(redirect())
                }
            }
            Q::Branches { .. }
            | Q::ListFiles { .. }
            | Q::ReadFile { .. }
            | Q::Log { .. }
            | Q::LogPage { .. }
            | Q::CloneRepo { .. }
            | Q::Negotiate { .. }
            | Q::GenerateCitation { .. }
            | Q::CitationEntry { .. }
            | Q::CreditedAuthors { .. }
            | Q::FindReposCiting { .. }
            | Q::ResolveDoi { .. }
            | Q::AuditLog
            | Q::AuditLogPage { .. }
            | Q::ListRepos
            | Q::ListReposPage { .. } => {
                if state.is_stale(crate::repl::unix_now()) {
                    Err(redirect())
                } else {
                    Ok(())
                }
            }
            Q::Refresh { .. }
            | Q::Revoke { .. }
            | Q::Whoami { .. }
            | Q::StoreStats { .. }
            | Q::Maintenance
            | Q::ServerMetrics { .. }
            | Q::AdvanceClock { .. }
            | Q::Batch { .. }
            | Q::ReplStatus
            | Q::ReplFetch { .. }
            | Q::Placement { .. } => Ok(()),
        }
    }

    // ----- typed wrappers: users & auth --------------------------------------

    /// Registers a user with open (username-only) login — the paper
    /// simulator's trust model, refused when [`Hub::set_auth_required`]
    /// is on.
    pub fn register_user(&self, username: &str, display_name: &str) -> Result<()> {
        self.expect_unit(ApiRequest::RegisterUser {
            username: username.to_owned(),
            display_name: display_name.to_owned(),
            secret: None,
        })
    }

    /// Registers a user and enrolls a login secret: every future login
    /// must present it (verified against a salted hash, constant-time).
    pub fn register_user_with_secret(
        &self,
        username: &str,
        display_name: &str,
        secret: &str,
    ) -> Result<()> {
        self.expect_unit(ApiRequest::RegisterUser {
            username: username.to_owned(),
            display_name: display_name.to_owned(),
            secret: Some(secret.to_owned()),
        })
    }

    /// Issues a personal-access token (the credential the popup asks
    /// for). Open login: refused for users enrolled with a secret (use
    /// [`Hub::login_with_secret`]) and on auth-required hubs.
    pub fn login(&self, username: &str) -> Result<Token> {
        match self.unwrap(ApiRequest::Login {
            username: username.to_owned(),
            secret: None,
        })? {
            ApiResponse::Token(t) => Ok(Token(t)),
            other => Err(unexpected(&other)),
        }
    }

    /// Issues a token after verifying the user's enrolled secret.
    pub fn login_with_secret(&self, username: &str, secret: &str) -> Result<Token> {
        match self.unwrap(ApiRequest::Login {
            username: username.to_owned(),
            secret: Some(secret.to_owned()),
        })? {
            ApiResponse::Token(t) => Ok(Token(t)),
            other => Err(unexpected(&other)),
        }
    }

    /// Exchanges a known (possibly expired) token for a fresh one with a
    /// new lifetime; the old token is revoked.
    pub fn refresh(&self, token: &Token) -> Result<Token> {
        match self.unwrap(ApiRequest::Refresh {
            token: token.0.clone(),
        })? {
            ApiResponse::Token(t) => Ok(Token(t)),
            other => Err(unexpected(&other)),
        }
    }

    /// Revokes a token.
    pub fn revoke(&self, token: &Token) {
        let _ = self.unwrap(ApiRequest::Revoke {
            token: token.0.clone(),
        });
    }

    /// Resolves a token to its user.
    pub fn whoami(&self, token: &Token) -> Result<User> {
        match self.unwrap(ApiRequest::Whoami {
            token: token.0.clone(),
        })? {
            ApiResponse::User(u) => Ok(u),
            other => Err(unexpected(&other)),
        }
    }

    // ----- typed wrappers: repositories --------------------------------------

    /// Creates a citation-enabled repository owned by the token's user and
    /// commits the initial version (default root citation). Returns the
    /// repository id `owner/name`.
    pub fn create_repo(&self, token: &Token, name: &str) -> Result<String> {
        self.expect_id(ApiRequest::CreateRepo {
            token: token.0.clone(),
            name: name.to_owned(),
        })
    }

    /// Hosts an existing repository (e.g. a retrofitted one) under the
    /// token's user. The repository is re-homed onto the hub's configured
    /// store backend (all branches and their histories are transferred),
    /// so imported repositories get the same durability as created ones.
    pub fn import_repo(&self, token: &Token, name: &str, repo: Repository) -> Result<String> {
        let bundle = RepoBundle::from_repository(&repo).map_err(HubError::Git)?;
        self.expect_id(ApiRequest::ImportRepo {
            token: token.0.clone(),
            name: name.to_owned(),
            bundle,
        })
    }

    /// Grants `username` a role on a repository (owner only).
    pub fn add_member(
        &self,
        token: &Token,
        repo_id: &str,
        username: &str,
        role: Role,
    ) -> Result<()> {
        self.expect_unit(ApiRequest::AddMember {
            token: token.0.clone(),
            repo_id: repo_id.to_owned(),
            username: username.to_owned(),
            role,
        })
    }

    /// The role a user has on a repository (`None` = implicit reader).
    pub fn role_of(&self, repo_id: &str, username: &str) -> Result<Option<Role>> {
        match self.unwrap(ApiRequest::RoleOf {
            repo_id: repo_id.to_owned(),
            username: username.to_owned(),
        })? {
            ApiResponse::RoleOpt(r) => Ok(r),
            other => Err(unexpected(&other)),
        }
    }

    /// True when the token's user may modify citations on the repository —
    /// the check that enables/disables the popup's Add/Delete buttons.
    pub fn can_write(&self, token: &Token, repo_id: &str) -> Result<bool> {
        match self.unwrap(ApiRequest::CanWrite {
            token: token.0.clone(),
            repo_id: repo_id.to_owned(),
        })? {
            ApiResponse::Bool(b) => Ok(b),
            other => Err(unexpected(&other)),
        }
    }

    /// All repository ids.
    pub fn list_repos(&self) -> Vec<String> {
        match self.unwrap(ApiRequest::ListRepos) {
            Ok(ApiResponse::Names(names)) => names,
            _ => Vec::new(),
        }
    }

    /// One page of the repository listing (protocol v2), ordered by id.
    pub fn list_repos_page(
        &self,
        cursor: Option<&str>,
        limit: Option<u32>,
    ) -> Result<Page<String>> {
        match self.unwrap(ApiRequest::ListReposPage {
            cursor: cursor.map(str::to_owned),
            limit,
        })? {
            ApiResponse::NamesPage(page) => Ok(page),
            other => Err(unexpected(&other)),
        }
    }

    // ----- typed wrappers: public reads ---------------------------------------

    /// Branch names of a repository.
    pub fn branches(&self, repo_id: &str) -> Result<Vec<String>> {
        match self.unwrap(ApiRequest::Branches {
            repo_id: repo_id.to_owned(),
        })? {
            ApiResponse::Names(names) => Ok(names),
            other => Err(unexpected(&other)),
        }
    }

    /// File paths at a branch tip.
    pub fn list_files(&self, repo_id: &str, branch: &str) -> Result<Vec<RepoPath>> {
        match self.unwrap(ApiRequest::ListFiles {
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
        })? {
            ApiResponse::Paths(paths) => Ok(paths),
            other => Err(unexpected(&other)),
        }
    }

    /// Reads one file at a branch tip.
    pub fn read_file(&self, repo_id: &str, branch: &str, path: &RepoPath) -> Result<Vec<u8>> {
        match self.unwrap(ApiRequest::ReadFile {
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            path: path.clone(),
        })? {
            ApiResponse::FileData(data) => Ok(data),
            other => Err(unexpected(&other)),
        }
    }

    /// Commit log of a branch, newest first.
    pub fn log(&self, repo_id: &str, branch: &str) -> Result<Vec<LogEntry>> {
        match self.unwrap(ApiRequest::Log {
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
        })? {
            ApiResponse::Log(entries) => Ok(entries),
            other => Err(unexpected(&other)),
        }
    }

    /// One page of a branch's log (protocol v2). Pass `None` to start at
    /// the tip; pass the returned `next` cursor to continue. The cursor
    /// pins the tip it started from, so the page sequence is stable even
    /// while writers advance the branch.
    pub fn log_page(
        &self,
        repo_id: &str,
        branch: &str,
        cursor: Option<&str>,
        limit: Option<u32>,
    ) -> Result<Page<LogEntry>> {
        match self.unwrap(ApiRequest::LogPage {
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            cursor: cursor.map(str::to_owned),
            limit,
        })? {
            ApiResponse::LogPage(page) => Ok(page),
            other => Err(unexpected(&other)),
        }
    }

    /// Which of `haves` the hub already holds reachable from the
    /// repository's refs (protocol v2) — the have/want exchange that lets
    /// a push ship only missing objects.
    pub fn negotiate(&self, repo_id: &str, haves: &[ObjectId]) -> Result<Negotiation> {
        match self.unwrap(ApiRequest::Negotiate {
            repo_id: repo_id.to_owned(),
            haves: haves.to_vec(),
        })? {
            ApiResponse::Negotiation(n) => Ok(n),
            other => Err(unexpected(&other)),
        }
    }

    /// Clones a hosted repository (public read — what `git clone` does).
    pub fn clone_repo(&self, repo_id: &str) -> Result<Repository> {
        match self.unwrap(ApiRequest::CloneRepo {
            repo_id: repo_id.to_owned(),
        })? {
            ApiResponse::Bundle(bundle) => bundle
                .into_repository(Box::new(gitlite::MemStore::new()))
                .map_err(HubError::Git),
            other => Err(unexpected(&other)),
        }
    }

    // ----- typed wrappers: citations ------------------------------------------

    /// `GenCite` — generates the citation for a node at a branch tip.
    /// Anonymous: any visitor may do this (paper §3: "If the user is not a
    /// project member, the browser extension immediately generates the
    /// citation").
    pub fn generate_citation(
        &self,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
    ) -> Result<Citation> {
        match self.unwrap(ApiRequest::GenerateCitation {
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            path: path.clone(),
        })? {
            ApiResponse::Citation(c) => Ok(c),
            other => Err(unexpected(&other)),
        }
    }

    /// The *explicit* citation entry at a path, if any — what the popup's
    /// text box shows a project member before they edit (paper §3: "the
    /// text box will display the citation explicitly attached to the node,
    /// if it exists ... If such a citation does not exist, the text box
    /// will remain empty").
    pub fn citation_entry(
        &self,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
    ) -> Result<Option<Citation>> {
        match self.unwrap(ApiRequest::CitationEntry {
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            path: path.clone(),
        })? {
            ApiResponse::CitationOpt(c) => Ok(c),
            other => Err(unexpected(&other)),
        }
    }

    /// `AddCite` on the remote repository (member+). Commits the updated
    /// citation file on `branch` and returns the new commit.
    pub fn add_cite(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
        citation: Citation,
    ) -> Result<ObjectId> {
        self.expect_commit(ApiRequest::AddCite {
            token: token.0.clone(),
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            path: path.clone(),
            citation,
        })
    }

    /// `ModifyCite` on the remote repository (member+).
    pub fn modify_cite(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
        citation: Citation,
    ) -> Result<ObjectId> {
        self.expect_commit(ApiRequest::ModifyCite {
            token: token.0.clone(),
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            path: path.clone(),
            citation,
        })
    }

    /// `DelCite` on the remote repository (member+).
    pub fn del_cite(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
    ) -> Result<ObjectId> {
        self.expect_commit(ApiRequest::DelCite {
            token: token.0.clone(),
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            path: path.clone(),
        })
    }

    // ----- typed wrappers: sync -----------------------------------------------

    /// Pushes `local_branch` of `local` to `branch` of the hosted
    /// repository (member+; fast-forward unless `force`).
    pub fn push(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        local: &Repository,
        local_branch: &str,
        force: bool,
    ) -> Result<ObjectId> {
        let bundle = RepoBundle::from_branch(local, local_branch).map_err(HubError::Git)?;
        self.expect_commit(ApiRequest::Push {
            token: token.0.clone(),
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            force,
            bundle,
        })
    }

    /// `ForkCite` via the platform: forks `src_repo_id` into a new
    /// repository under the token's user (paper §3: "ForkCite through
    /// GitHub's Fork").
    pub fn fork(&self, token: &Token, src_repo_id: &str, new_name: &str) -> Result<String> {
        self.expect_id(ApiRequest::Fork {
            token: token.0.clone(),
            src_repo_id: src_repo_id.to_owned(),
            new_name: new_name.to_owned(),
        })
    }

    /// Server-side `MergeCite` of `other_branch` into `branch` using the
    /// given strategy; conflicts default to keeping ours (the interactive
    /// path lives in the local tool).
    pub fn merge_branches(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        other_branch: &str,
        strategy: MergeStrategy,
    ) -> Result<MergeSummary> {
        match self.unwrap(ApiRequest::MergeBranches {
            token: token.0.clone(),
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            other_branch: other_branch.to_owned(),
            strategy,
        })? {
            ApiResponse::Merge(m) => Ok(m),
            other => Err(unexpected(&other)),
        }
    }

    // ----- typed wrappers: archives -------------------------------------------

    /// Deposits a branch tip with the Zenodo simulator, minting a DOI.
    pub fn deposit(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        title: &str,
    ) -> Result<Deposit> {
        match self.unwrap(ApiRequest::Deposit {
            token: token.0.clone(),
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            title: title.to_owned(),
        })? {
            ApiResponse::Deposit(d) => Ok(d),
            other => Err(unexpected(&other)),
        }
    }

    /// Resolves a DOI minted by [`Hub::deposit`].
    pub fn resolve_doi(&self, doi: &str) -> Result<Deposit> {
        match self.unwrap(ApiRequest::ResolveDoi {
            doi: doi.to_owned(),
        })? {
            ApiResponse::Deposit(d) => Ok(d),
            other => Err(unexpected(&other)),
        }
    }

    /// Archives a repository into the Software Heritage simulator.
    pub fn archive(&self, repo_id: &str) -> Result<ArchiveReport> {
        match self.unwrap(ApiRequest::Archive {
            repo_id: repo_id.to_owned(),
        })? {
            ApiResponse::Archive(report) => Ok(report),
            other => Err(unexpected(&other)),
        }
    }

    /// Checks whether an SWHID is archived.
    pub fn resolve_swhid(&self, swhid: &str) -> Result<(SwhKind, ObjectId)> {
        match self.unwrap(ApiRequest::ResolveSwhid {
            swhid: swhid.to_owned(),
        })? {
            ApiResponse::Swhid(kind, id) => Ok((kind, id)),
            other => Err(unexpected(&other)),
        }
    }

    /// Number of archive visits recorded for a repository.
    pub fn archive_visits(&self, repo_id: &str) -> usize {
        match self.unwrap(ApiRequest::ArchiveVisits {
            repo_id: repo_id.to_owned(),
        }) {
            Ok(ApiResponse::Count(n)) => n as usize,
            _ => 0,
        }
    }

    // ----- typed wrappers: credit queries -------------------------------------

    /// Every author credited in a repository's citation function at a
    /// branch tip, with the citing keys — the "give credit to the
    /// appropriate contributors" view (paper §1).
    pub fn credited_authors(
        &self,
        repo_id: &str,
        branch: &str,
    ) -> Result<Vec<(String, Vec<RepoPath>)>> {
        match self.unwrap(ApiRequest::CreditedAuthors {
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
        })? {
            ApiResponse::Credits(c) => Ok(c),
            other => Err(unexpected(&other)),
        }
    }

    /// All hosted repositories whose current citation function credits
    /// `author`, with the citing keys per repository — a platform-wide
    /// credit search.
    pub fn find_repos_citing(&self, author: &str) -> Vec<(String, Vec<RepoPath>)> {
        match self.unwrap(ApiRequest::FindReposCiting {
            author: author.to_owned(),
        }) {
            Ok(ApiResponse::Credits(c)) => c,
            _ => Vec::new(),
        }
    }

    // ----- typed wrappers: operations -----------------------------------------

    /// A snapshot of the audit log.
    pub fn audit_log(&self) -> Vec<AuditEvent> {
        match self.unwrap(ApiRequest::AuditLog) {
            Ok(ApiResponse::Audit(events)) => events,
            _ => Vec::new(),
        }
    }

    /// One page of the audit log (protocol v2), oldest first; the cursor
    /// is the sequence number to continue from.
    pub fn audit_log_page(
        &self,
        cursor: Option<&str>,
        limit: Option<u32>,
    ) -> Result<Page<AuditEvent>> {
        match self.unwrap(ApiRequest::AuditLogPage {
            cursor: cursor.map(str::to_owned),
            limit,
        })? {
            ApiResponse::AuditPage(page) => Ok(page),
            other => Err(unexpected(&other)),
        }
    }

    /// Object-store statistics for one hosted repository: object count
    /// plus cache counters when the backend stack has a read cache —
    /// the capacity-planning view over [`gitlite::CacheStats`].
    pub fn store_stats(&self, repo_id: &str) -> Result<StoreStats> {
        match self.unwrap(ApiRequest::StoreStats {
            repo_id: repo_id.to_owned(),
        })? {
            ApiResponse::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs storage maintenance over every hosted repository: backends
    /// with a maintenance concept (packfile stores) gc everything not
    /// reachable from their branch tips into one fresh pack; in-memory
    /// backends report `supported: false`.
    pub fn maintenance(&self) -> Result<Vec<RepoMaintenance>> {
        match self.unwrap(ApiRequest::Maintenance)? {
            ApiResponse::Maintenance(repos) => Ok(repos),
            other => Err(unexpected(&other)),
        }
    }

    /// One point-in-time health snapshot of the whole hub: per-method
    /// dispatch stats, socket-layer gauges (when a transport is
    /// attached) and aggregated storage counters. Pass `None` from a
    /// trusted in-process embedder; a token must belong to a user
    /// granted [`Hub::grant_operator`].
    pub fn server_metrics(&self, token: Option<&Token>) -> Result<MetricsSnapshot> {
        match self.unwrap(ApiRequest::ServerMetrics {
            token: token.map(|t| t.0.clone()),
        })? {
            ApiResponse::Metrics(m) => Ok(m),
            other => Err(unexpected(&other)),
        }
    }

    /// Grants `username` the operator capability: `server_metrics` over
    /// sockets is refused for every other token.
    pub fn grant_operator(&self, username: &str) -> Result<()> {
        if !self.users.read().contains_key(username) {
            return Err(HubError::UserNotFound(username.to_owned()));
        }
        self.operators.write().insert(username.to_owned());
        Ok(())
    }

    /// True when `token` is valid and its user holds the operator
    /// capability — the transport's guard for operator-scoped methods.
    pub fn is_operator_token(&self, token: &str) -> bool {
        match self.tokens.read().get(token) {
            Some(entry) if !self.token_expired(entry) => {
                self.operators.read().contains(&entry.username)
            }
            _ => false,
        }
    }

    /// The shared instrument registry. The socket transport registers
    /// its gauges and counters here so they appear in
    /// [`Hub::server_metrics`] snapshots.
    pub fn metrics(&self) -> Arc<telemetry::Registry> {
        Arc::clone(&self.metrics)
    }

    /// The tracer dispatch spans go to. Enabled automatically when
    /// `GITCITE_TRACE` is set (stderr JSON lines); tests attach a
    /// [`telemetry::RingSink`] through this accessor.
    pub fn tracer(&self) -> &telemetry::Tracer {
        &self.tracer
    }

    /// Switches dispatch instrumentation on or off (default: on). The
    /// observability bench measures the cost of the instrumented side
    /// against this escape hatch.
    pub fn set_metrics_enabled(&self, enabled: bool) {
        self.metrics_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Arms (or disarms) rate limits and size quotas. Applies to
    /// requests dispatched after the call; see [`LimitsConfig`].
    pub fn set_limits(&self, limits: LimitsConfig) {
        *self.limits.write() = limits;
    }

    /// The currently armed limits.
    pub fn limits(&self) -> LimitsConfig {
        *self.limits.read()
    }

    /// Sets the lifetime of newly minted tokens in hub-clock ticks
    /// (0 = never expire, the default). Existing tokens keep the
    /// lifetime they were minted with.
    pub fn set_token_ttl(&self, ticks: i64) {
        self.token_ttl.store(ticks.max(0), Ordering::SeqCst);
    }

    /// When on, registration and login both require a secret — the
    /// paper simulator's open username-only login is refused. Users
    /// enrolled with a secret are always verified, regardless of this
    /// switch.
    pub fn set_auth_required(&self, required: bool) {
        self.auth_required.store(required, Ordering::SeqCst);
    }

    /// Whether this hub refuses secretless registration and login.
    pub fn auth_required(&self) -> bool {
        self.auth_required.load(Ordering::SeqCst)
    }

    /// Advances the hub clock to at least `ts` (used by deterministic
    /// scenario scripts that want real dates, e.g. the CiteDB demo).
    pub fn advance_clock_to(&self, ts: i64) {
        let _ = self.unwrap(ApiRequest::AdvanceClock { ts });
    }

    // ----- replication (see `crate::repl`) ------------------------------------

    /// Flips this hub into follower mode, replicating the primary at
    /// `primary_addr`: writes start refusing with `not_primary`
    /// immediately, replicated reads open up once a sync round lands
    /// inside the staleness bound. Returns the shared [`ReplState`] the
    /// replication engine updates. Normally called via
    /// [`crate::repl::Follower::new`].
    pub fn set_follower(
        &self,
        primary_addr: impl Into<String>,
        staleness_secs: u64,
    ) -> Arc<ReplState> {
        let state = Arc::new(ReplState::new(primary_addr.into(), staleness_secs));
        *self.repl.write() = Some(Arc::clone(&state));
        state
    }

    /// The replication state when this hub is a follower, `None` on a
    /// primary.
    pub fn replication(&self) -> Option<Arc<ReplState>> {
        self.repl.read().clone()
    }

    /// Installs the fleet placement map the `placement` endpoint serves
    /// (see [`Placement`]); clients query it to route writes to a
    /// repository's home hub.
    pub fn set_placement(&self, placement: Placement) {
        *self.placement.write() = Some(placement);
    }

    /// The follower's local frontier for one repository: `(head, branch
    /// tips)` exactly as [`ReplRepoStatus`] would describe it — the
    /// derived replication cursor. `None` when the repository does not
    /// exist here yet.
    pub(crate) fn repl_local_frontier(&self, repo_id: &str) -> Option<LocalFrontier> {
        let cell = self.repos.read().get(repo_id).cloned()?;
        let hosted = cell.read();
        Some((
            hosted.repo.current_branch().map(str::to_owned),
            hosted
                .repo
                .branches()
                .map(|(b, tip)| (b.to_owned(), tip))
                .collect(),
        ))
    }

    /// The follower's *have* set for a `repl_fetch`: its local branch
    /// tips (empty for a repository it does not hold yet, which makes
    /// the primary answer with a full bootstrap bundle).
    pub(crate) fn repl_haves(&self, repo_id: &str) -> Vec<ObjectId> {
        self.repl_local_frontier(repo_id)
            .map(|(_, refs)| refs.into_iter().map(|(_, tip)| tip).collect())
            .unwrap_or_default()
    }

    /// Applies one replication bundle to the local copy of `repo_id`,
    /// creating the repository when it is new here. Follows the lock
    /// order: the repos-map guard is dropped before the repository's
    /// write lock is taken.
    pub(crate) fn repl_apply_bundle(&self, repo_id: &str, bundle: &RepoBundle) -> Result<()> {
        let existing = self.repos.read().get(repo_id).cloned();
        match existing {
            Some(cell) => {
                let mut hosted = cell.write();
                apply_replica_bundle(&mut hosted.repo, bundle).map_err(HubError::Git)
            }
            None => {
                if bundle.is_delta() {
                    return Err(HubError::Protocol(format!(
                        "delta bundle for a repository this replica does not hold ({repo_id})"
                    )));
                }
                let repo = bundle
                    .into_repository((self.store_factory)())
                    .map_err(HubError::Git)?;
                self.repos.write().insert(
                    repo_id.to_owned(),
                    Arc::new(RwLock::new(HostedRepo {
                        repo,
                        // Roles are not replicated: permission checks are
                        // the primary's job, and every write redirects
                        // there anyway.
                        roles: BTreeMap::new(),
                    })),
                );
                Ok(())
            }
        }
    }

    /// Drops local repositories absent from the primary's status reply
    /// (deleted upstream). Returns how many were dropped.
    pub(crate) fn repl_drop_missing(&self, keep: &HashSet<String>) -> usize {
        let mut repos = self.repos.write();
        let before = repos.len();
        repos.retain(|id, _| keep.contains(id));
        before - repos.len()
    }

    /// The derived audit cursor: the local log length (sequence numbers
    /// are dense, so this is the next seq to fetch).
    pub(crate) fn repl_audit_cursor(&self) -> u64 {
        self.audit.lock().events().len() as u64
    }

    /// Ingests a page of replicated audit events, preserving their
    /// primary-assigned sequence numbers. Returns how many were new; a
    /// sequence gap is a protocol error (the page stream is ordered).
    pub(crate) fn repl_ingest_audit(&self, events: Vec<AuditEvent>) -> Result<usize> {
        let mut audit = self.audit.lock();
        let mut ingested = 0;
        for event in events {
            match audit.ingest(event) {
                Ok(true) => ingested += 1,
                Ok(false) => {}
                Err(next) => {
                    return Err(HubError::Protocol(format!(
                        "audit replication gap: next local seq is {next}"
                    )))
                }
            }
        }
        Ok(ingested)
    }

    /// Ingests the primary's deposit registry wholesale (it is tiny and
    /// append-only). Returns how many DOIs were new here.
    pub(crate) fn repl_ingest_deposits(&self, deposits: Vec<Deposit>) -> usize {
        let mut zenodo = self.zenodo.lock();
        deposits
            .into_iter()
            .map(|d| zenodo.ingest(d))
            .filter(|&new| new)
            .count()
    }

    /// Folds the primary's logical epoch into the local clock
    /// (monotonic), keeping token-expiry and rate-limit arithmetic
    /// coherent across the fleet.
    pub(crate) fn repl_observe_epoch(&self, epoch: i64) {
        self.clock.fetch_max(epoch, Ordering::SeqCst);
    }

    // ----- wrapper plumbing ---------------------------------------------------

    fn unwrap(&self, request: ApiRequest) -> Result<ApiResponse> {
        self.dispatch(request).into_result()
    }

    fn expect_unit(&self, request: ApiRequest) -> Result<()> {
        match self.unwrap(request)? {
            ApiResponse::Unit => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn expect_id(&self, request: ApiRequest) -> Result<String> {
        match self.unwrap(request)? {
            ApiResponse::Id(id) => Ok(id),
            other => Err(unexpected(&other)),
        }
    }

    fn expect_commit(&self, request: ApiRequest) -> Result<ObjectId> {
        match self.unwrap(request)? {
            ApiResponse::Commit(id) => Ok(id),
            other => Err(unexpected(&other)),
        }
    }

    // ----- shared plumbing ----------------------------------------------------

    fn tick(&self) -> i64 {
        self.clock.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// The clock's current reading, without advancing it — expiry and
    /// bucket-refill checks must not make read paths mutate time.
    fn now(&self) -> i64 {
        self.clock.load(Ordering::SeqCst)
    }

    fn record(&self, ts: i64, actor: Option<&str>, action: &str, target: &str, ok: bool) {
        // A follower's audit log is a replica of the primary's: locally
        // assigned events would collide with replicated sequence numbers
        // (see `repl_ingest_audit`), so follower-served reads go
        // unrecorded here — they are the primary's writes' history, not
        // this hub's.
        if self.repl.read().is_some() {
            return;
        }
        self.audit.lock().record(ts, actor, action, target, ok);
    }

    fn token_expired(&self, entry: &TokenEntry) -> bool {
        entry.expires_at.is_some_and(|e| self.now() >= e)
    }

    fn auth(&self, token: &str) -> Result<User> {
        let entry = match self.tokens.read().get(token) {
            Some(entry) => entry.clone(),
            None => {
                self.auth_failures.inc();
                return Err(HubError::AuthFailed);
            }
        };
        if self.token_expired(&entry) {
            self.auth_failures.inc();
            return Err(HubError::TokenExpired);
        }
        self.users
            .read()
            .get(&entry.username)
            .cloned()
            .ok_or(HubError::AuthFailed)
    }

    /// Charges the per-user and per-repo token buckets for one request.
    /// No-ops entirely (two atomic-free `Copy` reads) until
    /// [`Hub::set_limits`] arms a rate. Denials are audited and tallied.
    fn enforce_rate_limits(&self, request: &ApiRequest) -> Result<()> {
        let limits = *self.limits.read();
        if limits.user_rate.is_none() && limits.repo_rate.is_none() {
            return Ok(());
        }
        let now = self.now();
        if let (Some(rate), Some(token)) = (limits.user_rate, request.token()) {
            // Resolve the token leniently (expiry is auth's job): an
            // expired token still identifies whose bucket to charge.
            let username = self.tokens.read().get(token).map(|e| e.username.clone());
            if let Some(username) = username {
                let allowed = self
                    .user_buckets
                    .lock()
                    .entry(username.clone())
                    .or_insert(TokenBucket {
                        tokens: rate.capacity,
                        last_refill: now,
                    })
                    .try_take(now, rate);
                if !allowed {
                    return Err(self.rate_denial(now, Some(&username), request.method()));
                }
            }
        }
        if let (Some(rate), Some(repo_id)) = (limits.repo_rate, request.target_repo()) {
            let allowed = self
                .repo_buckets
                .lock()
                .entry(repo_id.to_owned())
                .or_insert(TokenBucket {
                    tokens: rate.capacity,
                    last_refill: now,
                })
                .try_take(now, rate);
            if !allowed {
                return Err(self.rate_denial(now, None, repo_id));
            }
        }
        Ok(())
    }

    fn rate_denial(&self, now: i64, actor: Option<&str>, target: &str) -> HubError {
        self.rate_rejections.inc();
        self.record(now, actor, "rate_limited", target, false);
        // One token accrues on the next refill tick, so the honest hint
        // is always "one tick from now".
        HubError::RateLimited { retry_after: 1 }
    }

    /// Enforces the size quotas on an incoming bundle before any object
    /// lands: the bundle's own size, then the repository's accumulated
    /// accepted bytes. `repo_id` is the accounting key (`None` while the
    /// repository does not exist yet — import racing its own creation).
    fn check_bundle_quota(
        &self,
        actor: &str,
        repo_id: &str,
        existing: bool,
        bundle: &RepoBundle,
    ) -> Result<u64> {
        let limits = *self.limits.read();
        let size: u64 = bundle.objects.iter().map(|(_, b)| b.len() as u64).sum();
        if let Some(cap) = limits.max_bundle_bytes {
            if size > cap {
                return Err(self.quota_denial(
                    actor,
                    repo_id,
                    format!("bundle is {size} bytes (cap {cap})"),
                ));
            }
        }
        if let Some(cap) = limits.max_repo_bytes {
            let current = if existing {
                self.repo_bytes.lock().get(repo_id).copied().unwrap_or(0)
            } else {
                0
            };
            let total = current.saturating_add(size);
            if total > cap {
                return Err(self.quota_denial(
                    actor,
                    repo_id,
                    format!("repository would hold {total} accepted bytes (cap {cap})"),
                ));
            }
        }
        Ok(size)
    }

    fn quota_denial(&self, actor: &str, target: &str, why: String) -> HubError {
        self.quota_rejections.inc();
        let ts = self.tick();
        self.record(ts, Some(actor), "quota_exceeded", target, false);
        HubError::QuotaExceeded(why)
    }

    /// Books accepted bundle bytes against a repository's quota ledger.
    fn account_repo_bytes(&self, repo_id: &str, size: u64) {
        *self
            .repo_bytes
            .lock()
            .entry(repo_id.to_owned())
            .or_insert(0) += size;
    }

    /// Clones the repository cell out of the map — the map guard is
    /// dropped before the caller locks the cell (see the module docs on
    /// lock order).
    fn repo(&self, repo_id: &str) -> Result<RepoCell> {
        self.repos
            .read()
            .get(repo_id)
            .cloned()
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))
    }

    // ----- operations ---------------------------------------------------------

    fn op_register_user(
        &self,
        username: &str,
        display_name: &str,
        secret: Option<&str>,
    ) -> Result<()> {
        if self.auth_required.load(Ordering::SeqCst) && secret.is_none() {
            return Err(HubError::BadRequest(
                "registration requires a secret on this hub".into(),
            ));
        }
        {
            let mut users = self.users.write();
            if users.contains_key(username) {
                return Err(HubError::UserExists(username.to_owned()));
            }
            if username.is_empty()
                || username.contains('/')
                || username.contains(char::is_whitespace)
            {
                return Err(HubError::BadRequest(format!(
                    "invalid username {username:?}"
                )));
            }
            users.insert(
                username.to_owned(),
                User {
                    username: username.to_owned(),
                    display_name: display_name.to_owned(),
                    email: format!("{username}@hub.example"),
                },
            );
        }
        let ts = self.tick();
        if let Some(secret) = secret {
            // Store only salt + hash; the secret itself never lands. The
            // users map was released above — credentials is a leaf table.
            self.credentials.write().insert(
                username.to_owned(),
                Credential::derive(username, ts, secret),
            );
        }
        self.record(ts, Some(username), "register_user", username, true);
        Ok(())
    }

    /// Records a failed login against `username`'s lockout state and
    /// returns the uniform error the caller should surface. Streaks decay:
    /// a failure more than [`FAILURE_DECAY_TICKS`] after the previous one
    /// starts a fresh count.
    fn login_failure(&self, ts: i64, username: &str) -> HubError {
        {
            let mut states = self.login_states.lock();
            let state = states.entry(username.to_owned()).or_default();
            if ts - state.last_failure >= FAILURE_DECAY_TICKS {
                state.failures = 0;
            }
            state.failures += 1;
            state.last_failure = ts;
            if state.failures >= MAX_LOGIN_FAILURES {
                state.locked_until = ts + LOCKOUT_TICKS;
            }
        }
        self.auth_failures.inc();
        self.record(ts, Some(username), "login", username, false);
        HubError::AuthFailed
    }

    fn op_login(&self, username: &str, secret: Option<&str>) -> Result<String> {
        let ts = self.tick();
        // Lockout gate first: while locked, even the right secret is
        // refused, so an attacker gets no oracle during the window.
        let locked_until = self
            .login_states
            .lock()
            .get(username)
            .map_or(0, |s| s.locked_until);
        if locked_until > ts {
            self.auth_failures.inc();
            self.record(ts, Some(username), "login", username, false);
            return Err(HubError::RateLimited {
                retry_after: locked_until - ts,
            });
        }
        if !self.users.read().contains_key(username) {
            return Err(HubError::UserNotFound(username.to_owned()));
        }
        let credential = self.credentials.read().get(username).cloned();
        match (&credential, secret) {
            // Secret-protected account: verify in constant time.
            (Some(cred), Some(secret)) if cred.verify(secret) => {}
            (Some(_), _) => return Err(self.login_failure(ts, username)),
            // Open account, but the hub demands credentials for everyone.
            (None, _) if self.auth_required.load(Ordering::SeqCst) => {
                return Err(self.login_failure(ts, username));
            }
            // Presenting a secret to an account that has none is refused
            // rather than ignored: the caller clearly expected protection.
            (None, Some(_)) => return Err(self.login_failure(ts, username)),
            (None, None) => {}
        }
        self.login_states.lock().remove(username);
        let token = self.mint_token(username, ts);
        self.record(ts, Some(username), "login", username, true);
        Ok(token)
    }

    fn mint_token(&self, username: &str, now: i64) -> String {
        let n = self.next_token.fetch_add(1, Ordering::SeqCst) + 1;
        let token = format!("ghp_{n:08x}_{username}");
        let ttl = self.token_ttl.load(Ordering::SeqCst);
        self.tokens.write().insert(
            token.clone(),
            TokenEntry {
                username: username.to_owned(),
                expires_at: (ttl > 0).then_some(now + ttl),
            },
        );
        token
    }

    fn op_refresh(&self, token: &str) -> Result<String> {
        let ts = self.tick();
        // Remove-then-mint: the old token is revoked even if it had not
        // expired yet, so a leaked predecessor dies with the exchange.
        let entry = match self.tokens.write().remove(token) {
            Some(entry) => entry,
            None => {
                self.auth_failures.inc();
                return Err(HubError::AuthFailed);
            }
        };
        let fresh = self.mint_token(&entry.username, ts);
        self.record(ts, Some(&entry.username), "refresh", &entry.username, true);
        Ok(fresh)
    }

    fn op_create_repo(&self, token: &str, name: &str) -> Result<String> {
        let user = self.auth(token)?;
        if name.is_empty() || name.contains('/') || name.contains(char::is_whitespace) {
            return Err(HubError::BadRequest(format!(
                "invalid repository name {name:?}"
            )));
        }
        let repo_id = format!("{}/{}", user.username, name);
        if self.repos.read().contains_key(&repo_id) {
            return Err(HubError::RepoExists(repo_id));
        }
        // Build the repository outside any lock; losing a creation race
        // only wastes the loser's work, never corrupts state.
        let url = format!("{}/{}", self.base_url, repo_id);
        let mut cited =
            CitedRepo::init_with_store(name, &user.display_name, &url, (self.store_factory)());
        let ts = self.tick();
        cited
            .commit(
                Signature::new(&user.display_name, &user.email, ts),
                "initialize repository",
            )
            .map_err(HubError::Cite)?;
        let mut roles = BTreeMap::new();
        roles.insert(user.username.clone(), Role::Owner);
        self.insert_repo(
            repo_id.clone(),
            HostedRepo {
                repo: cited.into_repository(),
                roles,
            },
        )?;
        self.record(ts, Some(&user.username), "create_repo", &repo_id, true);
        Ok(repo_id)
    }

    fn op_import_repo(&self, token: &str, name: &str, bundle: &RepoBundle) -> Result<String> {
        let user = self.auth(token)?;
        let repo_id = format!("{}/{}", user.username, name);
        if self.repos.read().contains_key(&repo_id) {
            return Err(HubError::RepoExists(repo_id));
        }
        // A delta bundle cannot seed a repository: its basis objects
        // live only on the peer it was negotiated against.
        if bundle.is_delta() {
            return Err(HubError::BadRequest(
                "import requires a full bundle (delta bundles are push-only)".into(),
            ));
        }
        // Quota check before any object is materialized or any lock held.
        let size = self.check_bundle_quota(&user.username, &repo_id, false, bundle)?;
        let rehomed = bundle
            .into_repository((self.store_factory)())
            .map_err(HubError::Git)?;
        rehomed.head_commit().map_err(HubError::Git)?; // must have content
        let mut roles = BTreeMap::new();
        roles.insert(user.username.clone(), Role::Owner);
        self.insert_repo(
            repo_id.clone(),
            HostedRepo {
                repo: rehomed,
                roles,
            },
        )?;
        self.account_repo_bytes(&repo_id, size);
        let ts = self.tick();
        self.record(ts, Some(&user.username), "import_repo", &repo_id, true);
        Ok(repo_id)
    }

    /// Inserts a freshly built repository, failing (not overwriting) if a
    /// racing request claimed the id first.
    fn insert_repo(&self, repo_id: String, hosted: HostedRepo) -> Result<()> {
        let mut repos = self.repos.write();
        if repos.contains_key(&repo_id) {
            return Err(HubError::RepoExists(repo_id));
        }
        repos.insert(repo_id, Arc::new(RwLock::new(hosted)));
        Ok(())
    }

    fn op_add_member(&self, token: &str, repo_id: &str, username: &str, role: Role) -> Result<()> {
        let actor = self.auth(token)?.username;
        if !self.users.read().contains_key(username) {
            return Err(HubError::UserNotFound(username.to_owned()));
        }
        let cell = self.repo(repo_id)?;
        {
            let mut hosted = cell.write();
            check(&hosted, &actor, Action::Admin)?;
            hosted.roles.insert(username.to_owned(), role);
        }
        let ts = self.tick();
        self.record(ts, Some(&actor), "add_member", repo_id, true);
        Ok(())
    }

    fn op_log(&self, repo_id: &str, branch: &str) -> Result<Vec<LogEntry>> {
        let cell = self.repo(repo_id)?;
        let hosted = cell.read();
        let tip = hosted.repo.branch_tip(branch).map_err(HubError::Git)?;
        // The ordering walk is graph-served on pack-backed repos; only
        // the entries' display fields still read the commit objects
        // (in place — no per-commit clone).
        let mut out = Vec::new();
        for id in hosted.repo.log(tip).map_err(HubError::Git)? {
            let obj = hosted.repo.odb().commit_ref(id).map_err(HubError::Git)?;
            let c = obj.as_commit().expect("checked kind");
            out.push(LogEntry {
                id,
                author: c.author.name.clone(),
                timestamp: c.author.timestamp,
                message: c.message.clone(),
            });
        }
        Ok(out)
    }

    /// Clamps a wire `limit` to `1..=MAX_PAGE_SIZE`, defaulting absent or
    /// zero limits to [`DEFAULT_PAGE_SIZE`].
    fn page_limit(limit: Option<u32>) -> usize {
        match limit {
            None | Some(0) => DEFAULT_PAGE_SIZE,
            Some(n) => (n as usize).min(MAX_PAGE_SIZE),
        }
    }

    fn op_log_page(
        &self,
        repo_id: &str,
        branch: &str,
        cursor: Option<&str>,
        limit: Option<u32>,
    ) -> Result<Page<LogEntry>> {
        let limit = Self::page_limit(limit);
        let cell = self.repo(repo_id)?;
        let hosted = cell.read();
        // The cursor pins the tip the walk started from, so concurrent
        // pushes cannot shift entries between pages.
        let (tip, offset) = match cursor {
            None => (hosted.repo.branch_tip(branch).map_err(HubError::Git)?, 0),
            Some(c) => parse_log_cursor(c)?,
        };
        // The ordering walk is graph-served and cheap; only the page's
        // entries decode their commits.
        let ids = hosted.repo.log(tip).map_err(HubError::Git)?;
        let start = offset.min(ids.len());
        let end = (start + limit).min(ids.len());
        let mut items = Vec::with_capacity(end - start);
        for &id in &ids[start..end] {
            let obj = hosted.repo.odb().commit_ref(id).map_err(HubError::Git)?;
            let c = obj.as_commit().expect("checked kind");
            items.push(LogEntry {
                id,
                author: c.author.name.clone(),
                timestamp: c.author.timestamp,
                message: c.message.clone(),
            });
        }
        let next = (end < ids.len()).then(|| format!("{}:{end}", tip.to_hex()));
        Ok(Page { items, next })
    }

    fn op_audit_log_page(
        &self,
        cursor: Option<&str>,
        limit: Option<u32>,
    ) -> Result<Page<AuditEvent>> {
        let limit = Self::page_limit(limit);
        let from: u64 = match cursor {
            None => 0,
            Some(c) => c
                .parse()
                .map_err(|_| HubError::BadRequest(format!("invalid audit cursor {c:?}")))?,
        };
        let audit = self.audit.lock();
        let events = audit.events();
        // Sequence numbers are assigned in append order, so they are
        // sorted; the cursor is simply the next seq to serve.
        let start = events.partition_point(|e| e.seq < from);
        let end = (start + limit).min(events.len());
        let next = (end < events.len()).then(|| events[end].seq.to_string());
        Ok(Page {
            items: events[start..end].to_vec(),
            next,
        })
    }

    fn op_list_repos_page(&self, cursor: Option<&str>, limit: Option<u32>) -> Page<String> {
        let limit = Self::page_limit(limit);
        let repos = self.repos.read();
        let mut items: Vec<String> = match cursor {
            None => repos.keys().take(limit + 1).cloned().collect(),
            Some(c) => repos
                .range::<String, _>((Bound::Excluded(c.to_owned()), Bound::Unbounded))
                .map(|(k, _)| k.clone())
                .take(limit + 1)
                .collect(),
        };
        let next = (items.len() > limit).then(|| {
            items.truncate(limit);
            items.last().expect("limit >= 1").clone()
        });
        Page { items, next }
    }

    fn op_negotiate(&self, repo_id: &str, haves: &[ObjectId]) -> Result<Negotiation> {
        let cell = self.repo(repo_id)?;
        let hosted = cell.read();
        // "Common" means reachable from a ref. Mere store presence is
        // not enough: an object left behind by a force push may be
        // unreachable and about to be gc'd.
        let tips: Vec<ObjectId> = hosted.repo.branches().map(|(_, tip)| tip).collect();
        let graph_covers_tips = hosted
            .repo
            .odb()
            .commit_graph()
            .is_some_and(|g| tips.iter().all(|&t| g.lookup(t).is_some()));
        let mut negotiation = Negotiation::default();
        if graph_covers_tips {
            // Pack-backed repositories after maintenance: answer each
            // (client-capped) have with the generation-pruned
            // `is_ancestor` — near O(output) per probe, no O(history)
            // set materialized under the repository read lock.
            for &h in haves {
                let reachable = tips
                    .iter()
                    .any(|&t| hosted.repo.is_ancestor(h, t).unwrap_or(false));
                if reachable {
                    negotiation.common.push(h);
                } else {
                    negotiation.missing.push(h);
                }
            }
        } else {
            // Graph-less stores: a per-have decode walk would re-walk
            // the history up to |haves| times, so one materialized
            // ancestor-set walk per distinct tip is the cheaper shape.
            let mut reachable: HashSet<ObjectId> = HashSet::new();
            for tip in tips {
                if !reachable.contains(&tip) {
                    reachable.extend(
                        gitlite::ancestor_set(hosted.repo.odb(), tip).map_err(HubError::Git)?,
                    );
                }
            }
            for &h in haves {
                if reachable.contains(&h) {
                    negotiation.common.push(h);
                } else {
                    negotiation.missing.push(h);
                }
            }
        }
        Ok(negotiation)
    }

    fn cite_op(
        &self,
        token: &str,
        repo_id: &str,
        branch: &str,
        op_name: &str,
        op: impl FnOnce(&mut CitedRepo, &RepoPath) -> citekit::Result<()>,
        path: &RepoPath,
    ) -> Result<ObjectId> {
        let user = self.auth(token)?;
        let cell = self.repo(repo_id)?;
        let mut hosted = cell.write();
        // Tick *under* the write lock: commit timestamps must follow the
        // order writes actually land on the branch, or a racing writer
        // could stamp a child commit earlier than its parent.
        let ts = self.tick();
        if let Err(e) = check(&hosted, &user.username, Action::Write) {
            self.record(ts, Some(&user.username), op_name, repo_id, false);
            return Err(e);
        }
        // Operate on a clone; replace on success so failures can't corrupt
        // the hosted state.
        let mut work = hosted.repo.clone();
        let result = work
            .checkout_branch(branch)
            .map_err(citekit::CiteError::Git)
            .and_then(|()| {
                let mut cited = CitedRepo::open(work)?;
                op(&mut cited, path)?;
                let outcome = cited.commit(
                    Signature::new(&user.display_name, &user.email, ts),
                    format!("{op_name} {}", path.to_cite_key(false)),
                )?;
                Ok((cited, outcome))
            });
        match result {
            Ok((cited, outcome)) => {
                hosted.repo = cited.into_repository();
                self.record(ts, Some(&user.username), op_name, repo_id, true);
                Ok(outcome.commit)
            }
            Err(e) => {
                self.record(ts, Some(&user.username), op_name, repo_id, false);
                Err(HubError::Cite(e))
            }
        }
    }

    fn op_push(
        &self,
        token: &str,
        repo_id: &str,
        branch: &str,
        force: bool,
        bundle: &RepoBundle,
    ) -> Result<ObjectId> {
        let user = self.auth(token)?;
        let src_branch = bundle
            .head
            .clone()
            .or_else(|| bundle.refs.first().map(|(b, _)| b.clone()))
            .ok_or_else(|| HubError::BadRequest("push bundle carries no ref".into()))?;
        // Quota check before materialization: an oversized bundle is
        // refused on its declared byte count alone, costing the server
        // nothing but the summation.
        let size = self.check_bundle_quota(&user.username, repo_id, true, bundle)?;
        // Materialize a full bundle (hash-verifying its whole closure)
        // *before* taking the repository's write lock — readers of this
        // repo must only stall for the ref update, not the verification.
        // A delta is O(new objects) and needs the hosted store anyway.
        let src = match bundle.is_delta() {
            true => None,
            false => Some(
                bundle
                    .into_repository(Box::new(gitlite::MemStore::new()))
                    .map_err(HubError::Git)?,
            ),
        };
        let cell = self.repo(repo_id)?;
        let mut hosted = cell.write();
        let ts = self.tick();
        check(&hosted, &user.username, Action::Write)?;
        let result = match &src {
            Some(src) => gitlite::push(src, &mut hosted.repo, &src_branch, branch, force),
            None => apply_delta_push(&mut hosted.repo, &src_branch, branch, force, bundle),
        };
        let ok = result.is_ok();
        if ok {
            self.account_repo_bytes(repo_id, size);
        }
        let out = result.map_err(HubError::Git);
        self.record(ts, Some(&user.username), "push", repo_id, ok);
        out
    }

    fn op_fork(&self, token: &str, src_repo_id: &str, new_name: &str) -> Result<String> {
        let user = self.auth(token)?;
        let new_repo_id = format!("{}/{}", user.username, new_name);
        if self.repos.read().contains_key(&new_repo_id) {
            return Err(HubError::RepoExists(new_repo_id));
        }
        let src_repo = self.repo(src_repo_id)?.read().repo.clone();
        let ts = self.tick();
        let opts = ForkOptions::new(
            new_name,
            &user.display_name,
            format!("{}/{}", self.base_url, new_repo_id),
        );
        let outcome = citekit::fork_cite_into(
            &src_repo,
            &opts,
            Signature::new(&user.display_name, &user.email, ts),
            (self.store_factory)(),
        )
        .map_err(HubError::Cite)?;
        let mut roles = BTreeMap::new();
        roles.insert(user.username.clone(), Role::Owner);
        self.insert_repo(
            new_repo_id.clone(),
            HostedRepo {
                repo: outcome.fork.into_repository(),
                roles,
            },
        )?;
        self.record(ts, Some(&user.username), "fork", &new_repo_id, true);
        Ok(new_repo_id)
    }

    fn op_merge(
        &self,
        token: &str,
        repo_id: &str,
        branch: &str,
        other_branch: &str,
        strategy: MergeStrategy,
    ) -> Result<MergeSummary> {
        let user = self.auth(token)?;
        let cell = self.repo(repo_id)?;
        let mut hosted = cell.write();
        let ts = self.tick();
        check(&hosted, &user.username, Action::Write)?;
        let mut work = hosted.repo.clone();
        work.checkout_branch(branch).map_err(HubError::Git)?;
        let mut cited = CitedRepo::open(work).map_err(HubError::Cite)?;
        let mut resolver = citekit::FnResolver(
            |_: &RepoPath, o: Option<&Citation>, _: Option<&Citation>, _: Option<&Citation>| {
                if o.is_some() {
                    Resolution::Ours
                } else {
                    Resolution::Theirs
                }
            },
        );
        let report = cited
            .merge_cite(
                other_branch,
                Signature::new(&user.display_name, &user.email, ts),
                format!("Merge branch '{other_branch}' into {branch}"),
                strategy,
                &mut resolver,
            )
            .map_err(HubError::Cite)?;
        let outcome = match report.outcome {
            citekit::MergeCiteOutcome::AlreadyUpToDate => MergeOutcome::AlreadyUpToDate,
            citekit::MergeCiteOutcome::FastForwarded(id) => MergeOutcome::FastForwarded(id),
            citekit::MergeCiteOutcome::Merged(id) => MergeOutcome::Merged(id),
            citekit::MergeCiteOutcome::FileConflicts { .. } => {
                self.record(ts, Some(&user.username), "merge", repo_id, false);
                return Err(HubError::BadRequest(
                    "merge has file conflicts; resolve locally and push".into(),
                ));
            }
        };
        hosted.repo = cited.into_repository();
        self.record(ts, Some(&user.username), "merge", repo_id, true);
        Ok(MergeSummary {
            outcome,
            citation_conflicts: report
                .citation_conflicts
                .into_iter()
                .map(|c| (c.path, c.taken))
                .collect(),
            dropped: report.dropped,
        })
    }

    fn op_deposit(&self, token: &str, repo_id: &str, branch: &str, title: &str) -> Result<Deposit> {
        let user = self.auth(token)?;
        let ts = self.tick();
        let cell = self.repo(repo_id)?;
        let (tip, tree, creators) = {
            let hosted = cell.read();
            check(&hosted, &user.username, Action::Write)?;
            let tip = hosted.repo.branch_tip(branch).map_err(HubError::Git)?;
            let tree = hosted.repo.tree_of(tip).map_err(HubError::Git)?;
            // Creators come from the root citation's author list.
            let cited = CitedRepo::open(hosted.repo.clone()).map_err(HubError::Cite)?;
            let creators = cited.function().root().author_list.clone();
            (tip, tree, creators)
        };
        let deposit = self
            .zenodo
            .lock()
            .deposit(repo_id, tip, tree, title, creators, ts)
            .clone();
        self.record(ts, Some(&user.username), "deposit", repo_id, true);
        Ok(deposit)
    }

    fn op_find_repos_citing(&self, author: &str) -> Vec<(String, Vec<RepoPath>)> {
        let cells: Vec<(String, RepoCell)> = self
            .repos
            .read()
            .iter()
            .map(|(id, cell)| (id.clone(), Arc::clone(cell)))
            .collect();
        let mut out = Vec::new();
        for (repo_id, cell) in cells {
            let repo = cell.read().repo.clone();
            let Ok(cited) = CitedRepo::open(repo) else {
                continue;
            };
            let paths: Vec<RepoPath> = cited
                .function()
                .iter()
                .filter(|(_, e)| e.citation.author_list.iter().any(|a| a == author))
                .map(|(p, _)| p.clone())
                .collect();
            if !paths.is_empty() {
                out.push((repo_id, paths));
            }
        }
        out
    }

    fn op_maintenance(&self) -> Result<Vec<RepoMaintenance>> {
        let cells: Vec<(String, RepoCell)> = self
            .repos
            .read()
            .iter()
            .map(|(id, cell)| (id.clone(), Arc::clone(cell)))
            .collect();
        let mut out = Vec::new();
        for (repo_id, cell) in cells {
            let mut hosted = cell.write();
            let roots: Vec<ObjectId> = hosted.repo.branches().map(|(_, tip)| tip).collect();
            // One sick repository must not stop the rest from compacting:
            // gc failures are reported per-repo, never aborting the sweep.
            let entry = match hosted.repo.odb_mut().maintain(&roots) {
                None => RepoMaintenance {
                    repo_id,
                    supported: false,
                    packed: 0,
                    dropped: 0,
                    error: None,
                },
                Some(Ok(report)) => RepoMaintenance {
                    repo_id,
                    supported: true,
                    packed: report.packed as u64,
                    dropped: report.dropped as u64,
                    error: None,
                },
                Some(Err(e)) => RepoMaintenance {
                    repo_id,
                    supported: true,
                    packed: 0,
                    dropped: 0,
                    error: Some(e.to_string()),
                },
            };
            out.push(entry);
        }
        let ok = out.iter().all(|e| e.error.is_none());
        let ts = self.tick();
        self.record(ts, None, "maintenance", "*", ok);
        Ok(out)
    }

    /// Everything a replica needs to decide what to pull: the primary's
    /// epoch, audit length, every repository's `(head, refs)` frontier,
    /// and the (tiny) deposit registry. Read-only — snapshots each
    /// repository under its read lock, map guard dropped first.
    fn op_repl_status(&self) -> ReplStatus {
        let cells: Vec<(String, RepoCell)> = self
            .repos
            .read()
            .iter()
            .map(|(id, cell)| (id.clone(), Arc::clone(cell)))
            .collect();
        let mut repos = Vec::with_capacity(cells.len());
        for (repo_id, cell) in cells {
            let hosted = cell.read();
            repos.push(ReplRepoStatus {
                repo_id,
                head: hosted.repo.current_branch().map(str::to_owned),
                refs: hosted
                    .repo
                    .branches()
                    .map(|(b, tip)| (b.to_owned(), tip))
                    .collect(),
            });
        }
        ReplStatus {
            epoch: self.now(),
            audit_seq: self.audit.lock().events().len() as u64,
            repos,
            deposits: self.zenodo.lock().deposits().cloned().collect(),
        }
    }

    /// The pull half of replication: `negotiate` against the caller's
    /// haves, then a delta bundle past the common frontier covering
    /// *all* branches (a full bundle when nothing is common — the
    /// bootstrap path).
    fn op_repl_fetch(&self, repo_id: &str, haves: &[ObjectId]) -> Result<RepoBundle> {
        let negotiation = self.op_negotiate(repo_id, haves)?;
        let common: HashSet<ObjectId> = negotiation.common.iter().copied().collect();
        let cell = self.repo(repo_id)?;
        let hosted = cell.read();
        RepoBundle::delta_from_refs(&hosted.repo, &common).map_err(HubError::Git)
    }

    /// The placement map, plus the resolved home hub when the caller
    /// named a repository. A follower without a configured map still
    /// advertises its primary so clients can route writes.
    fn op_placement(&self, repo_id: Option<&str>) -> PlacementInfo {
        match self.placement.read().clone() {
            Some(p) => PlacementInfo {
                primary: repo_id.and_then(|r| p.primary_for(r).map(str::to_owned)),
                hubs: p.hubs().to_vec(),
            },
            None => PlacementInfo {
                hubs: Vec::new(),
                primary: self.repl.read().as_ref().map(|s| s.primary().to_owned()),
            },
        }
    }

    fn op_server_metrics(&self) -> MetricsSnapshot {
        // Only methods that were actually dispatched appear, in name
        // order — the flat slot array is an implementation detail.
        let mut methods: Vec<MethodMetrics> = crate::api::METHOD_NAMES
            .iter()
            .zip(self.method_stats.iter())
            .filter(|(_, stats)| stats.calls.get() > 0)
            .map(|(name, stats)| MethodMetrics {
                method: (*name).to_owned(),
                calls: stats.calls.get(),
                errors: stats
                    .errors
                    .lock()
                    .iter()
                    .map(|(code, n)| (code.clone(), *n))
                    .collect(),
                latency: WireHistogram::from_snapshot(&stats.latency.snapshot()),
            })
            .collect();
        methods.sort_by(|a, b| a.method.cmp(&b.method));
        MetricsSnapshot {
            methods,
            transport: self.transport_metrics(),
            store: Some(self.op_store_metrics()),
            limits: self.limits_metrics(),
            repl: self.repl.read().as_ref().map(|s| s.metrics()),
        }
    }

    /// The abuse-resistance section: hub-side denial counters plus the
    /// transport's shed tally. Absent until anything has fired, so
    /// snapshots from hubs without limits configured are unchanged.
    fn limits_metrics(&self) -> Option<LimitsMetrics> {
        let conns_shed = if self.metrics.is_empty() {
            0
        } else {
            self.metrics.snapshot().counter("conns.shed")
        };
        let lm = LimitsMetrics {
            auth_failures: self.auth_failures.get(),
            rate_rejections: self.rate_rejections.get(),
            quota_rejections: self.quota_rejections.get(),
            conns_shed,
        };
        (!lm.is_empty()).then_some(lm)
    }

    /// The socket-layer section of the snapshot: read back out of the
    /// shared registry the transport populates. `None` when no
    /// transport ever attached (the registry is exclusively theirs —
    /// method stats live in [`Hub::method_stats`]).
    fn transport_metrics(&self) -> Option<TransportMetrics> {
        if self.metrics.is_empty() {
            return None;
        }
        let snap = self.metrics.snapshot();
        Some(TransportMetrics {
            open_connections: snap.gauge("conns.open"),
            queue_depth: snap.gauge("queue.depth"),
            busy_workers: snap.gauge("workers.busy"),
            bytes_in_line: snap.counter("bytes.in.line"),
            bytes_out_line: snap.counter("bytes.out.line"),
            bytes_in_binary: snap.counter("bytes.in.binary"),
            bytes_out_binary: snap.counter("bytes.out.binary"),
            frames_rejected: snap.counter("frames.rejected"),
            transport_closed: snap.counter("conns.transport_closed"),
            obj_raw_bytes: snap.counter("obj.raw_bytes"),
            obj_deflate_bytes: snap.counter("obj.deflate_bytes"),
        })
    }

    /// The storage section: read-cache counters summed over every
    /// hosted repository (via the same `cache_metrics` hook
    /// `store_stats` uses) plus the process-wide pack/loose and
    /// graph/fallback tallies from [`gitlite::metrics`].
    fn op_store_metrics(&self) -> StoreMetrics {
        let cells: Vec<RepoCell> = self.repos.read().values().cloned().collect();
        let (mut hits, mut misses) = (0u64, 0u64);
        for cell in &cells {
            if let Some(c) = cell.read().repo.odb().cache_metrics() {
                hits += c.hits;
                misses += c.misses;
            }
        }
        let reads = gitlite::metrics::snapshot();
        StoreMetrics {
            repos: cells.len() as u64,
            cache_hits: hits,
            cache_misses: misses,
            pack_reads: reads.pack_reads,
            loose_reads: reads.loose_reads,
            graph_walks: reads.graph_walks,
            fallback_walks: reads.fallback_walks,
            delta_resolutions: reads.delta_resolutions,
            bloom_hits: reads.bloom_hits,
            bloom_skips: reads.bloom_skips,
            bloom_false_positives: reads.bloom_false_positives,
        }
    }
}

fn unexpected(response: &ApiResponse) -> HubError {
    HubError::Protocol(format!(
        "response shape does not match the request (got {})",
        response.kind()
    ))
}

/// Decodes an opaque log cursor (`<tip hex>:<offset>`).
fn parse_log_cursor(c: &str) -> Result<(ObjectId, usize)> {
    c.split_once(':')
        .and_then(|(hex, off)| Some((ObjectId::from_hex(hex)?, off.parse().ok()?)))
        .ok_or_else(|| HubError::BadRequest(format!("invalid log cursor {c:?}")))
}

/// Applies a negotiated delta bundle (protocol v2) onto the hosted
/// repository: the server-side half of the have/want exchange. Same ref
/// rules as [`gitlite::push`]; on top of them the delta must be
/// *anchored* (every basis commit already present) and *complete*
/// (everything reachable from the pushed tip exists once the delta's
/// objects are loaded), so a lying or stale client can make the push
/// fail but never leave the branch pointing into a hole.
fn apply_delta_push(
    repo: &mut Repository,
    src_branch: &str,
    dst_branch: &str,
    force: bool,
    bundle: &RepoBundle,
) -> gitlite::Result<ObjectId> {
    let new_tip = bundle
        .refs
        .iter()
        .find(|(b, _)| b == src_branch)
        .or_else(|| bundle.refs.first())
        .map(|(_, tip)| *tip)
        .ok_or(gitlite::GitError::BranchNotFound(src_branch.to_owned()))?;
    for &b in &bundle.basis {
        if !repo.odb().contains(b) {
            return Err(gitlite::GitError::ObjectNotFound(b));
        }
    }
    // Load the delta's objects; `put_raw` hash-verifies every one.
    for (id, bytes) in &bundle.objects {
        repo.odb_mut().put_raw(*id, bytes)?;
    }
    // Connectivity check: walk from the new tip, stopping at basis
    // commits (complete by the check above) and at commits the
    // commit-graph indexes (they were reachable at the last gc, so their
    // closures are complete too — this bounds the walk to roughly the
    // delta even when the client's have sample was sparse).
    let mut seen: HashSet<ObjectId> = bundle.basis.iter().copied().collect();
    let mut stack = vec![new_tip];
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        if repo
            .odb()
            .commit_graph()
            .is_some_and(|g| g.lookup(id).is_some())
        {
            continue;
        }
        let obj = repo.odb().get(id)?; // ObjectNotFound if the delta is short
        match &*obj {
            gitlite::Object::Commit(c) => {
                stack.push(c.tree);
                stack.extend_from_slice(&c.parents);
            }
            gitlite::Object::Tree(t) => {
                for (_, e) in t.iter() {
                    stack.push(e.id);
                }
            }
            gitlite::Object::Blob(_) => {}
        }
    }
    if let Ok(old_tip) = repo.branch_tip(dst_branch) {
        if !repo.is_ancestor(old_tip, new_tip)? && !force {
            return Err(gitlite::GitError::NonFastForward {
                branch: dst_branch.to_owned(),
            });
        }
    }
    repo.set_branch(dst_branch, new_tip)?;
    if repo.current_branch() == Some(dst_branch) {
        repo.checkout_branch(dst_branch)?;
    }
    Ok(new_tip)
}

/// Applies a replication bundle onto the local replica of a repository:
/// the multi-ref sibling of [`apply_delta_push`]. The same safety
/// ladder — anchored basis, hash-verified object insertion, a
/// connectivity walk from **every** advertised tip — guarantees a
/// corrupt, truncated or garbled bundle fails the whole application
/// without leaving partial state. Unlike a push there is no
/// fast-forward rule: the primary's frontier is authoritative, so refs
/// are force-set, branches deleted upstream are deleted here, and the
/// working tree tracks the primary's head.
fn apply_replica_bundle(repo: &mut Repository, bundle: &RepoBundle) -> gitlite::Result<()> {
    for &b in &bundle.basis {
        if !repo.odb().contains(b) {
            return Err(gitlite::GitError::ObjectNotFound(b));
        }
    }
    for (id, bytes) in &bundle.objects {
        repo.odb_mut().put_raw(*id, bytes)?;
    }
    // Connectivity: every tip's closure must exist once the bundle's
    // objects are loaded, stopping at basis commits and commit-graph
    // entries (complete by construction — same bound as a delta push).
    let mut seen: HashSet<ObjectId> = bundle.basis.iter().copied().collect();
    let mut stack: Vec<ObjectId> = bundle.refs.iter().map(|(_, tip)| *tip).collect();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        if repo
            .odb()
            .commit_graph()
            .is_some_and(|g| g.lookup(id).is_some())
        {
            continue;
        }
        let obj = repo.odb().get(id)?;
        match &*obj {
            gitlite::Object::Commit(c) => {
                stack.push(c.tree);
                stack.extend_from_slice(&c.parents);
            }
            gitlite::Object::Tree(t) => {
                for (_, e) in t.iter() {
                    stack.push(e.id);
                }
            }
            gitlite::Object::Blob(_) => {}
        }
    }
    for (branch, tip) in &bundle.refs {
        repo.set_branch(branch, *tip)?;
    }
    // Track the primary's head (or any surviving ref) *before* pruning,
    // so the branch being deleted is never the checked-out one.
    let head = bundle
        .head
        .clone()
        .filter(|h| repo.has_branch(h))
        .or_else(|| bundle.refs.first().map(|(b, _)| b.clone()));
    if let Some(head) = head {
        repo.checkout_branch(&head)?;
    }
    if !bundle.refs.is_empty() {
        let stale: Vec<String> = repo
            .branches()
            .map(|(b, _)| b.to_owned())
            .filter(|b| !bundle.refs.iter().any(|(name, _)| name == b))
            .collect();
        for b in stale {
            repo.delete_branch(&b)?;
        }
    }
    Ok(())
}

fn check(hosted: &HostedRepo, username: &str, action: Action) -> Result<()> {
    let role = hosted.roles.get(username).copied().unwrap_or(Role::Reader);
    if role.allows(action) {
        Ok(())
    } else {
        Err(HubError::PermissionDenied(format!(
            "{username} lacks {action:?} rights on this repository"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gitlite::path;

    fn hub_with_repo() -> (Hub, Token, String) {
        let hub = Hub::new("https://hub.example");
        hub.register_user("leshang", "Leshang Chen").unwrap();
        let token = hub.login("leshang").unwrap();
        let repo_id = hub.create_repo(&token, "P1").unwrap();
        (hub, token, repo_id)
    }

    fn cite(name: &str) -> Citation {
        Citation::builder(name, "someone").build()
    }

    #[test]
    fn register_login_whoami() {
        let hub = Hub::new("https://hub.example");
        hub.register_user("alice", "Alice A").unwrap();
        assert!(matches!(
            hub.register_user("alice", "Again"),
            Err(HubError::UserExists(_))
        ));
        assert!(matches!(
            hub.register_user("bad name", "x"),
            Err(HubError::BadRequest(_))
        ));
        let t = hub.login("alice").unwrap();
        assert_eq!(hub.whoami(&t).unwrap().display_name, "Alice A");
        assert!(matches!(
            hub.login("nobody"),
            Err(HubError::UserNotFound(_))
        ));
        hub.revoke(&t);
        assert!(matches!(hub.whoami(&t), Err(HubError::AuthFailed)));
    }

    #[test]
    fn create_repo_initializes_citation_file() {
        let (hub, _, repo_id) = hub_with_repo();
        assert_eq!(repo_id, "leshang/P1");
        let files = hub.list_files(&repo_id, "main").unwrap();
        assert_eq!(files, vec![citekit::citation_path()]);
        let c = hub
            .generate_citation(&repo_id, "main", &RepoPath::root())
            .unwrap();
        assert_eq!(c.repo_name, "P1");
        assert_eq!(c.owner, "Leshang Chen");
        assert_eq!(c.url, "https://hub.example/leshang/P1");
    }

    use gitlite::RepoPath;

    #[test]
    fn member_writes_nonmember_reads() {
        let (hub, owner_token, repo_id) = hub_with_repo();
        hub.register_user("visitor", "A Visitor").unwrap();
        let visitor = hub.login("visitor").unwrap();

        // Owner pushes a file, then cites it.
        let mut local = hub.clone_repo(&repo_id).unwrap();
        local
            .worktree_mut()
            .write(&path("f1.txt"), &b"data\n"[..])
            .unwrap();
        local
            .commit(Signature::new("Leshang Chen", "l@x", 100), "add f1")
            .unwrap();
        hub.push(&owner_token, &repo_id, "main", &local, "main", false)
            .unwrap();
        hub.add_cite(&owner_token, &repo_id, "main", &path("f1.txt"), cite("C2"))
            .unwrap();

        // Visitor may generate but not modify — Figure 2's split.
        assert!(!hub.can_write(&visitor, &repo_id).unwrap());
        assert!(hub.can_write(&owner_token, &repo_id).unwrap());
        let c = hub
            .generate_citation(&repo_id, "main", &path("f1.txt"))
            .unwrap();
        assert_eq!(c.repo_name, "C2");
        assert!(matches!(
            hub.add_cite(&visitor, &repo_id, "main", &path("f1.txt"), cite("X")),
            Err(HubError::PermissionDenied(_))
        ));
        assert!(matches!(
            hub.del_cite(&visitor, &repo_id, "main", &path("f1.txt")),
            Err(HubError::PermissionDenied(_))
        ));
        // Visitor push is rejected too.
        assert!(matches!(
            hub.push(&visitor, &repo_id, "main", &local, "main", false),
            Err(HubError::PermissionDenied(_))
        ));
    }

    #[test]
    fn membership_grants_write() {
        let (hub, owner_token, repo_id) = hub_with_repo();
        hub.register_user("yanssie", "Yanssie").unwrap();
        let yanssie = hub.login("yanssie").unwrap();
        // Non-owner cannot add members.
        assert!(matches!(
            hub.add_member(&yanssie, &repo_id, "yanssie", Role::Member),
            Err(HubError::PermissionDenied(_))
        ));
        hub.add_member(&owner_token, &repo_id, "yanssie", Role::Member)
            .unwrap();
        assert_eq!(
            hub.role_of(&repo_id, "yanssie").unwrap(),
            Some(Role::Member)
        );
        assert!(hub.can_write(&yanssie, &repo_id).unwrap());
        // Member can cite the root (ModifyCite).
        let c = hub
            .generate_citation(&repo_id, "main", &RepoPath::root())
            .unwrap();
        hub.modify_cite(&yanssie, &repo_id, "main", &RepoPath::root(), c)
            .unwrap();
    }

    #[test]
    fn cite_ops_create_commits() {
        let (hub, token, repo_id) = hub_with_repo();
        let before = hub.log(&repo_id, "main").unwrap().len();
        // Cite the root (always exists).
        let mut c = hub
            .generate_citation(&repo_id, "main", &RepoPath::root())
            .unwrap();
        c.note = Some("updated".into());
        hub.modify_cite(&token, &repo_id, "main", &RepoPath::root(), c)
            .unwrap();
        let log = hub.log(&repo_id, "main").unwrap();
        assert_eq!(log.len(), before + 1);
        assert!(log[0].message.contains("modify_cite"));
        // The change is visible.
        let entry = hub
            .citation_entry(&repo_id, "main", &RepoPath::root())
            .unwrap()
            .unwrap();
        assert_eq!(entry.note.as_deref(), Some("updated"));
    }

    #[test]
    fn failed_cite_op_leaves_repo_untouched() {
        let (hub, token, repo_id) = hub_with_repo();
        let before = hub.log(&repo_id, "main").unwrap();
        // AddCite on a missing path fails...
        assert!(matches!(
            hub.add_cite(&token, &repo_id, "main", &path("nope.txt"), cite("X")),
            Err(HubError::Cite(_))
        ));
        // ...and no commit happened.
        assert_eq!(hub.log(&repo_id, "main").unwrap(), before);
        // The failure is audited.
        let audit = hub.audit_log();
        let last = audit.last().unwrap();
        assert_eq!(last.action, "add_cite");
        assert!(!last.ok);
    }

    #[test]
    fn store_factory_backs_created_and_forked_repos() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let data_dir =
            std::env::temp_dir().join(format!("hub-store-factory-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&data_dir);
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        let factory_dir = data_dir.clone();
        let factory_counter = counter.clone();
        let hub = Hub::with_store_factory(
            "https://hub.example",
            Box::new(move || {
                let n = factory_counter.fetch_add(1, Ordering::SeqCst);
                Box::new(gitlite::DiskStore::open(factory_dir.join(format!("repo{n}"))).unwrap())
            }),
        );
        hub.register_user("ann", "Ann").unwrap();
        let ann = hub.login("ann").unwrap();
        let repo_id = hub.create_repo(&ann, "durable").unwrap();
        let fork_id = hub.fork(&ann, &repo_id, "durable-fork").unwrap();
        assert_eq!(
            counter.load(Ordering::SeqCst),
            2,
            "create and fork each drew a store"
        );
        // Both repositories' objects are actually on disk, not in memory.
        for n in 0..2 {
            let store = gitlite::DiskStore::open(data_dir.join(format!("repo{n}"))).unwrap();
            assert!(
                !gitlite::ObjectStore::is_empty(&store),
                "repo{n} store persisted objects"
            );
        }
        // And both still serve reads through the platform API.
        let c = hub
            .generate_citation(&fork_id, "main", &gitlite::RepoPath::root())
            .unwrap();
        assert_eq!(c.repo_name, "durable-fork");
        let _ = std::fs::remove_dir_all(&data_dir);
    }

    #[test]
    fn fork_creates_new_repo_with_provenance() {
        let (hub, _, repo_id) = hub_with_repo();
        hub.register_user("susan", "Susan Davidson").unwrap();
        let susan = hub.login("susan").unwrap();
        let fork_id = hub.fork(&susan, &repo_id, "P1-fork").unwrap();
        assert_eq!(fork_id, "susan/P1-fork");
        let root = hub
            .generate_citation(&fork_id, "main", &RepoPath::root())
            .unwrap();
        assert_eq!(root.repo_name, "P1-fork");
        assert_eq!(root.owner, "Susan Davidson");
        assert_eq!(
            root.extra.get("forkedFrom").unwrap()["repoName"].as_str(),
            Some("P1")
        );
        // Susan owns the fork and can write to it but not to the origin.
        assert!(hub.can_write(&susan, &fork_id).unwrap());
        assert!(!hub.can_write(&susan, &repo_id).unwrap());
    }

    #[test]
    fn deposit_mints_doi_and_resolves() {
        let (hub, token, repo_id) = hub_with_repo();
        let dep = hub.deposit(&token, &repo_id, "main", "P1 v1.0").unwrap();
        assert!(dep.doi.starts_with("10.5281/zenodo."));
        let resolved = hub.resolve_doi(&dep.doi).unwrap();
        assert_eq!(resolved.repo_id, repo_id);
        assert_eq!(resolved.creators, vec!["Leshang Chen".to_owned()]);
        assert!(matches!(
            hub.resolve_doi("10.1/nope"),
            Err(HubError::DoiNotFound(_))
        ));
    }

    #[test]
    fn heritage_archive_via_hub() {
        let (hub, _, repo_id) = hub_with_repo();
        let report = hub.archive(&repo_id).unwrap();
        assert_eq!(report.heads.len(), 1);
        assert!(hub.resolve_swhid(&report.heads[0]).is_ok());
        assert_eq!(hub.archive_visits(&repo_id), 1);
        hub.archive(&repo_id).unwrap();
        assert_eq!(hub.archive_visits(&repo_id), 2);
    }

    #[test]
    fn server_side_merge() {
        let (hub, token, repo_id) = hub_with_repo();
        // Build a branch with a cited file locally, push both branches.
        let cloned = hub.clone_repo(&repo_id).unwrap();
        let mut local = citekit::CitedRepo::open(cloned).unwrap();
        local.write_file(&path("a.txt"), &b"a\n"[..]).unwrap();
        local
            .commit(Signature::new("Leshang Chen", "l@x", 50), "a")
            .unwrap();
        local.create_branch("gui").unwrap();
        local.checkout_branch("gui").unwrap();
        local
            .write_file(&path("gui/app.js"), &b"app\n"[..])
            .unwrap();
        local.add_cite(&path("gui"), cite("gui-cite")).unwrap();
        local
            .commit(Signature::new("Yanssie", "y@x", 60), "gui work")
            .unwrap();
        local.checkout_branch("main").unwrap();
        local.write_file(&path("b.txt"), &b"b\n"[..]).unwrap();
        local
            .commit(Signature::new("Leshang Chen", "l@x", 70), "b")
            .unwrap();
        let local_repo = local.into_repository();
        hub.push(&token, &repo_id, "main", &local_repo, "main", false)
            .unwrap();
        hub.push(&token, &repo_id, "gui", &local_repo, "gui", false)
            .unwrap();

        let report = hub
            .merge_branches(&token, &repo_id, "main", "gui", MergeStrategy::Union)
            .unwrap();
        assert!(matches!(report.outcome, MergeOutcome::Merged(_)));
        // The merged branch resolves gui files to the gui citation.
        let c = hub
            .generate_citation(&repo_id, "main", &path("gui/app.js"))
            .unwrap();
        assert_eq!(c.repo_name, "gui-cite");
    }

    #[test]
    fn credit_queries() {
        let (hub, token, repo_id) = hub_with_repo();
        let mut local = citekit::CitedRepo::open(hub.clone_repo(&repo_id).unwrap()).unwrap();
        local.write_file(&path("core/a.rs"), &b"a\n"[..]).unwrap();
        let mut c = cite("core");
        c.author_list = vec!["Ada".into(), "Grace".into()];
        local.add_cite(&path("core"), c).unwrap();
        local
            .commit(Signature::new("Leshang Chen", "l@x", 50), "core")
            .unwrap();
        hub.push(&token, &repo_id, "main", local.repo(), "main", false)
            .unwrap();

        let credits = hub.credited_authors(&repo_id, "main").unwrap();
        let names: Vec<&str> = credits.iter().map(|(a, _)| a.as_str()).collect();
        assert_eq!(names, vec!["Leshang Chen", "Ada", "Grace"]);

        let found = hub.find_repos_citing("Ada");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, repo_id);
        assert_eq!(found[0].1, vec![path("core")]);
        assert!(hub.find_repos_citing("Nobody").is_empty());
    }

    #[test]
    fn audit_log_tracks_operations() {
        let (hub, token, repo_id) = hub_with_repo();
        hub.generate_citation(&repo_id, "main", &RepoPath::root())
            .unwrap();
        let mut c = hub
            .generate_citation(&repo_id, "main", &RepoPath::root())
            .unwrap();
        c.note = Some("x".into());
        hub.modify_cite(&token, &repo_id, "main", &RepoPath::root(), c)
            .unwrap();
        let log = hub.audit_log();
        let actions: Vec<&str> = log.iter().map(|e| e.action.as_str()).collect();
        assert!(actions.contains(&"register_user"));
        assert!(actions.contains(&"create_repo"));
        assert!(actions.contains(&"generate_citation"));
        assert!(actions.contains(&"modify_cite"));
        // Sequence numbers are dense and increasing.
        for (i, e) in log.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn store_stats_reports_objects_and_cache() {
        // MemStore-backed repos: object count, no cache in the stack.
        let (hub, _, repo_id) = hub_with_repo();
        let stats = hub.store_stats(&repo_id).unwrap();
        assert_eq!(stats.repo_id, repo_id);
        assert!(stats.objects > 0);
        assert!(stats.cache.is_none());
        assert!(matches!(
            hub.store_stats("nobody/none"),
            Err(HubError::RepoNotFound(_))
        ));

        // CachedStore-backed repos expose their LRU counters.
        let data_dir =
            std::env::temp_dir().join(format!("hub-store-stats-{}-{:p}", std::process::id(), &hub));
        let _ = std::fs::remove_dir_all(&data_dir);
        let hub2 = Hub::with_pack_storage("https://hub.example", &data_dir).unwrap();
        hub2.register_user("ann", "Ann").unwrap();
        let ann = hub2.login("ann").unwrap();
        let rid = hub2.create_repo(&ann, "cached").unwrap();
        // Reads served straight off the hosted store hit its LRU.
        hub2.list_files(&rid, "main").unwrap();
        hub2.list_files(&rid, "main").unwrap();
        let stats = hub2.store_stats(&rid).unwrap();
        let cache = stats.cache.expect("pack storage stacks a read cache");
        assert!(cache.hits + cache.misses > 0, "reads were counted");
        assert!(cache.hits > 0, "repeat walks hit the cache");
        let _ = std::fs::remove_dir_all(&data_dir);
    }

    #[test]
    fn maintenance_gcs_pack_backed_repos() {
        let data_dir = std::env::temp_dir().join(format!("hub-maintenance-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&data_dir);
        let hub = Hub::with_pack_storage("https://hub.example", &data_dir).unwrap();
        hub.register_user("ann", "Ann").unwrap();
        let ann = hub.login("ann").unwrap();
        let a = hub.create_repo(&ann, "one").unwrap();
        let b = hub.create_repo(&ann, "two").unwrap();
        // Grow some history so there is something to pack.
        for (i, repo_id) in [&a, &b].into_iter().enumerate() {
            let mut c = hub
                .generate_citation(repo_id, "main", &RepoPath::root())
                .unwrap();
            c.note = Some(format!("pass {i}"));
            hub.modify_cite(&ann, repo_id, "main", &RepoPath::root(), c)
                .unwrap();
        }
        let report = hub.maintenance().unwrap();
        assert_eq!(report.len(), 2);
        for entry in &report {
            assert!(entry.supported, "{} backend supports gc", entry.repo_id);
            assert!(entry.packed > 0, "{} packed objects", entry.repo_id);
        }
        // Repositories still serve reads after compaction.
        let c = hub
            .generate_citation(&a, "main", &RepoPath::root())
            .unwrap();
        assert_eq!(c.note.as_deref(), Some("pass 0"));
        // Mem-backed hubs report unsupported instead of failing.
        let (mem_hub, _, mem_repo) = hub_with_repo();
        let report = mem_hub.maintenance().unwrap();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].repo_id, mem_repo);
        assert!(!report[0].supported);
        let _ = std::fs::remove_dir_all(&data_dir);
    }

    #[test]
    fn wire_round_trip_through_handle_wire() {
        let (hub, _, repo_id) = hub_with_repo();
        // A read request over the literal wire encoding.
        let request = ApiRequest::GenerateCitation {
            repo_id: repo_id.clone(),
            branch: "main".into(),
            path: RepoPath::root(),
        };
        let response = ApiResponse::parse(&hub.handle_wire(&request.encode())).unwrap();
        match response.into_result().unwrap() {
            ApiResponse::Citation(c) => assert_eq!(c.repo_name, "P1"),
            other => panic!("unexpected response {other:?}"),
        }
        // Errors carry structured codes.
        let request = ApiRequest::Branches {
            repo_id: "nobody/none".into(),
        };
        let response = ApiResponse::parse(&hub.handle_wire(&request.encode())).unwrap();
        let ApiResponse::Error(err) = response else {
            panic!("expected an error response");
        };
        assert_eq!(err.code, crate::api::ErrorCode::RepoNotFound);
        assert_eq!(err.detail.as_deref(), Some("nobody/none"));
        // Garbage is a protocol error, not a panic.
        let text = hub.handle_wire("not json");
        let ApiResponse::Error(err) = ApiResponse::parse(&text).unwrap() else {
            panic!("expected an error response");
        };
        assert_eq!(err.code, crate::api::ErrorCode::Protocol);
    }
}
