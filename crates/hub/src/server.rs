//! The hub itself: users, tokens, hosted repositories and the REST-like
//! API surface (paper Figure 1's "Project Hosting Platform" + "Cloud
//! Platform API").
//!
//! All methods take `&self`; state lives behind a `parking_lot::Mutex`, so
//! one `Hub` can serve many clients concurrently — the browser extension,
//! local tools pushing, and archive crawlers.

use crate::audit::{AuditEvent, AuditLog};
use crate::error::{HubError, Result};
use crate::heritage::{ArchiveReport, Heritage, SwhKind};
use crate::perm::{Action, Role};
use crate::zenodo::{Deposit, Zenodo};
use citekit::{Citation, CitedRepo, ForkOptions, MergeStrategy, Resolution};
use gitlite::{ObjectId, RepoPath, Repository, Signature};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};

/// An opaque personal-access token.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token(String);

impl Token {
    /// The raw token string (for display in the popup's credential box).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// A registered user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct User {
    /// Login name (unique).
    pub username: String,
    /// Display name used in citations and commit signatures.
    pub display_name: String,
    /// Email used in commit signatures.
    pub email: String,
}

#[derive(Debug)]
struct HostedRepo {
    repo: Repository,
    /// username → role. Absence means Reader (public repositories).
    roles: BTreeMap<String, Role>,
}

#[derive(Default)]
struct HubState {
    users: BTreeMap<String, User>,
    tokens: HashMap<String, String>, // token → username
    repos: BTreeMap<String, HostedRepo>,
    audit: AuditLog,
    zenodo: Zenodo,
    heritage: Heritage,
    clock: i64,
    next_token: u64,
}

/// Factory producing the object-store backend for each newly created
/// hosted repository. Defaults to in-memory [`gitlite::MemStore`]s; a
/// deployment can plug in durable or cached backends without touching
/// any server logic (every repository operation goes through the
/// [`gitlite::ObjectStore`] trait).
pub type StoreFactory = Box<dyn Fn() -> Box<dyn gitlite::ObjectStore> + Send + Sync>;

/// The hosting platform.
pub struct Hub {
    state: Mutex<HubState>,
    /// Base URL used when synthesizing repository URLs.
    base_url: String,
    /// Backend factory for server-side repositories.
    store_factory: StoreFactory,
}

impl Default for Hub {
    fn default() -> Self {
        Hub::new("")
    }
}

/// A log entry returned by [`Hub::log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Commit id.
    pub id: ObjectId,
    /// Author display name.
    pub author: String,
    /// Commit timestamp.
    pub timestamp: i64,
    /// Commit message.
    pub message: String,
}

impl Hub {
    /// Creates a hub whose repositories live under `base_url`
    /// (e.g. `https://hub.example`).
    pub fn new(base_url: impl Into<String>) -> Self {
        Self::with_store_factory(base_url, Box::new(|| Box::new(gitlite::MemStore::new())))
    }

    /// [`Hub::new`] with a custom object-store backend per repository —
    /// e.g. `DiskStore`s under a data directory, or `CachedStore`s for
    /// read-heavy serving.
    pub fn with_store_factory(base_url: impl Into<String>, store_factory: StoreFactory) -> Self {
        Hub {
            state: Mutex::new(HubState::default()),
            base_url: base_url.into(),
            store_factory,
        }
    }

    /// [`Hub::new`] with durable packfile storage: each hosted repository
    /// is created on a `CachedStore<PackStore>` rooted under its own
    /// subdirectory of `data_dir` (`repo-0`, `repo-1`, ...). Reads hit
    /// the LRU, cold loads come from buffered packs, and new pushes land
    /// as loose objects until maintenance repacks them — the server-side
    /// counterpart of the local tool's `.gitcite/objects` layout.
    ///
    /// Errors if `data_dir` cannot be created; per-repository stores are
    /// then created lazily by the factory. Directories left behind by an
    /// earlier hub over the same `data_dir` are skipped, never reused —
    /// the repo registry itself is in-memory, so a fresh hub must not
    /// silently adopt (or trip over) a previous run's objects.
    pub fn with_pack_storage(
        base_url: impl Into<String>,
        data_dir: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        let data_dir = data_dir.into();
        std::fs::create_dir_all(&data_dir)?;
        let next = AtomicU64::new(0);
        Ok(Self::with_store_factory(
            base_url,
            Box::new(move || {
                let root = loop {
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    let candidate = data_dir.join(format!("repo-{n}"));
                    if !candidate.exists() {
                        break candidate;
                    }
                };
                let store =
                    gitlite::PackStore::open(root).expect("hub data directory must stay writable");
                Box::new(gitlite::CachedStore::new(store))
            }),
        ))
    }

    /// Repository URL for an id.
    pub fn repo_url(&self, repo_id: &str) -> String {
        format!("{}/{}", self.base_url, repo_id)
    }

    /// Advances the hub clock to at least `ts` (used by deterministic
    /// scenario scripts that want real dates, e.g. the CiteDB demo).
    pub fn advance_clock_to(&self, ts: i64) {
        let mut s = self.state.lock();
        s.clock = s.clock.max(ts);
    }

    // ----- users & auth ----------------------------------------------------

    /// Registers a user.
    pub fn register_user(&self, username: &str, display_name: &str) -> Result<()> {
        let mut s = self.state.lock();
        if s.users.contains_key(username) {
            return Err(HubError::UserExists(username.to_owned()));
        }
        if username.is_empty() || username.contains('/') || username.contains(char::is_whitespace) {
            return Err(HubError::BadRequest(format!(
                "invalid username {username:?}"
            )));
        }
        s.users.insert(
            username.to_owned(),
            User {
                username: username.to_owned(),
                display_name: display_name.to_owned(),
                email: format!("{username}@hub.example"),
            },
        );
        let ts = tick(&mut s);
        s.audit
            .record(ts, Some(username), "register_user", username, true);
        Ok(())
    }

    /// Issues a personal-access token (the credential the popup asks for).
    pub fn login(&self, username: &str) -> Result<Token> {
        let mut s = self.state.lock();
        if !s.users.contains_key(username) {
            return Err(HubError::UserNotFound(username.to_owned()));
        }
        s.next_token += 1;
        let token = format!("ghp_{:08x}_{}", s.next_token, username);
        s.tokens.insert(token.clone(), username.to_owned());
        let ts = tick(&mut s);
        s.audit.record(ts, Some(username), "login", username, true);
        Ok(Token(token))
    }

    /// Revokes a token.
    pub fn revoke(&self, token: &Token) {
        let mut s = self.state.lock();
        s.tokens.remove(&token.0);
    }

    /// Resolves a token to its user.
    pub fn whoami(&self, token: &Token) -> Result<User> {
        let s = self.state.lock();
        let username = s.tokens.get(&token.0).ok_or(HubError::AuthFailed)?;
        Ok(s.users[username].clone())
    }

    // ----- repositories ------------------------------------------------------

    /// Creates a citation-enabled repository owned by the token's user and
    /// commits the initial version (default root citation). Returns the
    /// repository id `owner/name`.
    pub fn create_repo(&self, token: &Token, name: &str) -> Result<String> {
        let mut s = self.state.lock();
        let user = auth(&s, token)?.clone();
        if name.is_empty() || name.contains('/') || name.contains(char::is_whitespace) {
            return Err(HubError::BadRequest(format!(
                "invalid repository name {name:?}"
            )));
        }
        let repo_id = format!("{}/{}", user.username, name);
        if s.repos.contains_key(&repo_id) {
            return Err(HubError::RepoExists(repo_id));
        }
        let url = format!("{}/{}", self.base_url, repo_id);
        let mut cited =
            CitedRepo::init_with_store(name, &user.display_name, &url, (self.store_factory)());
        let ts = tick(&mut s);
        cited
            .commit(
                Signature::new(&user.display_name, &user.email, ts),
                "initialize repository",
            )
            .map_err(HubError::Cite)?;
        let mut roles = BTreeMap::new();
        roles.insert(user.username.clone(), Role::Owner);
        s.repos.insert(
            repo_id.clone(),
            HostedRepo {
                repo: cited.into_repository(),
                roles,
            },
        );
        s.audit
            .record(ts, Some(&user.username), "create_repo", &repo_id, true);
        Ok(repo_id)
    }

    /// Hosts an existing repository (e.g. a retrofitted one) under the
    /// token's user. The repository is re-homed onto the hub's configured
    /// store backend (all branches and their histories are transferred),
    /// so imported repositories get the same durability as created ones.
    pub fn import_repo(&self, token: &Token, name: &str, repo: Repository) -> Result<String> {
        let mut s = self.state.lock();
        let user = auth(&s, token)?.clone();
        let repo_id = format!("{}/{}", user.username, name);
        if s.repos.contains_key(&repo_id) {
            return Err(HubError::RepoExists(repo_id));
        }
        repo.head_commit().map_err(HubError::Git)?; // must have content
        let mut rehomed = gitlite::clone_repository_into(&repo, name, (self.store_factory)())
            .map_err(HubError::Git)?;
        rehomed.set_name(repo.name());
        let mut roles = BTreeMap::new();
        roles.insert(user.username.clone(), Role::Owner);
        s.repos.insert(
            repo_id.clone(),
            HostedRepo {
                repo: rehomed,
                roles,
            },
        );
        let ts = tick(&mut s);
        s.audit
            .record(ts, Some(&user.username), "import_repo", &repo_id, true);
        Ok(repo_id)
    }

    /// Grants `username` a role on a repository (owner only).
    pub fn add_member(
        &self,
        token: &Token,
        repo_id: &str,
        username: &str,
        role: Role,
    ) -> Result<()> {
        let mut s = self.state.lock();
        let actor = auth(&s, token)?.username.clone();
        if !s.users.contains_key(username) {
            return Err(HubError::UserNotFound(username.to_owned()));
        }
        let hosted = s
            .repos
            .get_mut(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        check(hosted, &actor, Action::Admin)?;
        hosted.roles.insert(username.to_owned(), role);
        let ts = tick(&mut s);
        s.audit
            .record(ts, Some(&actor), "add_member", repo_id, true);
        Ok(())
    }

    /// The role a user has on a repository (`None` = implicit reader).
    pub fn role_of(&self, repo_id: &str, username: &str) -> Result<Option<Role>> {
        let s = self.state.lock();
        let hosted = s
            .repos
            .get(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        Ok(hosted.roles.get(username).copied())
    }

    /// True when the token's user may modify citations on the repository —
    /// the check that enables/disables the popup's Add/Delete buttons.
    pub fn can_write(&self, token: &Token, repo_id: &str) -> Result<bool> {
        let s = self.state.lock();
        let user = auth(&s, token)?;
        let hosted = s
            .repos
            .get(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        Ok(hosted
            .roles
            .get(&user.username)
            .copied()
            .unwrap_or(Role::Reader)
            .allows(Action::Write))
    }

    /// All repository ids.
    pub fn list_repos(&self) -> Vec<String> {
        self.state.lock().repos.keys().cloned().collect()
    }

    // ----- public reads -------------------------------------------------------

    /// Branch names of a repository.
    pub fn branches(&self, repo_id: &str) -> Result<Vec<String>> {
        let s = self.state.lock();
        let hosted = s
            .repos
            .get(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        Ok(hosted.repo.branches().map(|(b, _)| b.to_owned()).collect())
    }

    /// File paths at a branch tip.
    pub fn list_files(&self, repo_id: &str, branch: &str) -> Result<Vec<RepoPath>> {
        let s = self.state.lock();
        let hosted = s
            .repos
            .get(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        let tip = hosted.repo.branch_tip(branch).map_err(HubError::Git)?;
        Ok(hosted
            .repo
            .snapshot(tip)
            .map_err(HubError::Git)?
            .into_keys()
            .collect())
    }

    /// Reads one file at a branch tip.
    pub fn read_file(&self, repo_id: &str, branch: &str, path: &RepoPath) -> Result<Vec<u8>> {
        let s = self.state.lock();
        let hosted = s
            .repos
            .get(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        let tip = hosted.repo.branch_tip(branch).map_err(HubError::Git)?;
        Ok(hosted
            .repo
            .file_at(tip, path)
            .map_err(HubError::Git)?
            .to_vec())
    }

    /// Commit log of a branch, newest first.
    pub fn log(&self, repo_id: &str, branch: &str) -> Result<Vec<LogEntry>> {
        let s = self.state.lock();
        let hosted = s
            .repos
            .get(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        let tip = hosted.repo.branch_tip(branch).map_err(HubError::Git)?;
        let mut out = Vec::new();
        for id in hosted.repo.log(tip).map_err(HubError::Git)? {
            let c = hosted.repo.commit_obj(id).map_err(HubError::Git)?;
            out.push(LogEntry {
                id,
                author: c.author.name,
                timestamp: c.author.timestamp,
                message: c.message,
            });
        }
        Ok(out)
    }

    /// Clones a hosted repository (public read — what `git clone` does).
    pub fn clone_repo(&self, repo_id: &str) -> Result<Repository> {
        let mut s = self.state.lock();
        let hosted = s
            .repos
            .get(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        let name = hosted.repo.name().to_owned();
        let clone = gitlite::clone_repository(&hosted.repo, name).map_err(HubError::Git)?;
        let ts = tick(&mut s);
        s.audit.record(ts, None, "clone", repo_id, true);
        Ok(clone)
    }

    /// `GenCite` — generates the citation for a node at a branch tip.
    /// Anonymous: any visitor may do this (paper §3: "If the user is not a
    /// project member, the browser extension immediately generates the
    /// citation").
    pub fn generate_citation(
        &self,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
    ) -> Result<Citation> {
        let mut s = self.state.lock();
        let hosted = s
            .repos
            .get(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        let tip = hosted.repo.branch_tip(branch).map_err(HubError::Git)?;
        let cited = CitedRepo::open(hosted.repo.clone()).map_err(HubError::Cite)?;
        let citation = cited.cite_at(tip, path).map_err(HubError::Cite)?;
        let ts = tick(&mut s);
        s.audit.record(ts, None, "generate_citation", repo_id, true);
        Ok(citation)
    }

    /// The *explicit* citation entry at a path, if any — what the popup's
    /// text box shows a project member before they edit (paper §3: "the
    /// text box will display the citation explicitly attached to the node,
    /// if it exists ... If such a citation does not exist, the text box
    /// will remain empty").
    pub fn citation_entry(
        &self,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
    ) -> Result<Option<Citation>> {
        let s = self.state.lock();
        let hosted = s
            .repos
            .get(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        let tip = hosted.repo.branch_tip(branch).map_err(HubError::Git)?;
        let text = hosted
            .repo
            .file_at(tip, &citekit::citation_path())
            .map_err(HubError::Git)?;
        let func = citekit::file::parse(&String::from_utf8_lossy(&text)).map_err(HubError::Cite)?;
        Ok(func.get(path).cloned())
    }

    // ----- member writes -------------------------------------------------------

    /// `AddCite` on the remote repository (member+). Commits the updated
    /// citation file on `branch` and returns the new commit.
    pub fn add_cite(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
        citation: Citation,
    ) -> Result<ObjectId> {
        self.cite_op(
            token,
            repo_id,
            branch,
            "add_cite",
            move |cited, p| cited.add_cite(p, citation),
            path,
        )
    }

    /// `ModifyCite` on the remote repository (member+).
    pub fn modify_cite(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
        citation: Citation,
    ) -> Result<ObjectId> {
        self.cite_op(
            token,
            repo_id,
            branch,
            "modify_cite",
            move |cited, p| cited.modify_cite(p, citation).map(|_| ()),
            path,
        )
    }

    /// `DelCite` on the remote repository (member+).
    pub fn del_cite(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
    ) -> Result<ObjectId> {
        self.cite_op(
            token,
            repo_id,
            branch,
            "del_cite",
            move |cited, p| cited.del_cite(p).map(|_| ()),
            path,
        )
    }

    fn cite_op(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        op_name: &str,
        op: impl FnOnce(&mut CitedRepo, &RepoPath) -> citekit::Result<()>,
        path: &RepoPath,
    ) -> Result<ObjectId> {
        let mut s = self.state.lock();
        let user = auth(&s, token)?.clone();
        let ts = tick(&mut s);
        let hosted = s
            .repos
            .get_mut(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        let allowed = check(hosted, &user.username, Action::Write);
        if let Err(e) = allowed {
            s.audit
                .record(ts, Some(&user.username), op_name, repo_id, false);
            return Err(e);
        }
        // Operate on a clone; replace on success so failures can't corrupt
        // the hosted state.
        let mut work = hosted.repo.clone();
        work.checkout_branch(branch).map_err(HubError::Git)?;
        let mut cited = CitedRepo::open(work).map_err(HubError::Cite)?;
        let result = op(&mut cited, path).and_then(|()| {
            cited.commit(
                Signature::new(&user.display_name, &user.email, ts),
                format!("{op_name} {}", path.to_cite_key(false)),
            )
        });
        match result {
            Ok(outcome) => {
                let hosted = s.repos.get_mut(repo_id).expect("still present");
                hosted.repo = cited.into_repository();
                s.audit
                    .record(ts, Some(&user.username), op_name, repo_id, true);
                Ok(outcome.commit)
            }
            Err(e) => {
                s.audit
                    .record(ts, Some(&user.username), op_name, repo_id, false);
                Err(HubError::Cite(e))
            }
        }
    }

    /// Pushes `local_branch` of `local` to `branch` of the hosted
    /// repository (member+; fast-forward unless `force`).
    pub fn push(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        local: &Repository,
        local_branch: &str,
        force: bool,
    ) -> Result<ObjectId> {
        let mut s = self.state.lock();
        let user = auth(&s, token)?.clone();
        let ts = tick(&mut s);
        let hosted = s
            .repos
            .get_mut(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        check(hosted, &user.username, Action::Write)?;
        let result = gitlite::push(local, &mut hosted.repo, local_branch, branch, force);
        let ok = result.is_ok();
        let out = result.map_err(HubError::Git);
        s.audit
            .record(ts, Some(&user.username), "push", repo_id, ok);
        out
    }

    /// `ForkCite` via the platform: forks `src_repo_id` into a new
    /// repository under the token's user (paper §3: "ForkCite through
    /// GitHub's Fork").
    pub fn fork(&self, token: &Token, src_repo_id: &str, new_name: &str) -> Result<String> {
        let mut s = self.state.lock();
        let user = auth(&s, token)?.clone();
        let new_repo_id = format!("{}/{}", user.username, new_name);
        if s.repos.contains_key(&new_repo_id) {
            return Err(HubError::RepoExists(new_repo_id));
        }
        let src_repo = s
            .repos
            .get(src_repo_id)
            .ok_or_else(|| HubError::RepoNotFound(src_repo_id.to_owned()))?
            .repo
            .clone();
        let ts = tick(&mut s);
        let opts = ForkOptions::new(
            new_name,
            &user.display_name,
            format!("{}/{}", self.base_url, new_repo_id),
        );
        let outcome = citekit::fork_cite_into(
            &src_repo,
            &opts,
            Signature::new(&user.display_name, &user.email, ts),
            (self.store_factory)(),
        )
        .map_err(HubError::Cite)?;
        let mut roles = BTreeMap::new();
        roles.insert(user.username.clone(), Role::Owner);
        s.repos.insert(
            new_repo_id.clone(),
            HostedRepo {
                repo: outcome.fork.into_repository(),
                roles,
            },
        );
        s.audit
            .record(ts, Some(&user.username), "fork", &new_repo_id, true);
        Ok(new_repo_id)
    }

    /// Server-side `MergeCite` of `other_branch` into `branch` using the
    /// given strategy; conflicts default to keeping ours (the interactive
    /// path lives in the local tool).
    pub fn merge_branches(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        other_branch: &str,
        strategy: MergeStrategy,
    ) -> Result<citekit::MergeCiteReport> {
        let mut s = self.state.lock();
        let user = auth(&s, token)?.clone();
        let ts = tick(&mut s);
        let hosted = s
            .repos
            .get_mut(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        check(hosted, &user.username, Action::Write)?;
        let mut work = hosted.repo.clone();
        work.checkout_branch(branch).map_err(HubError::Git)?;
        let mut cited = CitedRepo::open(work).map_err(HubError::Cite)?;
        let mut resolver = citekit::FnResolver(
            |_: &RepoPath, o: Option<&Citation>, _: Option<&Citation>, _: Option<&Citation>| {
                if o.is_some() {
                    Resolution::Ours
                } else {
                    Resolution::Theirs
                }
            },
        );
        let report = cited
            .merge_cite(
                other_branch,
                Signature::new(&user.display_name, &user.email, ts),
                format!("Merge branch '{other_branch}' into {branch}"),
                strategy,
                &mut resolver,
            )
            .map_err(HubError::Cite)?;
        if matches!(
            report.outcome,
            citekit::MergeCiteOutcome::FileConflicts { .. }
        ) {
            s.audit
                .record(ts, Some(&user.username), "merge", repo_id, false);
            return Err(HubError::BadRequest(
                "merge has file conflicts; resolve locally and push".into(),
            ));
        }
        let hosted = s.repos.get_mut(repo_id).expect("still present");
        hosted.repo = cited.into_repository();
        s.audit
            .record(ts, Some(&user.username), "merge", repo_id, true);
        Ok(report)
    }

    // ----- archives ---------------------------------------------------------

    /// Deposits a branch tip with the Zenodo simulator, minting a DOI.
    pub fn deposit(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        title: &str,
    ) -> Result<Deposit> {
        let mut s = self.state.lock();
        let user = auth(&s, token)?.clone();
        let ts = tick(&mut s);
        let hosted = s
            .repos
            .get(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        check(hosted, &user.username, Action::Write)?;
        let tip = hosted.repo.branch_tip(branch).map_err(HubError::Git)?;
        let tree = hosted.repo.tree_of(tip).map_err(HubError::Git)?;
        // Creators come from the root citation's author list.
        let cited = CitedRepo::open(hosted.repo.clone()).map_err(HubError::Cite)?;
        let creators = cited.function().root().author_list.clone();
        let deposit = s
            .zenodo
            .deposit(repo_id, tip, tree, title, creators, ts)
            .clone();
        s.audit
            .record(ts, Some(&user.username), "deposit", repo_id, true);
        Ok(deposit)
    }

    /// Resolves a DOI minted by [`Hub::deposit`].
    pub fn resolve_doi(&self, doi: &str) -> Result<Deposit> {
        let s = self.state.lock();
        s.zenodo
            .resolve(doi)
            .cloned()
            .ok_or_else(|| HubError::DoiNotFound(doi.to_owned()))
    }

    /// Archives a repository into the Software Heritage simulator.
    pub fn archive(&self, repo_id: &str) -> Result<ArchiveReport> {
        let mut s = self.state.lock();
        let hosted = s
            .repos
            .get(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        let origin = format!("{}/{}", self.base_url, repo_id);
        let repo = hosted.repo.clone();
        let report = s.heritage.archive(&origin, &repo)?;
        let ts = tick(&mut s);
        s.audit.record(ts, None, "archive", repo_id, true);
        Ok(report)
    }

    /// Checks whether an SWHID is archived.
    pub fn resolve_swhid(&self, swhid: &str) -> Result<(SwhKind, ObjectId)> {
        self.state.lock().heritage.resolve(swhid)
    }

    /// Number of archive visits recorded for a repository.
    pub fn archive_visits(&self, repo_id: &str) -> usize {
        let origin = format!("{}/{}", self.base_url, repo_id);
        self.state.lock().heritage.visits(&origin)
    }

    // ----- credit queries -----------------------------------------------------

    /// Every author credited in a repository's citation function at a
    /// branch tip, with the citing keys — the "give credit to the
    /// appropriate contributors" view (paper §1).
    pub fn credited_authors(
        &self,
        repo_id: &str,
        branch: &str,
    ) -> Result<Vec<(String, Vec<RepoPath>)>> {
        let s = self.state.lock();
        let hosted = s
            .repos
            .get(repo_id)
            .ok_or_else(|| HubError::RepoNotFound(repo_id.to_owned()))?;
        let mut work = hosted.repo.clone();
        work.checkout_branch(branch).map_err(HubError::Git)?;
        let cited = CitedRepo::open(work).map_err(HubError::Cite)?;
        Ok(cited.credited_authors())
    }

    /// All hosted repositories whose current citation function credits
    /// `author`, with the citing keys per repository — a platform-wide
    /// credit search.
    pub fn find_repos_citing(&self, author: &str) -> Vec<(String, Vec<RepoPath>)> {
        let s = self.state.lock();
        let mut out = Vec::new();
        for (repo_id, hosted) in &s.repos {
            let Ok(cited) = CitedRepo::open(hosted.repo.clone()) else {
                continue;
            };
            let paths: Vec<RepoPath> = cited
                .function()
                .iter()
                .filter(|(_, e)| e.citation.author_list.iter().any(|a| a == author))
                .map(|(p, _)| p.clone())
                .collect();
            if !paths.is_empty() {
                out.push((repo_id.clone(), paths));
            }
        }
        out
    }

    // ----- audit -------------------------------------------------------------

    /// A snapshot of the audit log.
    pub fn audit_log(&self) -> Vec<AuditEvent> {
        self.state.lock().audit.events().to_vec()
    }
}

fn tick(s: &mut HubState) -> i64 {
    s.clock += 1;
    s.clock
}

fn auth<'a>(s: &'a HubState, token: &Token) -> Result<&'a User> {
    let username = s.tokens.get(&token.0).ok_or(HubError::AuthFailed)?;
    s.users.get(username).ok_or(HubError::AuthFailed)
}

fn check(hosted: &HostedRepo, username: &str, action: Action) -> Result<()> {
    let role = hosted.roles.get(username).copied().unwrap_or(Role::Reader);
    if role.allows(action) {
        Ok(())
    } else {
        Err(HubError::PermissionDenied(format!(
            "{username} lacks {action:?} rights on this repository"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gitlite::path;

    fn hub_with_repo() -> (Hub, Token, String) {
        let hub = Hub::new("https://hub.example");
        hub.register_user("leshang", "Leshang Chen").unwrap();
        let token = hub.login("leshang").unwrap();
        let repo_id = hub.create_repo(&token, "P1").unwrap();
        (hub, token, repo_id)
    }

    fn cite(name: &str) -> Citation {
        Citation::builder(name, "someone").build()
    }

    #[test]
    fn register_login_whoami() {
        let hub = Hub::new("https://hub.example");
        hub.register_user("alice", "Alice A").unwrap();
        assert!(matches!(
            hub.register_user("alice", "Again"),
            Err(HubError::UserExists(_))
        ));
        assert!(matches!(
            hub.register_user("bad name", "x"),
            Err(HubError::BadRequest(_))
        ));
        let t = hub.login("alice").unwrap();
        assert_eq!(hub.whoami(&t).unwrap().display_name, "Alice A");
        assert!(matches!(
            hub.login("nobody"),
            Err(HubError::UserNotFound(_))
        ));
        hub.revoke(&t);
        assert!(matches!(hub.whoami(&t), Err(HubError::AuthFailed)));
    }

    #[test]
    fn create_repo_initializes_citation_file() {
        let (hub, _, repo_id) = hub_with_repo();
        assert_eq!(repo_id, "leshang/P1");
        let files = hub.list_files(&repo_id, "main").unwrap();
        assert_eq!(files, vec![citekit::citation_path()]);
        let c = hub
            .generate_citation(&repo_id, "main", &RepoPath::root())
            .unwrap();
        assert_eq!(c.repo_name, "P1");
        assert_eq!(c.owner, "Leshang Chen");
        assert_eq!(c.url, "https://hub.example/leshang/P1");
    }

    use gitlite::RepoPath;

    #[test]
    fn member_writes_nonmember_reads() {
        let (hub, owner_token, repo_id) = hub_with_repo();
        hub.register_user("visitor", "A Visitor").unwrap();
        let visitor = hub.login("visitor").unwrap();

        // Owner pushes a file, then cites it.
        let mut local = hub.clone_repo(&repo_id).unwrap();
        local
            .worktree_mut()
            .write(&path("f1.txt"), &b"data\n"[..])
            .unwrap();
        local
            .commit(Signature::new("Leshang Chen", "l@x", 100), "add f1")
            .unwrap();
        hub.push(&owner_token, &repo_id, "main", &local, "main", false)
            .unwrap();
        hub.add_cite(&owner_token, &repo_id, "main", &path("f1.txt"), cite("C2"))
            .unwrap();

        // Visitor may generate but not modify — Figure 2's split.
        assert!(!hub.can_write(&visitor, &repo_id).unwrap());
        assert!(hub.can_write(&owner_token, &repo_id).unwrap());
        let c = hub
            .generate_citation(&repo_id, "main", &path("f1.txt"))
            .unwrap();
        assert_eq!(c.repo_name, "C2");
        assert!(matches!(
            hub.add_cite(&visitor, &repo_id, "main", &path("f1.txt"), cite("X")),
            Err(HubError::PermissionDenied(_))
        ));
        assert!(matches!(
            hub.del_cite(&visitor, &repo_id, "main", &path("f1.txt")),
            Err(HubError::PermissionDenied(_))
        ));
        // Visitor push is rejected too.
        assert!(matches!(
            hub.push(&visitor, &repo_id, "main", &local, "main", false),
            Err(HubError::PermissionDenied(_))
        ));
    }

    #[test]
    fn membership_grants_write() {
        let (hub, owner_token, repo_id) = hub_with_repo();
        hub.register_user("yanssie", "Yanssie").unwrap();
        let yanssie = hub.login("yanssie").unwrap();
        // Non-owner cannot add members.
        assert!(matches!(
            hub.add_member(&yanssie, &repo_id, "yanssie", Role::Member),
            Err(HubError::PermissionDenied(_))
        ));
        hub.add_member(&owner_token, &repo_id, "yanssie", Role::Member)
            .unwrap();
        assert_eq!(
            hub.role_of(&repo_id, "yanssie").unwrap(),
            Some(Role::Member)
        );
        assert!(hub.can_write(&yanssie, &repo_id).unwrap());
        // Member can cite the root (ModifyCite).
        let c = hub
            .generate_citation(&repo_id, "main", &RepoPath::root())
            .unwrap();
        hub.modify_cite(&yanssie, &repo_id, "main", &RepoPath::root(), c)
            .unwrap();
    }

    #[test]
    fn cite_ops_create_commits() {
        let (hub, token, repo_id) = hub_with_repo();
        let before = hub.log(&repo_id, "main").unwrap().len();
        // Cite the root (always exists).
        let mut c = hub
            .generate_citation(&repo_id, "main", &RepoPath::root())
            .unwrap();
        c.note = Some("updated".into());
        hub.modify_cite(&token, &repo_id, "main", &RepoPath::root(), c)
            .unwrap();
        let log = hub.log(&repo_id, "main").unwrap();
        assert_eq!(log.len(), before + 1);
        assert!(log[0].message.contains("modify_cite"));
        // The change is visible.
        let entry = hub
            .citation_entry(&repo_id, "main", &RepoPath::root())
            .unwrap()
            .unwrap();
        assert_eq!(entry.note.as_deref(), Some("updated"));
    }

    #[test]
    fn failed_cite_op_leaves_repo_untouched() {
        let (hub, token, repo_id) = hub_with_repo();
        let before = hub.log(&repo_id, "main").unwrap();
        // AddCite on a missing path fails...
        assert!(matches!(
            hub.add_cite(&token, &repo_id, "main", &path("nope.txt"), cite("X")),
            Err(HubError::Cite(_))
        ));
        // ...and no commit happened.
        assert_eq!(hub.log(&repo_id, "main").unwrap(), before);
        // The failure is audited.
        let audit = hub.audit_log();
        let last = audit.last().unwrap();
        assert_eq!(last.action, "add_cite");
        assert!(!last.ok);
    }

    #[test]
    fn store_factory_backs_created_and_forked_repos() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let data_dir =
            std::env::temp_dir().join(format!("hub-store-factory-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&data_dir);
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        let factory_dir = data_dir.clone();
        let factory_counter = counter.clone();
        let hub = Hub::with_store_factory(
            "https://hub.example",
            Box::new(move || {
                let n = factory_counter.fetch_add(1, Ordering::SeqCst);
                Box::new(gitlite::DiskStore::open(factory_dir.join(format!("repo{n}"))).unwrap())
            }),
        );
        hub.register_user("ann", "Ann").unwrap();
        let ann = hub.login("ann").unwrap();
        let repo_id = hub.create_repo(&ann, "durable").unwrap();
        let fork_id = hub.fork(&ann, &repo_id, "durable-fork").unwrap();
        assert_eq!(
            counter.load(Ordering::SeqCst),
            2,
            "create and fork each drew a store"
        );
        // Both repositories' objects are actually on disk, not in memory.
        for n in 0..2 {
            let store = gitlite::DiskStore::open(data_dir.join(format!("repo{n}"))).unwrap();
            assert!(
                !gitlite::ObjectStore::is_empty(&store),
                "repo{n} store persisted objects"
            );
        }
        // And both still serve reads through the platform API.
        let c = hub
            .generate_citation(&fork_id, "main", &gitlite::RepoPath::root())
            .unwrap();
        assert_eq!(c.repo_name, "durable-fork");
        let _ = std::fs::remove_dir_all(&data_dir);
    }

    #[test]
    fn fork_creates_new_repo_with_provenance() {
        let (hub, _, repo_id) = hub_with_repo();
        hub.register_user("susan", "Susan Davidson").unwrap();
        let susan = hub.login("susan").unwrap();
        let fork_id = hub.fork(&susan, &repo_id, "P1-fork").unwrap();
        assert_eq!(fork_id, "susan/P1-fork");
        let root = hub
            .generate_citation(&fork_id, "main", &RepoPath::root())
            .unwrap();
        assert_eq!(root.repo_name, "P1-fork");
        assert_eq!(root.owner, "Susan Davidson");
        assert_eq!(
            root.extra.get("forkedFrom").unwrap()["repoName"].as_str(),
            Some("P1")
        );
        // Susan owns the fork and can write to it but not to the origin.
        assert!(hub.can_write(&susan, &fork_id).unwrap());
        assert!(!hub.can_write(&susan, &repo_id).unwrap());
    }

    #[test]
    fn deposit_mints_doi_and_resolves() {
        let (hub, token, repo_id) = hub_with_repo();
        let dep = hub.deposit(&token, &repo_id, "main", "P1 v1.0").unwrap();
        assert!(dep.doi.starts_with("10.5281/zenodo."));
        let resolved = hub.resolve_doi(&dep.doi).unwrap();
        assert_eq!(resolved.repo_id, repo_id);
        assert_eq!(resolved.creators, vec!["Leshang Chen".to_owned()]);
        assert!(matches!(
            hub.resolve_doi("10.1/nope"),
            Err(HubError::DoiNotFound(_))
        ));
    }

    #[test]
    fn heritage_archive_via_hub() {
        let (hub, _, repo_id) = hub_with_repo();
        let report = hub.archive(&repo_id).unwrap();
        assert_eq!(report.heads.len(), 1);
        assert!(hub.resolve_swhid(&report.heads[0]).is_ok());
        assert_eq!(hub.archive_visits(&repo_id), 1);
        hub.archive(&repo_id).unwrap();
        assert_eq!(hub.archive_visits(&repo_id), 2);
    }

    #[test]
    fn server_side_merge() {
        let (hub, token, repo_id) = hub_with_repo();
        // Build a branch with a cited file locally, push both branches.
        let cloned = hub.clone_repo(&repo_id).unwrap();
        let mut local = citekit::CitedRepo::open(cloned).unwrap();
        local.write_file(&path("a.txt"), &b"a\n"[..]).unwrap();
        local
            .commit(Signature::new("Leshang Chen", "l@x", 50), "a")
            .unwrap();
        local.create_branch("gui").unwrap();
        local.checkout_branch("gui").unwrap();
        local
            .write_file(&path("gui/app.js"), &b"app\n"[..])
            .unwrap();
        local.add_cite(&path("gui"), cite("gui-cite")).unwrap();
        local
            .commit(Signature::new("Yanssie", "y@x", 60), "gui work")
            .unwrap();
        local.checkout_branch("main").unwrap();
        local.write_file(&path("b.txt"), &b"b\n"[..]).unwrap();
        local
            .commit(Signature::new("Leshang Chen", "l@x", 70), "b")
            .unwrap();
        let local_repo = local.into_repository();
        hub.push(&token, &repo_id, "main", &local_repo, "main", false)
            .unwrap();
        hub.push(&token, &repo_id, "gui", &local_repo, "gui", false)
            .unwrap();

        let report = hub
            .merge_branches(&token, &repo_id, "main", "gui", MergeStrategy::Union)
            .unwrap();
        assert!(matches!(
            report.outcome,
            citekit::MergeCiteOutcome::Merged(_)
        ));
        // The merged branch resolves gui files to the gui citation.
        let c = hub
            .generate_citation(&repo_id, "main", &path("gui/app.js"))
            .unwrap();
        assert_eq!(c.repo_name, "gui-cite");
    }

    #[test]
    fn credit_queries() {
        let (hub, token, repo_id) = hub_with_repo();
        let mut local = citekit::CitedRepo::open(hub.clone_repo(&repo_id).unwrap()).unwrap();
        local.write_file(&path("core/a.rs"), &b"a\n"[..]).unwrap();
        let mut c = cite("core");
        c.author_list = vec!["Ada".into(), "Grace".into()];
        local.add_cite(&path("core"), c).unwrap();
        local
            .commit(Signature::new("Leshang Chen", "l@x", 50), "core")
            .unwrap();
        hub.push(&token, &repo_id, "main", local.repo(), "main", false)
            .unwrap();

        let credits = hub.credited_authors(&repo_id, "main").unwrap();
        let names: Vec<&str> = credits.iter().map(|(a, _)| a.as_str()).collect();
        assert_eq!(names, vec!["Leshang Chen", "Ada", "Grace"]);

        let found = hub.find_repos_citing("Ada");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, repo_id);
        assert_eq!(found[0].1, vec![path("core")]);
        assert!(hub.find_repos_citing("Nobody").is_empty());
    }

    #[test]
    fn audit_log_tracks_operations() {
        let (hub, token, repo_id) = hub_with_repo();
        hub.generate_citation(&repo_id, "main", &RepoPath::root())
            .unwrap();
        let mut c = hub
            .generate_citation(&repo_id, "main", &RepoPath::root())
            .unwrap();
        c.note = Some("x".into());
        hub.modify_cite(&token, &repo_id, "main", &RepoPath::root(), c)
            .unwrap();
        let log = hub.audit_log();
        let actions: Vec<&str> = log.iter().map(|e| e.action.as_str()).collect();
        assert!(actions.contains(&"register_user"));
        assert!(actions.contains(&"create_repo"));
        assert!(actions.contains(&"generate_citation"));
        assert!(actions.contains(&"modify_cite"));
        // Sequence numbers are dense and increasing.
        for (i, e) in log.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }
}
