//! Fault injection for the hub's transport stack: prove that a flaky
//! network degrades every operation to a *typed error* — never a hang,
//! never a corrupted repository — and that the client's retry discipline
//! (idempotent reads only) holds under fire.
//!
//! Two tools, two layers:
//!
//! * [`ChaosTransport`] wraps any [`Transport`] and, on a seeded
//!   schedule, swallows a request before it is sent, swallows a response
//!   after the request executed (the dangerous case for writes), or
//!   synthesizes a `server_busy` refusal. It exercises
//!   [`HubClient`](crate::client::HubClient) retry logic hermetically —
//!   no sockets, no timing.
//! * [`ChaosProxy`] is a real loopback TCP proxy in front of a
//!   [`SocketServer`](crate::transport::SocketServer). Each accepted
//!   connection draws one fault from a schedule seeded by
//!   `seed + connection index`: pass through untouched, **truncate** the
//!   stream after N bytes, **garble** one byte, or **stall** and drop.
//!   The same seed replays the same session byte-for-byte, so chaos
//!   tests are deterministic.
//!
//! Corruption safety does not come from the proxy being gentle — it
//! garbles request bytes too — but from the layers under test: binary
//! frames carry length prefixes (a truncated frame never parses), object
//! records are content-addressed (a garbled object fails its hash check
//! server-side before landing), and envelopes that fail to parse get a
//! typed `protocol` error. The proxy only proves those claims hold.

use crate::api::ApiResponse;
use crate::client::Transport;
use crate::error::HubError;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

// ---------------------------------------------------------------------
// ChaosTransport: in-process fault injection
// ---------------------------------------------------------------------

/// Per-call fault probabilities for [`ChaosTransport`]. Rates are
/// evaluated in order (lost request, then lost response, then busy) on a
/// single roll, so their sum must stay at or below 1.0.
#[derive(Clone, Copy, Debug)]
pub struct ChaosSchedule {
    /// Seed for the deterministic schedule.
    pub seed: u64,
    /// Probability the request never reaches the inner transport
    /// (surfaces as `transport_closed`; the server saw nothing).
    pub lose_request: f64,
    /// Probability the request executes but its response is swallowed
    /// (also `transport_closed`; the server-side effect stands — the
    /// case that makes blind write-retries dangerous).
    pub lose_response: f64,
    /// Probability of a synthesized `server_busy` refusal (the request
    /// is not sent).
    pub busy: f64,
}

impl Default for ChaosSchedule {
    fn default() -> Self {
        ChaosSchedule {
            seed: 0,
            lose_request: 0.1,
            lose_response: 0.1,
            busy: 0.1,
        }
    }
}

/// A [`Transport`] wrapper that injects faults per [`ChaosSchedule`].
/// Deterministic: the same seed and call sequence produce the same
/// faults.
pub struct ChaosTransport<T> {
    inner: T,
    schedule: ChaosSchedule,
    rng: Mutex<StdRng>,
    requests_lost: AtomicU64,
    responses_lost: AtomicU64,
    busy_injected: AtomicU64,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` under `schedule`.
    pub fn new(inner: T, schedule: ChaosSchedule) -> ChaosTransport<T> {
        ChaosTransport {
            inner,
            schedule,
            rng: Mutex::new(StdRng::seed_from_u64(schedule.seed)),
            requests_lost: AtomicU64::new(0),
            responses_lost: AtomicU64::new(0),
            busy_injected: AtomicU64::new(0),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// (requests lost, responses lost, busy refusals injected) so far.
    pub fn fault_counts(&self) -> (u64, u64, u64) {
        (
            self.requests_lost.load(Ordering::SeqCst),
            self.responses_lost.load(Ordering::SeqCst),
            self.busy_injected.load(Ordering::SeqCst),
        )
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn send(&self, request: &str) -> String {
        let roll = self.rng.lock().gen_f64();
        let s = &self.schedule;
        if roll < s.lose_request {
            self.requests_lost.fetch_add(1, Ordering::SeqCst);
            return ApiResponse::from_error(&HubError::TransportClosed(
                "injected: connection dropped before the request was sent".into(),
            ))
            .encode();
        }
        if roll < s.lose_request + s.lose_response {
            self.responses_lost.fetch_add(1, Ordering::SeqCst);
            let _ = self.inner.send(request); // executed; reply swallowed
            return ApiResponse::from_error(&HubError::TransportClosed(
                "injected: connection dropped awaiting the response".into(),
            ))
            .encode();
        }
        if roll < s.lose_request + s.lose_response + s.busy {
            self.busy_injected.fetch_add(1, Ordering::SeqCst);
            return ApiResponse::from_error(&HubError::ServerBusy { retry_after: 1 }).encode();
        }
        self.inner.send(request)
    }
}

// ---------------------------------------------------------------------
// ChaosProxy: socket-level fault injection
// ---------------------------------------------------------------------

/// Configuration for a [`ChaosProxy`].
#[derive(Clone, Copy, Debug)]
pub struct ProxyConfig {
    /// Base seed; connection `i` uses `seed + i`, so a run replays.
    pub seed: u64,
    /// Probability an accepted connection draws *any* fault (the kind
    /// and position are then drawn from the same per-connection RNG).
    pub fault_rate: f64,
    /// How long a stalled connection sleeps before being dropped.
    pub stall: Duration,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            seed: 0,
            fault_rate: 0.5,
            stall: Duration::from_millis(50),
        }
    }
}

/// What a connection's fault plan does to the bytes flowing through it.
/// `after` counts bytes in the faulted direction; direction `true` means
/// server→client (the common case — replies are bigger targets), `false`
/// client→server.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Fault {
    None,
    /// Forward `after` bytes, then sever both directions.
    Truncate {
        after: usize,
        downstream: bool,
    },
    /// Flip every bit of the byte at offset `at`, then keep forwarding.
    Garble {
        at: usize,
        downstream: bool,
    },
    /// Forward `after` bytes, sleep the configured stall, then sever.
    Stall {
        after: usize,
        downstream: bool,
    },
}

/// A loopback TCP proxy that forwards to `upstream` while injecting one
/// seeded fault per connection. Drop it (or call
/// [`ChaosProxy::shutdown`]) to stop listening and sever every live
/// connection.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    faults: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port in front of
    /// `upstream`.
    pub fn spawn(upstream: SocketAddr, config: ProxyConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let faults = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let faults = Arc::clone(&faults);
            std::thread::spawn(move || accept_loop(&listener, upstream, config, &stop, &faults))
        };
        Ok(ChaosProxy {
            addr,
            stop,
            faults,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's own listening address — what the client dials.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many faults the proxy has injected so far (a run with zero is
    /// not testing anything).
    pub fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::SeqCst)
    }

    /// Stops the proxy. Dropping it does the same.
    pub fn shutdown(self) {}
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Draws connection `index`'s fault plan from its seeded RNG.
fn draw_fault(config: &ProxyConfig, index: u64) -> Fault {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(index));
    if !rng.gen_bool(config.fault_rate) {
        return Fault::None;
    }
    // Offsets land in the first couple of hundred bytes: early enough to
    // hit the probe/envelope machinery, late enough that framing usually
    // got negotiated (both regions are worth breaking).
    let at = rng.gen_range(1..256);
    let downstream = rng.gen_bool(0.7);
    match rng.gen_range(0..3) {
        0 => Fault::Truncate {
            after: at,
            downstream,
        },
        1 => Fault::Garble { at, downstream },
        _ => Fault::Stall {
            after: at,
            downstream,
        },
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    config: ProxyConfig,
    stop: &Arc<AtomicBool>,
    faults: &Arc<AtomicU64>,
) {
    let mut index = 0u64;
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let fault = draw_fault(&config, index);
                index += 1;
                if fault != Fault::None {
                    faults.fetch_add(1, Ordering::SeqCst);
                }
                let Ok(server) = TcpStream::connect(upstream) else {
                    continue; // upstream gone; the client sees a close
                };
                pumps.extend(pump_pair(client, server, fault, config.stall, stop));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for handle in pumps {
        let _ = handle.join();
    }
}

/// Spawns the two forwarding threads for one proxied connection. Each
/// owns one direction; severing shuts down both underlying streams, so
/// its twin exits on the next read.
fn pump_pair(
    client: TcpStream,
    server: TcpStream,
    fault: Fault,
    stall: Duration,
    stop: &Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    let client = Arc::new(client);
    let server = Arc::new(server);
    let up_fault = match fault {
        Fault::Truncate {
            downstream: false, ..
        }
        | Fault::Garble {
            downstream: false, ..
        }
        | Fault::Stall {
            downstream: false, ..
        } => fault,
        _ => Fault::None,
    };
    let down_fault = match fault {
        Fault::Truncate {
            downstream: true, ..
        }
        | Fault::Garble {
            downstream: true, ..
        }
        | Fault::Stall {
            downstream: true, ..
        } => fault,
        _ => Fault::None,
    };
    let up = {
        let (from, to) = (Arc::clone(&client), Arc::clone(&server));
        let stop = Arc::clone(stop);
        std::thread::spawn(move || pump(&from, &to, up_fault, stall, &stop))
    };
    let down = {
        let (from, to) = (Arc::clone(&server), Arc::clone(&client));
        let stop = Arc::clone(stop);
        std::thread::spawn(move || pump(&from, &to, down_fault, stall, &stop))
    };
    vec![up, down]
}

/// Forwards `from` → `to`, applying `fault` at its byte offset. Returns
/// when either side closes, the fault severs the stream, or the proxy
/// stops.
fn pump(from: &TcpStream, to: &TcpStream, fault: Fault, stall: Duration, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(20)));
    // `&TcpStream` implements Read/Write, so both pumps can share the
    // streams and either can sever both directions.
    let (mut reader, mut writer) = (from, to);
    let sever = || {
        let _ = from.shutdown(std::net::Shutdown::Both);
        let _ = to.shutdown(std::net::Shutdown::Both);
    };
    let mut forwarded = 0usize;
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            sever();
            return;
        }
        let n = match reader.read(&mut buf) {
            Ok(0) => {
                sever();
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                sever();
                return;
            }
        };
        let mut chunk = buf[..n].to_vec();
        match fault {
            Fault::Truncate { after, .. } if forwarded + n >= after => {
                chunk.truncate(after.saturating_sub(forwarded));
                let _ = writer.write_all(&chunk);
                sever();
                return;
            }
            Fault::Stall { after, .. } if forwarded + n >= after => {
                chunk.truncate(after.saturating_sub(forwarded));
                let _ = writer.write_all(&chunk);
                std::thread::sleep(stall);
                sever();
                return;
            }
            Fault::Garble { at, .. } if at >= forwarded && at < forwarded + n => {
                chunk[at - forwarded] ^= 0xFF;
            }
            _ => {}
        }
        forwarded += n;
        if writer.write_all(&chunk).is_err() {
            sever();
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_are_deterministic() {
        let config = ProxyConfig::default();
        for i in 0..32 {
            assert_eq!(draw_fault(&config, i), draw_fault(&config, i));
        }
        // And the rate is honored at the extremes.
        let never = ProxyConfig {
            fault_rate: 0.0,
            ..config
        };
        assert!((0..32).all(|i| draw_fault(&never, i) == Fault::None));
        let always = ProxyConfig {
            fault_rate: 1.0,
            ..config
        };
        assert!((0..32).all(|i| draw_fault(&always, i) != Fault::None));
    }

    #[test]
    fn chaos_transport_is_deterministic() {
        struct Echo;
        impl Transport for Echo {
            fn send(&self, _request: &str) -> String {
                r#"{"v":1,"result":{"type":"unit"}}"#.into()
            }
        }
        let schedule = ChaosSchedule {
            seed: 42,
            ..ChaosSchedule::default()
        };
        let run = || {
            let t = ChaosTransport::new(Echo, schedule);
            let replies: Vec<String> = (0..64).map(|_| t.send("{}")).collect();
            (replies, t.fault_counts())
        };
        let (a, counts_a) = run();
        let (b, counts_b) = run();
        assert_eq!(a, b);
        assert_eq!(counts_a, counts_b);
        let (lost_req, lost_resp, busy) = counts_a;
        assert!(lost_req + lost_resp + busy > 0, "schedule injected nothing");
    }
}
