//! Roles and permission checks.
//!
//! The browser extension's behavior splits on project membership (paper
//! §3): non-members may *generate* citations but "will not be allowed to
//! use the Add/Delete button functionalities"; members may modify the
//! citation file. The hub enforces exactly that split server-side.

/// A user's role on one repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Role {
    /// May read and generate citations (also the implicit role of any
    /// authenticated user on a public repository).
    Reader,
    /// Project member: may modify files and citations, push, and merge.
    Member,
    /// Owner: member rights plus membership management and deletion.
    Owner,
}

/// Operations the permission system distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Read files, history, citations; generate citations.
    Read,
    /// Add/modify/delete citations; push; merge.
    Write,
    /// Manage members, delete the repository.
    Admin,
}

impl Role {
    /// Whether this role permits `action`.
    pub fn allows(self, action: Action) -> bool {
        match action {
            Action::Read => true,
            Action::Write => self >= Role::Member,
            Action::Admin => self >= Role::Owner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_ordering_and_rights() {
        assert!(Role::Owner > Role::Member);
        assert!(Role::Member > Role::Reader);
        assert!(Role::Reader.allows(Action::Read));
        assert!(!Role::Reader.allows(Action::Write));
        assert!(!Role::Reader.allows(Action::Admin));
        assert!(Role::Member.allows(Action::Write));
        assert!(!Role::Member.allows(Action::Admin));
        assert!(Role::Owner.allows(Action::Admin));
        assert!(Role::Owner.allows(Action::Write));
        assert!(Role::Owner.allows(Action::Read));
    }
}
