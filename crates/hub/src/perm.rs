//! Roles and permission checks.
//!
//! The browser extension's behavior splits on project membership (paper
//! §3): non-members may *generate* citations but "will not be allowed to
//! use the Add/Delete button functionalities"; members may modify the
//! citation file. The hub enforces exactly that split server-side.
//!
//! # The untrusted-deployment model
//!
//! Roles answer *what may this user do*; the rest of the hub's
//! survivability story — who is this user, how fast may they ask, how
//! much may they store — lives in [`crate::server`] and composes with
//! the roles below in layers:
//!
//! * **Credentials.** An account registered with a secret stores only a
//!   per-user salt and a `SHA-256(salt ‖ secret)` hash (the vendored
//!   [`sha2`]); the secret itself never lands. Login recomputes the
//!   hash and compares in constant time ([`sha2::ct_eq`]), so a
//!   timing side channel cannot bisect the secret byte by byte.
//!   [`crate::Hub::set_auth_required`] makes credentials mandatory for
//!   every registration and login — the mode `gitcite hub serve`
//!   demands before it will bind a non-loopback address.
//! * **Lockout.** [`crate::MAX_LOGIN_FAILURES`] failed logins within a
//!   decay window ([`crate::FAILURE_DECAY_TICKS`] of the deterministic
//!   hub clock) lock the account for [`crate::LOCKOUT_TICKS`]. While
//!   locked, even the correct secret is refused with a typed
//!   `rate_limited` error carrying a retry-after hint — a brute-forcer
//!   gets no oracle during the window. A successful login clears the
//!   streak.
//! * **Token lifetime.** Tokens minted by login can expire
//!   ([`crate::Hub::set_token_ttl`]); an expired token fails with the
//!   typed `token_expired` (distinct from `auth_failed`, so clients
//!   know to `refresh` rather than re-prompt). Refresh is
//!   remove-then-mint: the predecessor token is revoked even if it had
//!   life left, so a leaked one dies with the exchange. Over TCP,
//!   tokens are additionally scoped to the connection that minted them
//!   (see [`crate::transport`]).
//! * **Rate limits and quotas.** [`crate::Hub::set_limits`] arms
//!   per-user and per-repository token buckets (typed `rate_limited`
//!   denials with a retry-after hint) plus size quotas on push/import
//!   bundles and on a repository's accumulated accepted bytes (typed
//!   `quota_exceeded`, checked before any object lands). All denials
//!   are audited and tallied on wire-queryable counters
//!   (`limits.*` in `server_metrics`).
//! * **Follower refusal.** A replica hub ([`crate::repl`]) sits in
//!   front of all of the above: it refuses every write — and every read
//!   it cannot answer faithfully, including the role queries this
//!   module backs (`role_of`, `can_write`), since roles are not
//!   replicated — with the typed `not_primary` error carrying the
//!   primary's address. Authorization for writes is therefore always
//!   evaluated on the repository's home hub, never against a replica's
//!   (empty) role table.
//!
//! Authorization (this module) is evaluated only after those layers
//! admit the request — a locked-out owner is still locked out.

/// A user's role on one repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Role {
    /// May read and generate citations (also the implicit role of any
    /// authenticated user on a public repository).
    Reader,
    /// Project member: may modify files and citations, push, and merge.
    Member,
    /// Owner: member rights plus membership management and deletion.
    Owner,
}

/// Operations the permission system distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Read files, history, citations; generate citations.
    Read,
    /// Add/modify/delete citations; push; merge.
    Write,
    /// Manage members, delete the repository.
    Admin,
}

impl Role {
    /// Whether this role permits `action`.
    pub fn allows(self, action: Action) -> bool {
        match action {
            Action::Read => true,
            Action::Write => self >= Role::Member,
            Action::Admin => self >= Role::Owner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_ordering_and_rights() {
        assert!(Role::Owner > Role::Member);
        assert!(Role::Member > Role::Reader);
        assert!(Role::Reader.allows(Action::Read));
        assert!(!Role::Reader.allows(Action::Write));
        assert!(!Role::Reader.allows(Action::Admin));
        assert!(Role::Member.allows(Action::Write));
        assert!(!Role::Member.allows(Action::Admin));
        assert!(Role::Owner.allows(Action::Admin));
        assert!(Role::Owner.allows(Action::Write));
        assert!(Role::Owner.allows(Action::Read));
    }
}
