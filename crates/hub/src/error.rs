//! Error type for the hosting platform.

use std::fmt;

/// Anything a hub API call can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum HubError {
    /// Token missing, unknown or revoked.
    AuthFailed,
    /// The authenticated user may not perform this operation — the check
    /// behind Figure 2's disabled Add/Delete buttons for non-members.
    PermissionDenied(String),
    /// Unknown user.
    UserNotFound(String),
    /// Username already registered.
    UserExists(String),
    /// Unknown repository (`owner/name`).
    RepoNotFound(String),
    /// Repository already exists under that owner.
    RepoExists(String),
    /// Unknown DOI.
    DoiNotFound(String),
    /// Unknown Software Heritage identifier.
    SwhidNotFound(String),
    /// Malformed request (bad branch, bad path, ...).
    BadRequest(String),
    /// The presented token was once valid but its lifetime (in hub-clock
    /// ticks) has elapsed. Distinct from [`HubError::AuthFailed`] so a
    /// client holding the token can call `refresh` instead of re-entering
    /// credentials.
    TokenExpired,
    /// The caller (or the repo it targets) exceeded a token-bucket rate
    /// limit, or a locked-out user retried a failed login too soon.
    /// `retry_after` is the hint in hub-clock ticks until the next attempt
    /// can succeed.
    RateLimited {
        /// Hub-clock ticks until a retry can succeed.
        retry_after: i64,
    },
    /// A size quota refused the operation before any object landed: the
    /// bundle was too large, or the repository's accumulated object bytes
    /// would exceed its cap. The message says which.
    QuotaExceeded(String),
    /// The server shed this connection under overload instead of queueing
    /// it. `retry_after` is the suggested backoff in seconds; idempotent
    /// reads may be retried, writes must be resubmitted deliberately.
    ServerBusy {
        /// Suggested backoff in seconds before reconnecting.
        retry_after: i64,
    },
    /// The receiving hub is a replication follower (or knows the
    /// repository's home is elsewhere): writes — and reads a follower
    /// cannot answer faithfully or within its staleness bound — must go
    /// to the primary at the carried address. Fleet-aware clients
    /// ([`crate::client::FleetTransport`]) retry against it
    /// transparently. See [`crate::repl`].
    NotPrimary {
        /// Wire address (`host:port`) of the primary hub.
        primary: String,
    },
    /// The wire protocol itself failed: unknown version, unknown method,
    /// malformed params, or a response of an unexpected shape (see
    /// [`crate::api`]).
    Protocol(String),
    /// The transport to the hub dropped mid-request — the connection
    /// closed (or reset) between sending a request and reading its
    /// response. Distinct from [`HubError::Protocol`] so callers can
    /// report "hub went away" rather than "malformed envelope"; only ever
    /// synthesized client-side, never sent by a server.
    TransportClosed(String),
    /// Underlying VCS failure.
    Git(gitlite::GitError),
    /// Underlying citation-layer failure.
    Cite(citekit::CiteError),
}

impl fmt::Display for HubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HubError::AuthFailed => write!(f, "authentication failed"),
            HubError::PermissionDenied(msg) => write!(f, "permission denied: {msg}"),
            HubError::UserNotFound(u) => write!(f, "no such user: {u}"),
            HubError::UserExists(u) => write!(f, "user already exists: {u}"),
            HubError::RepoNotFound(r) => write!(f, "no such repository: {r}"),
            HubError::RepoExists(r) => write!(f, "repository already exists: {r}"),
            HubError::DoiNotFound(d) => write!(f, "no such DOI: {d}"),
            HubError::SwhidNotFound(s) => write!(f, "no such SWHID: {s}"),
            HubError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HubError::TokenExpired => write!(f, "token expired; refresh or log in again"),
            HubError::RateLimited { retry_after } => {
                write!(f, "rate limited; retry after {retry_after} ticks")
            }
            HubError::QuotaExceeded(msg) => write!(f, "quota exceeded: {msg}"),
            HubError::ServerBusy { retry_after } => {
                write!(f, "server busy; retry after {retry_after}s")
            }
            HubError::NotPrimary { primary } => {
                write!(f, "not the primary hub; writes go to {primary}")
            }
            HubError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            HubError::TransportClosed(msg) => write!(f, "hub connection closed: {msg}"),
            HubError::Git(e) => write!(f, "{e}"),
            HubError::Cite(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HubError {}

impl From<gitlite::GitError> for HubError {
    fn from(e: gitlite::GitError) -> Self {
        HubError::Git(e)
    }
}

impl From<citekit::CiteError> for HubError {
    fn from(e: citekit::CiteError) -> Self {
        HubError::Cite(e)
    }
}

/// Result alias for hub operations.
pub type Result<T> = std::result::Result<T, HubError>;
