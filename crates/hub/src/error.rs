//! Error type for the hosting platform.

use std::fmt;

/// Anything a hub API call can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum HubError {
    /// Token missing, unknown or revoked.
    AuthFailed,
    /// The authenticated user may not perform this operation — the check
    /// behind Figure 2's disabled Add/Delete buttons for non-members.
    PermissionDenied(String),
    /// Unknown user.
    UserNotFound(String),
    /// Username already registered.
    UserExists(String),
    /// Unknown repository (`owner/name`).
    RepoNotFound(String),
    /// Repository already exists under that owner.
    RepoExists(String),
    /// Unknown DOI.
    DoiNotFound(String),
    /// Unknown Software Heritage identifier.
    SwhidNotFound(String),
    /// Malformed request (bad branch, bad path, ...).
    BadRequest(String),
    /// The wire protocol itself failed: unknown version, unknown method,
    /// malformed params, or a response of an unexpected shape (see
    /// [`crate::api`]).
    Protocol(String),
    /// The transport to the hub dropped mid-request — the connection
    /// closed (or reset) between sending a request and reading its
    /// response. Distinct from [`HubError::Protocol`] so callers can
    /// report "hub went away" rather than "malformed envelope"; only ever
    /// synthesized client-side, never sent by a server.
    TransportClosed(String),
    /// Underlying VCS failure.
    Git(gitlite::GitError),
    /// Underlying citation-layer failure.
    Cite(citekit::CiteError),
}

impl fmt::Display for HubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HubError::AuthFailed => write!(f, "authentication failed"),
            HubError::PermissionDenied(msg) => write!(f, "permission denied: {msg}"),
            HubError::UserNotFound(u) => write!(f, "no such user: {u}"),
            HubError::UserExists(u) => write!(f, "user already exists: {u}"),
            HubError::RepoNotFound(r) => write!(f, "no such repository: {r}"),
            HubError::RepoExists(r) => write!(f, "repository already exists: {r}"),
            HubError::DoiNotFound(d) => write!(f, "no such DOI: {d}"),
            HubError::SwhidNotFound(s) => write!(f, "no such SWHID: {s}"),
            HubError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HubError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            HubError::TransportClosed(msg) => write!(f, "hub connection closed: {msg}"),
            HubError::Git(e) => write!(f, "{e}"),
            HubError::Cite(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HubError {}

impl From<gitlite::GitError> for HubError {
    fn from(e: gitlite::GitError) -> Self {
        HubError::Git(e)
    }
}

impl From<citekit::CiteError> for HubError {
    fn from(e: citekit::CiteError) -> Self {
        HubError::Cite(e)
    }
}

/// Result alias for hub operations.
pub type Result<T> = std::result::Result<T, HubError>;
