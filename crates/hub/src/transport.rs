//! Event-driven TCP transport for the hub wire protocol: the piece that
//! turns the in-process platform into an out-of-process service the
//! extension and the CLI can dial — and that holds ten thousand idle
//! connections without ten thousand threads.
//!
//! # Architecture
//!
//! One **reactor thread** owns a readiness poller (the vendored [`mio`]
//! stand-in: epoll on Linux, `poll(2)` elsewhere) plus every connection's
//! buffers, and never blocks on a socket: accepts, reads, frame parsing
//! and writes all happen on readiness. Parsed requests are handed to a
//! small **worker pool** over a channel; workers run [`Hub::dispatch`]
//! (the hub itself is sharded and thread-safe) and push the encoded
//! reply to a completion queue, waking the reactor to write it out.
//! Requests on one connection are served strictly in order — at most one
//! in flight per connection, the rest queued — while different
//! connections proceed in parallel across the pool.
//!
//! # Framing: lines (v1/v2) and binary (v3) on one port
//!
//! The first byte of a connection picks its framing, once, for the whole
//! connection:
//!
//! * `{` (or leading whitespace) — **line framing**: one compact sjson
//!   envelope per `\n`-terminated line, exactly as protocol v1/v2 always
//!   worked. Blank lines are ignored; an unparseable line gets a
//!   `protocol` error response and the connection stays up.
//! * `0x01..=0x06` — **binary framing** (protocol v3): length-prefixed
//!   frames `kind:u8 len:u32be payload`, see [`frame`]. The envelope
//!   stays sjson, but bundle object payloads travel beside it as raw,
//!   deflate-compressed bytes instead of hex-in-sjson — roughly halving
//!   the wire bytes of a push or clone — and a large bundle streams
//!   through bounded chunks rather than one giant line.
//!
//! Anything else is answered with a `protocol` error and a close. A v1
//! client, a v2 client and a v3 client can interleave on one listener;
//! line-framed envelopes are answered byte-identically to the original
//! thread-per-connection server.
//!
//! # Hardening
//!
//! Both framings enforce [`ServerConfig`] limits: a maximum frame (or
//! line) length, a maximum decompressed message size, a read timeout for
//! connections that stall mid-request (idle connections between requests
//! are fine and cost one registered fd each), and a write timeout for
//! peers that stop draining their replies. Limit and timeout violations
//! get a typed `protocol` error where a reply is still possible, then a
//! clean close.
//!
//! # Telemetry
//!
//! The socket layer registers its instruments in the hub's shared
//! [`telemetry`] registry at bind time ([`NetMetrics`]): open-connection
//! / queue-depth / busy-worker gauges, per-framing byte counters, frames
//! rejected by the caps, abrupt closes (the server-side tally of the
//! `transport_closed` errors clients observe), and raw-versus-deflate
//! byte counts for the v3 object side channel. The whole picture —
//! together with the hub's per-method latency histograms — is queryable
//! over the wire through the operator-scoped v3 `server_metrics` method,
//! which is what `gitcite hub top` renders.
//!
//! # Auth-token scoping
//!
//! Tokens are scoped to the connection that minted them:
//!
//! * a successful `login` records the issued token against *this*
//!   connection;
//! * any request carrying a token this connection did not mint is
//!   refused with `auth_failed` **before** dispatch — a token lifted
//!   from one session is useless on any other;
//! * when the connection closes, every token it minted is revoked on
//!   the hub, so no credential outlives its session.
//!
//! Anonymous methods (reads, `register_user`, `login` itself) carry no
//! token and pass through unscoped, exactly as over the in-process
//! transport — with two exceptions: the operator/test seams
//! `advance_clock` and `maintenance` are refused outright on the
//! socket, because "anonymous" on a network port means anyone who can
//! reach it. `server_metrics` *is* served over the socket, but only to
//! a connection whose own minted token belongs to a user holding the
//! operator capability ([`Hub::is_operator_token`]). A v3 `batch`
//! envelope applies the same checks to each item individually.
//!
//! A v3 `refresh` is treated like `login`: it may only exchange a token
//! *this* connection minted, and the replacement token is re-scoped to
//! the connection (the old one leaves the minted set with it).
//!
//! # Replication traffic
//!
//! A follower hub ([`crate::repl`]) pulls from its primary over this
//! same transport: `repl_status`, `repl_fetch` and the paginated audit
//! reads are anonymous read methods, so a replica needs no credential
//! on the primary — and the v3 binary framing moves replication
//! bundles' objects as compressed raw bytes exactly like clones. The
//! operator seams above stay refused on a *follower's* socket too:
//! follower mode changes what `dispatch` will serve, never what the
//! socket lets through.
//!
//! **Deployment note:** by default the hub's `login` takes a username
//! with no secret — fine on loopback, reckless on a network. For an
//! untrusted port, register users with secrets and turn on
//! [`Hub::set_auth_required`]; `gitcite hub serve` refuses a
//! non-loopback bind without `--require-secrets true` (or an explicit
//! `--allow-insecure true`). Token scoping then limits the blast radius
//! of a *leaked* token, and the credential layer (lockout, expiry —
//! see [`crate::perm`]) limits everything else.
//!
//! # Overload shedding
//!
//! [`ServerConfig::max_open_conns`] and
//! [`ServerConfig::max_conns_per_ip`] bound what accept will take on.
//! A connection over either cap is not dropped on the floor — that
//! reads as a network fault — but marked **shed**: its version probe is
//! still answered (so the client learns the framing cheaply), its first
//! real request is answered with a typed `server_busy` error carrying a
//! retry-after hint, and the connection closes after the reply flushes.
//! Nothing a shed connection sends reaches [`Hub::dispatch`]. Sheds are
//! counted on the `conns.shed` counter, surfaced as `limits.conns_shed`
//! in `server_metrics`.
//!
//! # Client side
//!
//! [`TcpTransport`] probes the server once per connection (a `PING`
//! frame a line server reads as a garbage line) and speaks binary
//! framing when the server answers `PONG`, falling back to line framing
//! against older servers on the same connection. A connection that drops
//! mid-request surfaces as [`HubError::TransportClosed`] ("hub went
//! away"), distinct from a malformed-envelope `protocol` error.
//! [`HubClient::connect`] wires a client to a served address.

use crate::api::{ApiRequest, ApiResponse, ErrorCode, WireError, PROTOCOL_VERSION};
use crate::client::{HubClient, Transport};
use crate::error::HubError;
use crate::server::{Hub, Token};
use gitlite::ObjectId;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub mod frame {
    //! The v3 binary frame codec, shared by server, client, tests and
    //! the load bench.
    //!
    //! A frame is `kind: u8, len: u32 BE, payload: len bytes`. A
    //! *message* (one request or one response) is either a single
    //! [`ENV`] frame carrying a complete sjson envelope, or an
    //! [`ENV_OBJ`] frame (an envelope saying `"objects_ext": n`)
    //! followed by any number of [`OBJ`] frames and one [`END`]. Each
    //! `OBJ` payload is a deflate-compressed block of object records —
    //! `id: 20 bytes, len: u32 BE, bytes` — chunked so a multi-megabyte
    //! bundle streams through bounded buffers; records never split
    //! across blocks. [`PING`]/[`PONG`] probe liveness and protocol
    //! version out of band; stray `\n` bytes between frames are skipped
    //! (the client's [`PROBE`] ends in one so line servers answer it as
    //! a garbage line).

    use gitlite::ObjectId;
    use std::io::{self, Read};

    /// A decoded message: the envelope text plus its side-channel object
    /// records (empty for [`ENV`] messages).
    pub type Message = (String, Vec<(ObjectId, Vec<u8>)>);

    /// A complete message: one sjson envelope, nothing external.
    pub const ENV: u8 = 0x01;
    /// An envelope whose `objects_ext` payloads follow as [`OBJ`] frames.
    pub const ENV_OBJ: u8 = 0x02;
    /// One compressed block of `(id, len, bytes)` object records.
    pub const OBJ: u8 = 0x03;
    /// Terminates an [`ENV_OBJ`] message.
    pub const END: u8 = 0x04;
    /// Version/liveness probe; answered with [`PONG`].
    pub const PING: u8 = 0x05;
    /// Probe reply; payload is the server's protocol version as u32 BE.
    pub const PONG: u8 = 0x06;

    /// What a client writes first: a [`PING`] frame plus a newline. A
    /// binary server answers [`PONG`]; a line server reads one garbage
    /// line and answers a `protocol` error envelope — either way the
    /// client learns what it is talking to on the same connection.
    pub const PROBE: [u8; 6] = [PING, 0, 0, 0, 0, b'\n'];

    /// Raw object bytes per [`OBJ`] block before compression.
    const CHUNK: usize = 128 * 1024;
    const RECORD_HEADER: usize = 20 + 4;

    /// Appends one frame to `out`.
    pub fn write_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
        out.push(kind);
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(payload);
    }

    /// A [`PONG`] frame carrying `version`.
    pub fn pong(version: i64) -> Vec<u8> {
        let mut out = Vec::with_capacity(9);
        write_frame(&mut out, PONG, &(version as u32).to_be_bytes());
        out
    }

    /// Encodes one complete message: the envelope, plus its side-channel
    /// objects chunked into compressed [`OBJ`] blocks.
    pub fn encode_message(envelope: &str, objects: &[(ObjectId, Vec<u8>)]) -> Vec<u8> {
        let mut out = Vec::with_capacity(envelope.len() + 64);
        if objects.is_empty() {
            write_frame(&mut out, ENV, envelope.as_bytes());
            return out;
        }
        write_frame(&mut out, ENV_OBJ, envelope.as_bytes());
        let mut block = Vec::new();
        for (id, bytes) in objects {
            if !block.is_empty() && block.len() + RECORD_HEADER + bytes.len() > CHUNK {
                flush_block(&mut out, &block);
                block.clear();
            }
            block.extend_from_slice(&id.0);
            block.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            block.extend_from_slice(bytes);
        }
        if !block.is_empty() {
            flush_block(&mut out, &block);
        }
        write_frame(&mut out, END, &[]);
        out
    }

    fn flush_block(out: &mut Vec<u8>, block: &[u8]) {
        let packed = miniz_oxide::deflate::compress_to_vec(block, 6);
        write_frame(out, OBJ, &packed);
    }

    /// Parses the records of one decompressed [`OBJ`] block into `into`.
    pub(crate) fn parse_records(
        raw: &[u8],
        into: &mut Vec<(ObjectId, Vec<u8>)>,
    ) -> Result<(), String> {
        let mut pos = 0;
        while pos < raw.len() {
            if raw.len() - pos < RECORD_HEADER {
                return Err("truncated object record header".into());
            }
            let mut id = [0u8; 20];
            id.copy_from_slice(&raw[pos..pos + 20]);
            let len =
                u32::from_be_bytes(raw[pos + 20..pos + 24].try_into().expect("4 bytes")) as usize;
            pos += RECORD_HEADER;
            if raw.len() - pos < len {
                return Err("truncated object record payload".into());
            }
            into.push((ObjectId(id), raw[pos..pos + len].to_vec()));
            pos += len;
        }
        Ok(())
    }

    /// Largest payload length a reader believes. A corrupted length
    /// prefix (one flipped bit can turn 2 KiB into 4 GiB) must surface
    /// as a typed error, not an unbounded allocation or a read that
    /// waits forever for bytes the peer never sent. Matches the
    /// server's default `max_frame_len`.
    pub const MAX_FRAME_LEN: usize = 64 << 20;

    /// Blocking read of one frame, skipping stray `\n` bytes before the
    /// header.
    pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
        let mut header = [0u8; 5];
        loop {
            r.read_exact(&mut header[..1])?;
            if header[0] != b'\n' {
                break;
            }
        }
        r.read_exact(&mut header[1..])?;
        let len = u32::from_be_bytes(header[1..5].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame declares {len} bytes (cap {MAX_FRAME_LEN}); length prefix presumed corrupt"),
            ));
        }
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)?;
        Ok((header[0], payload))
    }

    /// Blocking read of one complete message, skipping [`PONG`] frames.
    /// Returns the envelope text and the side-channel objects (empty for
    /// [`ENV`] messages).
    pub fn read_message(r: &mut impl Read) -> io::Result<Message> {
        let bad = |m: String| io::Error::new(io::ErrorKind::InvalidData, m);
        let utf8 = |payload: Vec<u8>| {
            String::from_utf8(payload)
                .map_err(|_| bad("envelope payload is not valid UTF-8".into()))
        };
        loop {
            let (kind, payload) = read_frame(r)?;
            match kind {
                PONG => continue,
                ENV => return Ok((utf8(payload)?, Vec::new())),
                ENV_OBJ => {
                    let envelope = utf8(payload)?;
                    let mut objects = Vec::new();
                    loop {
                        let (kind, payload) = read_frame(r)?;
                        match kind {
                            OBJ => {
                                let raw = miniz_oxide::inflate::decompress_to_vec(&payload)
                                    .map_err(|e| bad(e.to_string()))?;
                                parse_records(&raw, &mut objects).map_err(bad)?;
                            }
                            END => return Ok((envelope, objects)),
                            PONG => continue,
                            other => {
                                return Err(bad(format!(
                                    "frame 0x{other:02x} inside an object stream"
                                )))
                            }
                        }
                    }
                }
                other => return Err(bad(format!("unexpected frame 0x{other:02x}"))),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// Limits and sizing for a [`SocketServer`]. The defaults suit tests and
/// trusted deployments; shrink them for hostile networks.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Dispatch worker threads (the reactor itself is one more thread).
    pub workers: usize,
    /// Longest accepted frame payload — and, in line framing, the
    /// longest accepted request line.
    pub max_frame_len: usize,
    /// Cap on one message's total decompressed side-channel bytes.
    pub max_message_len: usize,
    /// How long a connection may sit on a *partial* request before it is
    /// timed out (idle connections between requests are unaffected).
    pub read_timeout: Duration,
    /// How long a peer may refuse to drain pending replies.
    pub write_timeout: Duration,
    /// Open connections beyond this are shed: answered `server_busy`
    /// and closed instead of served (see the module docs).
    pub max_open_conns: usize,
    /// Per-peer-IP cap on open connections; the excess is shed.
    pub max_conns_per_ip: usize,
    /// The retry-after hint (seconds) a shed connection is sent.
    pub shed_retry_after_secs: i64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        ServerConfig {
            workers,
            max_frame_len: 64 << 20,
            max_message_len: 256 << 20,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_open_conns: usize::MAX,
            max_conns_per_ip: usize::MAX,
            shed_retry_after_secs: 1,
        }
    }
}

/// A hub served over TCP by the reactor/worker engine described in the
/// module docs. Dropping (or [`SocketServer::shutdown`]) stops the
/// reactor, closes every connection and revokes its session tokens.
pub struct SocketServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Arc<mio::Waker>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl SocketServer {
    /// Binds `addr` (use port 0 to let the OS pick) with default limits.
    pub fn bind(hub: Arc<Hub>, addr: impl ToSocketAddrs) -> io::Result<SocketServer> {
        Self::bind_with(hub, addr, ServerConfig::default())
    }

    /// Binds `addr` and starts serving `hub` under explicit limits.
    pub fn bind_with(
        hub: Arc<Hub>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<SocketServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poll = mio::Poll::new()?;
        poll.registry()
            .register(&listener, LISTENER, mio::Interest::READABLE)?;
        let waker = Arc::new(mio::Waker::new(poll.registry(), WAKER_TOKEN)?);
        let stop = Arc::new(AtomicBool::new(false));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let metrics = Arc::new(NetMetrics::new(&hub.metrics()));
        let (jobs, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let hub = Arc::clone(&hub);
                let rx = Arc::clone(&job_rx);
                let completions = Arc::clone(&completions);
                let waker = Arc::clone(&waker);
                let metrics = Arc::clone(&metrics);
                std::thread::spawn(move || worker_loop(&hub, &rx, &completions, &waker, &metrics))
            })
            .collect();
        let reactor = Reactor {
            hub,
            config,
            metrics,
            poll,
            listener,
            conns: HashMap::new(),
            ip_counts: HashMap::new(),
            next_id: FIRST_CONN,
            jobs,
            completions,
            waker: Arc::clone(&waker),
            stop: Arc::clone(&stop),
        };
        let handle = std::thread::spawn(move || reactor.run());
        Ok(SocketServer {
            addr,
            stop,
            waker,
            reactor: Some(handle),
            workers,
        })
    }

    /// The address the server actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the reactor, closes every connection (revoking its tokens)
    /// and joins the worker pool. Dropping the server does the same.
    pub fn shutdown(self) {}

    /// Blocks the calling thread for the server's lifetime — what
    /// `gitcite hub serve` does after printing the address.
    pub fn join(mut self) {
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        // The reactor exiting dropped the job sender; workers drain and
        // stop on the closed channel.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

const LISTENER: mio::Token = mio::Token(0);
const WAKER_TOKEN: mio::Token = mio::Token(1);
const FIRST_CONN: usize = 2;
/// Poll tick: upper bound on stop-flag and deadline-sweep latency.
const TICK: Duration = Duration::from_millis(200);

#[derive(Clone, Copy, PartialEq)]
enum Framing {
    /// No bytes seen yet; the first byte decides.
    Unknown,
    Lines,
    Binary,
}

/// One parsed request, ready for a worker.
enum Item {
    Line(String),
    Binary {
        envelope: String,
        objects: Vec<(ObjectId, Vec<u8>)>,
    },
}

/// An open `ENV_OBJ .. END` sequence mid-stream.
struct Partial {
    envelope: String,
    objects: Vec<(ObjectId, Vec<u8>)>,
    /// Decompressed bytes consumed so far, checked against
    /// [`ServerConfig::max_message_len`].
    raw_bytes: usize,
}

struct Job {
    conn: usize,
    item: Item,
    minted: Arc<Mutex<HashSet<String>>>,
}

type Completion = (usize, Vec<u8>);

struct Conn {
    stream: TcpStream,
    framing: Framing,
    inbuf: Vec<u8>,
    partial: Option<Partial>,
    /// Requests parsed but not yet dispatched (strict per-connection
    /// ordering: at most one in flight).
    pending: VecDeque<Item>,
    busy: bool,
    outq: VecDeque<Vec<u8>>,
    out_off: usize,
    minted: Arc<Mutex<HashSet<String>>>,
    read_deadline: Option<Instant>,
    write_deadline: Option<Instant>,
    /// Flush `outq`, then close (set after a fatal framing violation).
    closing: bool,
    /// Accepted over a connection cap: serve `server_busy` to the first
    /// request, never dispatch (see the module docs on shedding).
    shed: bool,
    /// Peer address, for the per-IP connection tally.
    peer_ip: Option<std::net::IpAddr>,
    reg_read: bool,
    reg_write: bool,
}

impl Conn {
    fn new(stream: TcpStream, peer_ip: Option<std::net::IpAddr>) -> Conn {
        Conn {
            stream,
            framing: Framing::Unknown,
            inbuf: Vec::new(),
            partial: None,
            pending: VecDeque::new(),
            busy: false,
            outq: VecDeque::new(),
            out_off: 0,
            minted: Arc::new(Mutex::new(HashSet::new())),
            read_deadline: None,
            write_deadline: None,
            closing: false,
            shed: false,
            peer_ip,
            reg_read: true,
            reg_write: false,
        }
    }
}

/// The socket layer's instrument handles, resolved once from the hub's
/// shared [`telemetry::Registry`] at bind time so the hot paths bump
/// atomics and never touch a name→instrument map. The hub keeps its
/// per-method stats outside this registry, so the registry is non-empty
/// exactly when a socket server is (or has been) attached — which is how
/// `server_metrics` decides whether to report a transport section.
struct NetMetrics {
    conns_open: Arc<telemetry::Gauge>,
    queue_depth: Arc<telemetry::Gauge>,
    workers_busy: Arc<telemetry::Gauge>,
    bytes_in_line: Arc<telemetry::Counter>,
    bytes_out_line: Arc<telemetry::Counter>,
    bytes_in_binary: Arc<telemetry::Counter>,
    bytes_out_binary: Arc<telemetry::Counter>,
    frames_rejected: Arc<telemetry::Counter>,
    transport_closed: Arc<telemetry::Counter>,
    conns_shed: Arc<telemetry::Counter>,
    obj_raw_bytes: Arc<telemetry::Counter>,
    obj_deflate_bytes: Arc<telemetry::Counter>,
}

impl NetMetrics {
    fn new(registry: &telemetry::Registry) -> NetMetrics {
        NetMetrics {
            conns_open: registry.gauge("conns.open"),
            queue_depth: registry.gauge("queue.depth"),
            workers_busy: registry.gauge("workers.busy"),
            bytes_in_line: registry.counter("bytes.in.line"),
            bytes_out_line: registry.counter("bytes.out.line"),
            bytes_in_binary: registry.counter("bytes.in.binary"),
            bytes_out_binary: registry.counter("bytes.out.binary"),
            frames_rejected: registry.counter("frames.rejected"),
            transport_closed: registry.counter("conns.transport_closed"),
            conns_shed: registry.counter("conns.shed"),
            obj_raw_bytes: registry.counter("obj.raw_bytes"),
            obj_deflate_bytes: registry.counter("obj.deflate_bytes"),
        }
    }
}

struct Reactor {
    hub: Arc<Hub>,
    config: ServerConfig,
    metrics: Arc<NetMetrics>,
    poll: mio::Poll,
    listener: TcpListener,
    conns: HashMap<usize, Conn>,
    /// Open connections per peer IP, maintained by accept/close.
    ip_counts: HashMap<std::net::IpAddr, usize>,
    next_id: usize,
    jobs: mpsc::Sender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    waker: Arc<mio::Waker>,
    stop: Arc<AtomicBool>,
}

impl Reactor {
    fn run(mut self) {
        let mut events = mio::Events::with_capacity(1024);
        loop {
            let _ = self.poll.poll(&mut events, Some(TICK));
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            for event in events.iter() {
                match event.token() {
                    LISTENER => self.accept_all(),
                    WAKER_TOKEN => self.waker.drain(),
                    mio::Token(id) => {
                        if event.is_readable() || event.is_error() || event.is_read_closed() {
                            self.conn_readable(id);
                        }
                        if event.is_writable() {
                            self.conn_writable(id);
                        }
                    }
                }
            }
            self.drain_completions();
            self.sweep_deadlines();
        }
        let ids: Vec<usize> = self.conns.keys().copied().collect();
        for id in ids {
            // Shutdown under a live peer: every remaining connection is
            // torn down abruptly from the client's point of view.
            self.close(id, true);
        }
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.next_id;
                    self.next_id += 1;
                    if self
                        .poll
                        .registry()
                        .register(&stream, mio::Token(id), mio::Interest::READABLE)
                        .is_err()
                    {
                        continue;
                    }
                    let ip = peer.ip();
                    let per_ip = self.ip_counts.entry(ip).or_insert(0);
                    // The cap decision is made here, once, at accept —
                    // cheaper than anything downstream, and a shed
                    // connection costs one fd and one short reply.
                    let shed = self.conns.len() >= self.config.max_open_conns
                        || *per_ip >= self.config.max_conns_per_ip;
                    *per_ip += 1;
                    let mut conn = Conn::new(stream, Some(ip));
                    if shed {
                        conn.shed = true;
                        self.metrics.conns_shed.inc();
                    }
                    self.conns.insert(id, conn);
                    self.metrics.conns_open.inc();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_readable(&mut self, id: usize) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.closing {
            return;
        }
        let mut eof = false;
        let mut buf = [0u8; 16 * 1024];
        loop {
            // Bound per-event buffering; the poll is level-triggered, so
            // leftover socket data re-reports on the next tick.
            if conn.inbuf.len() > self.config.max_frame_len.saturating_add(5) {
                break;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => conn.inbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    eof = true;
                    break;
                }
            }
        }
        let (items, fatal) = parse_input(conn, &self.config, &self.metrics);
        if conn.shed && !items.is_empty() {
            // Shed connection: its first real request gets one typed
            // server_busy refusal in its own framing, then the
            // connection closes. Nothing reaches the dispatch pool.
            conn.inbuf.clear();
            conn.partial = None;
            conn.read_deadline = None;
            let reply = error_reply(
                conn.framing,
                &HubError::ServerBusy {
                    retry_after: self.config.shed_retry_after_secs,
                },
            );
            conn.outq.push_back(reply);
            conn.closing = true;
        } else {
            for item in items {
                if conn.busy {
                    conn.pending.push_back(item);
                    self.metrics.queue_depth.inc();
                } else {
                    conn.busy = true;
                    let _ = self.jobs.send(Job {
                        conn: id,
                        item,
                        minted: Arc::clone(&conn.minted),
                    });
                }
            }
        }
        if conn.closing {
            // Shed refusal already queued; any trailing framing trouble
            // is moot, the connection is on its way out.
        } else if let Some(msg) = fatal {
            self.metrics.frames_rejected.inc();
            self.metrics.queue_depth.add(-(conn.pending.len() as i64));
            conn.pending.clear();
            conn.inbuf.clear();
            conn.partial = None;
            conn.read_deadline = None;
            let reply = fatal_reply(conn.framing, &msg);
            conn.outq.push_back(reply);
            conn.closing = true;
        } else {
            // The read deadline covers *partial* requests only, and is
            // pinned at partial-start so trickled bytes cannot extend it.
            let waiting = !conn.inbuf.is_empty() || conn.partial.is_some();
            conn.read_deadline = if waiting {
                conn.read_deadline
                    .or_else(|| Some(Instant::now() + self.config.read_timeout))
            } else {
                None
            };
        }
        if eof && !conn.closing {
            // Peer hung up; close() decides whether it was clean (idle,
            // nothing pending) or abrupt (a request still in flight).
            self.close(id, false);
            return;
        }
        let alive = flush(conn, &self.config, &self.metrics);
        if alive {
            update_interest(self.poll.registry(), id, conn);
        } else {
            self.close(id, false);
        }
    }

    fn conn_writable(&mut self, id: usize) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let alive = flush(conn, &self.config, &self.metrics);
        if alive {
            update_interest(self.poll.registry(), id, conn);
        } else {
            self.close(id, false);
        }
    }

    fn drain_completions(&mut self) {
        let done: Vec<Completion> = std::mem::take(&mut *self.completions.lock());
        for (id, bytes) in done {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue; // connection closed while its request ran
            };
            conn.outq.push_back(bytes);
            conn.busy = false;
            if let Some(item) = conn.pending.pop_front() {
                self.metrics.queue_depth.dec();
                conn.busy = true;
                let _ = self.jobs.send(Job {
                    conn: id,
                    item,
                    minted: Arc::clone(&conn.minted),
                });
            }
            let alive = flush(conn, &self.config, &self.metrics);
            if alive {
                update_interest(self.poll.registry(), id, conn);
            } else {
                self.close(id, false);
            }
        }
    }

    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let mut write_dead = Vec::new();
        let mut read_dead = Vec::new();
        for (&id, conn) in &self.conns {
            if conn.write_deadline.is_some_and(|d| now >= d) {
                write_dead.push(id);
            } else if !conn.closing && conn.read_deadline.is_some_and(|d| now >= d) {
                read_dead.push(id);
            }
        }
        for id in write_dead {
            // The peer is not draining; an error reply cannot be
            // delivered either. Just close (abruptly, by definition).
            self.close(id, true);
        }
        for id in read_dead {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            self.metrics.queue_depth.add(-(conn.pending.len() as i64));
            conn.pending.clear();
            conn.inbuf.clear();
            conn.partial = None;
            conn.read_deadline = None;
            let reply = fatal_reply(conn.framing, "read timed out mid-request");
            conn.outq.push_back(reply);
            conn.closing = true;
            let alive = flush(conn, &self.config, &self.metrics);
            if alive {
                update_interest(self.poll.registry(), id, conn);
            } else {
                self.close(id, false);
            }
        }
    }

    /// Removes and tears down connection `id`. A close counts as a
    /// `transport_closed` occurrence — the server-side twin of the error
    /// the peer will observe — when it is `forced` (server shutdown,
    /// write timeout) or when the connection still had work in motion:
    /// a request executing or queued, an open object stream, or replies
    /// not yet delivered. A clean idle hangup and a planned post-error
    /// close whose reply was fully flushed count nothing.
    fn close(&mut self, id: usize, forced: bool) {
        if let Some(conn) = self.conns.remove(&id) {
            let _ = self.poll.registry().deregister(&conn.stream);
            self.metrics.conns_open.dec();
            if let Some(ip) = conn.peer_ip {
                if let Some(n) = self.ip_counts.get_mut(&ip) {
                    *n -= 1;
                    if *n == 0 {
                        self.ip_counts.remove(&ip);
                    }
                }
            }
            self.metrics.queue_depth.add(-(conn.pending.len() as i64));
            let planned = conn.closing && conn.outq.is_empty();
            let in_flight = conn.busy
                || !conn.pending.is_empty()
                || conn.partial.is_some()
                || !conn.outq.is_empty();
            if forced || (in_flight && !planned) {
                self.metrics.transport_closed.inc();
            }
            // End of session: the connection's credentials die with it.
            for token in conn.minted.lock().drain() {
                self.hub.revoke(&Token::new(token));
            }
        }
    }
}

/// Consumes as many complete requests from `conn.inbuf` as possible.
/// Returns the parsed items plus a fatal framing violation, if any (the
/// connection answers it and closes).
fn parse_input(
    conn: &mut Conn,
    config: &ServerConfig,
    metrics: &NetMetrics,
) -> (Vec<Item>, Option<String>) {
    let mut items = Vec::new();
    loop {
        match conn.framing {
            Framing::Unknown => {
                let Some(&first) = conn.inbuf.first() else {
                    break;
                };
                conn.framing = match first {
                    frame::ENV..=frame::PONG => Framing::Binary,
                    b'{' | b' ' | b'\t' | b'\r' | b'\n' => Framing::Lines,
                    other => {
                        return (
                            items,
                            Some(format!(
                                "first byte 0x{other:02x} is neither a line envelope nor a binary frame"
                            )),
                        )
                    }
                };
            }
            Framing::Lines => match conn.inbuf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    metrics.bytes_in_line.add(i as u64 + 1);
                    let line: Vec<u8> = conn.inbuf.drain(..=i).collect();
                    let line = String::from_utf8_lossy(&line[..i]);
                    let line = line.trim();
                    if !line.is_empty() {
                        items.push(Item::Line(line.to_owned()));
                    }
                }
                None => {
                    if conn.inbuf.len() > config.max_frame_len {
                        return (
                            items,
                            Some(format!(
                                "request line exceeds the {} byte frame limit",
                                config.max_frame_len
                            )),
                        );
                    }
                    break;
                }
            },
            Framing::Binary => {
                // The buffer head is always a frame boundary here; drop
                // the stray newlines the probe (and nothing else) sends.
                let pad = conn.inbuf.iter().take_while(|&&b| b == b'\n').count();
                if pad > 0 {
                    metrics.bytes_in_binary.add(pad as u64);
                    conn.inbuf.drain(..pad);
                }
                if conn.inbuf.len() < 5 {
                    break;
                }
                let kind = conn.inbuf[0];
                if !(frame::ENV..=frame::PONG).contains(&kind) {
                    return (items, Some(format!("unknown frame kind 0x{kind:02x}")));
                }
                let len =
                    u32::from_be_bytes(conn.inbuf[1..5].try_into().expect("4 bytes")) as usize;
                if len > config.max_frame_len {
                    return (
                        items,
                        Some(format!(
                            "frame of {len} bytes exceeds the {} byte limit",
                            config.max_frame_len
                        )),
                    );
                }
                if conn.inbuf.len() < 5 + len {
                    break;
                }
                let payload: Vec<u8> = conn.inbuf[5..5 + len].to_vec();
                conn.inbuf.drain(..5 + len);
                metrics.bytes_in_binary.add(5 + len as u64);
                if let Some(violation) =
                    handle_frame(conn, config, metrics, kind, payload, &mut items)
                {
                    return (items, Some(violation));
                }
            }
        }
    }
    (items, None)
}

/// One complete binary frame. Returns a fatal violation message, if any.
fn handle_frame(
    conn: &mut Conn,
    config: &ServerConfig,
    metrics: &NetMetrics,
    kind: u8,
    payload: Vec<u8>,
    items: &mut Vec<Item>,
) -> Option<String> {
    let envelope_utf8 = |payload: Vec<u8>| {
        String::from_utf8(payload).map_err(|_| "envelope payload is not valid UTF-8".to_owned())
    };
    match kind {
        frame::PING => conn.outq.push_back(frame::pong(PROTOCOL_VERSION)),
        frame::PONG => {}
        frame::ENV => {
            if conn.partial.is_some() {
                return Some("ENV frame inside an open object stream".into());
            }
            match envelope_utf8(payload) {
                Ok(envelope) => items.push(Item::Binary {
                    envelope,
                    objects: Vec::new(),
                }),
                Err(e) => return Some(e),
            }
        }
        frame::ENV_OBJ => {
            if conn.partial.is_some() {
                return Some("ENV_OBJ frame inside an open object stream".into());
            }
            match envelope_utf8(payload) {
                Ok(envelope) => {
                    let raw_bytes = envelope.len();
                    conn.partial = Some(Partial {
                        envelope,
                        objects: Vec::new(),
                        raw_bytes,
                    });
                }
                Err(e) => return Some(e),
            }
        }
        frame::OBJ => {
            let Some(partial) = conn.partial.as_mut() else {
                return Some("OBJ frame outside an object stream".into());
            };
            let budget = config.max_message_len.saturating_sub(partial.raw_bytes);
            metrics.obj_deflate_bytes.add(payload.len() as u64);
            let raw = match miniz_oxide::inflate::decompress_to_vec_with_limit(&payload, budget) {
                Ok(raw) => raw,
                Err(e) => return Some(format!("object block: {e}")),
            };
            metrics.obj_raw_bytes.add(raw.len() as u64);
            partial.raw_bytes += raw.len();
            if let Err(e) = frame::parse_records(&raw, &mut partial.objects) {
                return Some(e);
            }
        }
        frame::END => {
            let Some(partial) = conn.partial.take() else {
                return Some("END frame outside an object stream".into());
            };
            items.push(Item::Binary {
                envelope: partial.envelope,
                objects: partial.objects,
            });
        }
        _ => unreachable!("kind validated by the caller"),
    }
    None
}

/// One typed error envelope, encoded in the connection's own framing
/// (line framing when none was established) — used for shed refusals
/// and, via [`fatal_reply`], framing violations.
fn error_reply(framing: Framing, err: &HubError) -> Vec<u8> {
    let envelope = ApiResponse::from_error(err).encode();
    match framing {
        Framing::Binary => frame::encode_message(&envelope, &[]),
        Framing::Lines | Framing::Unknown => {
            let mut out = envelope.into_bytes();
            out.push(b'\n');
            out
        }
    }
}

/// The error reply for a fatal framing violation.
fn fatal_reply(framing: Framing, msg: &str) -> Vec<u8> {
    error_reply(framing, &HubError::Protocol(msg.to_owned()))
}

/// Writes as much of `outq` as the socket accepts. Returns `false` when
/// the connection should be closed (write failure, or `closing` with an
/// empty queue).
fn flush(conn: &mut Conn, config: &ServerConfig, metrics: &NetMetrics) -> bool {
    let mut progressed = false;
    while let Some(front) = conn.outq.front() {
        match conn.stream.write(&front[conn.out_off..]) {
            Ok(0) => return false,
            Ok(n) => {
                match conn.framing {
                    Framing::Binary => metrics.bytes_out_binary.add(n as u64),
                    Framing::Lines | Framing::Unknown => metrics.bytes_out_line.add(n as u64),
                }
                progressed = true;
                conn.out_off += n;
                if conn.out_off == front.len() {
                    conn.outq.pop_front();
                    conn.out_off = 0;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.outq.is_empty() {
        conn.write_deadline = None;
        !conn.closing
    } else {
        if progressed || conn.write_deadline.is_none() {
            conn.write_deadline = Some(Instant::now() + config.write_timeout);
        }
        true
    }
}

fn update_interest(registry: &mio::Registry, id: usize, conn: &mut Conn) {
    let want_read = !conn.closing;
    let want_write = !conn.outq.is_empty();
    if (want_read, want_write) == (conn.reg_read, conn.reg_write) {
        return;
    }
    let interest = match (want_read, want_write) {
        (true, true) => mio::Interest::READABLE.add(mio::Interest::WRITABLE),
        (true, false) => mio::Interest::READABLE,
        (false, true) => mio::Interest::WRITABLE,
        // closing with nothing to write: the caller closes instead.
        (false, false) => return,
    };
    if registry
        .reregister(&conn.stream, mio::Token(id), interest)
        .is_ok()
    {
        conn.reg_read = want_read;
        conn.reg_write = want_write;
    }
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

fn worker_loop(
    hub: &Hub,
    jobs: &Mutex<mpsc::Receiver<Job>>,
    completions: &Mutex<Vec<Completion>>,
    waker: &mio::Waker,
    metrics: &NetMetrics,
) {
    loop {
        // Hold the receiver lock only for the recv itself.
        let job = { jobs.lock().recv() };
        let Ok(job) = job else { break };
        metrics.workers_busy.inc();
        let bytes = match job.item {
            Item::Line(line) => {
                let mut reply = respond_line(hub, &job.minted, &line).into_bytes();
                reply.push(b'\n');
                reply
            }
            Item::Binary { envelope, objects } => {
                respond_binary(hub, &job.minted, &envelope, objects, metrics)
            }
        };
        metrics.workers_busy.dec();
        completions.lock().push((job.conn, bytes));
        let _ = waker.wake();
    }
}

fn respond_line(hub: &Hub, minted: &Mutex<HashSet<String>>, line: &str) -> String {
    let request = match ApiRequest::parse(line) {
        Ok(request) => request,
        Err(e) => return ApiResponse::Error(e).encode(),
    };
    execute(hub, minted, request).encode()
}

fn respond_binary(
    hub: &Hub,
    minted: &Mutex<HashSet<String>>,
    envelope: &str,
    objects: Vec<(ObjectId, Vec<u8>)>,
    metrics: &NetMetrics,
) -> Vec<u8> {
    let response = match ApiRequest::parse_ext(envelope, objects) {
        Ok(request) => execute(hub, minted, request),
        Err(e) => ApiResponse::Error(e),
    };
    let (text, objects) = response.encode_ext();
    let message = frame::encode_message(&text, &objects);
    if !objects.is_empty() {
        // Compression ratio on the object side channel: raw record bytes
        // versus what actually hits the wire (the OBJ payloads plus one
        // 5-byte frame header per ~128 KiB block — noise).
        let raw: usize = objects.iter().map(|(_, b)| 24 + b.len()).sum();
        let overhead = (5 + text.len()) + 5; // ENV_OBJ frame + END frame
        metrics.obj_raw_bytes.add(raw as u64);
        metrics
            .obj_deflate_bytes
            .add(message.len().saturating_sub(overhead) as u64);
    }
    message
}

/// Transport-level request execution: batch fan-out plus the per-request
/// socket guards.
fn execute(hub: &Hub, minted: &Mutex<HashSet<String>>, request: ApiRequest) -> ApiResponse {
    if let ApiRequest::Batch { requests } = request {
        // Guards apply to every item individually: a foreign token or an
        // operator seam in one slot must not ride in on its siblings.
        return ApiResponse::Batch(
            requests
                .into_iter()
                .map(|inner| {
                    if matches!(inner, ApiRequest::Batch { .. }) {
                        ApiResponse::from_error(&HubError::Protocol(
                            "batch requests cannot nest".into(),
                        ))
                    } else {
                        execute_one(hub, minted, inner)
                    }
                })
                .collect(),
        );
    }
    execute_one(hub, minted, request)
}

fn execute_one(hub: &Hub, minted: &Mutex<HashSet<String>>, request: ApiRequest) -> ApiResponse {
    // Operator/test seams carry no token in-process, but on a network
    // socket "anonymous" means "anyone who can reach the port": a
    // stranger must not skew the platform clock or trigger a gc sweep
    // over every hosted repository.
    if matches!(
        request,
        ApiRequest::AdvanceClock { .. } | ApiRequest::Maintenance
    ) {
        return ApiResponse::from_error(&HubError::PermissionDenied(format!(
            "method {:?} is operator-only and not served over the socket",
            request.method()
        )));
    }
    if let Some(token) = request.token() {
        if !minted.lock().contains(token) {
            return ApiResponse::from_error(&HubError::AuthFailed);
        }
    }
    if let ApiRequest::ServerMetrics { token } = &request {
        // Operator-scoped: the tokenless trusted-embedder form is not
        // served over the socket, and the (connection-minted) token must
        // belong to a user holding the operator capability.
        let authorized = token.as_deref().is_some_and(|t| hub.is_operator_token(t));
        if !authorized {
            return ApiResponse::from_error(&HubError::PermissionDenied(
                "server_metrics over the socket requires an operator token".into(),
            ));
        }
    }
    // Token lifecycle requests rewrite the connection's minted set:
    // login adds, revoke removes, refresh swaps old for new (the minted
    // guard above already pinned the old token to this connection).
    let mints = matches!(
        request,
        ApiRequest::Login { .. } | ApiRequest::Refresh { .. }
    );
    let retired = match &request {
        ApiRequest::Revoke { token } | ApiRequest::Refresh { token } => Some(token.clone()),
        _ => None,
    };
    let response = hub.dispatch(request);
    let succeeded = !matches!(response, ApiResponse::Error(_));
    if mints {
        if let ApiResponse::Token(token) = &response {
            minted.lock().insert(token.clone());
        }
    }
    if let Some(token) = retired {
        if succeeded {
            minted.lock().remove(&token);
        }
    }
    response
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Not probed yet: the first call negotiates.
    Unknown,
    Lines,
    Binary,
}

struct ClientConn {
    stream: BufReader<TcpStream>,
    mode: Mode,
}

/// Client side of the socket transport: one connection, one in-flight
/// request at a time (the interior lock serializes concurrent callers).
/// The first call probes the server (see [`frame::PROBE`]) and upgrades
/// to v3 binary framing when the server supports it; against a line-only
/// server the same connection falls back to v1/v2 line framing.
///
/// A connection that errors is dropped, and the *next* call re-dials the
/// remembered address and re-negotiates framing from scratch. The failed
/// call itself still surfaces its error — whether to resend is the
/// caller's decision ([`HubClient::call`] retries idempotent reads).
/// Server-minted tokens are scoped to the connection that minted them,
/// so tokens die with a reconnect: token-carrying calls fail
/// `auth_failed` until the caller logs in again.
pub struct TcpTransport {
    addr: SocketAddr,
    io_timeout: Option<Duration>,
    conn: Mutex<Option<ClientConn>>,
}

/// Default per-read/per-write socket timeout. Generous enough that no
/// healthy exchange ever trips it, but it bounds every blocking call:
/// a peer (or a fault between here and the peer) that stops moving
/// bytes degrades to a typed `transport_closed` instead of a hang.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

impl TcpTransport {
    /// Connects to a [`SocketServer`] (or anything speaking either
    /// framing). Version negotiation happens lazily on the first call.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        let addr = stream.peer_addr()?;
        let io_timeout = Some(DEFAULT_IO_TIMEOUT);
        Self::configure(&stream, io_timeout);
        Ok(TcpTransport {
            addr,
            io_timeout,
            conn: Mutex::new(Some(ClientConn {
                stream: BufReader::new(stream),
                mode: Mode::Unknown,
            })),
        })
    }

    /// Overrides the socket read/write timeout (`None` = block forever).
    /// Fault-injection tests shrink it so stalled connections turn over
    /// in milliseconds; the default is [`DEFAULT_IO_TIMEOUT`].
    pub fn with_io_timeout(mut self, timeout: Option<Duration>) -> TcpTransport {
        if let Some(conn) = self.conn.get_mut().as_ref() {
            Self::configure(conn.stream.get_ref(), timeout);
        }
        self.io_timeout = timeout;
        self
    }

    fn configure(stream: &TcpStream, timeout: Option<Duration>) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(timeout);
        let _ = stream.set_write_timeout(timeout);
    }

    /// Re-dials after a dropped connection; no-op while one is live.
    fn ensure(
        addr: SocketAddr,
        io_timeout: Option<Duration>,
        slot: &mut Option<ClientConn>,
    ) -> io::Result<&mut ClientConn> {
        if slot.is_none() {
            let stream = TcpStream::connect(addr)?;
            Self::configure(&stream, io_timeout);
            *slot = Some(ClientConn {
                stream: BufReader::new(stream),
                mode: Mode::Unknown,
            });
        }
        Ok(slot.as_mut().expect("just connected"))
    }

    /// Whether the connection negotiated v3 binary framing. `false`
    /// before the first call and against line-only servers.
    pub fn is_binary(&self) -> bool {
        self.conn
            .lock()
            .as_ref()
            .is_some_and(|c| c.mode == Mode::Binary)
    }
}

/// Sends the probe once and classifies the server by its reply: a
/// `PONG` frame means binary framing, a line means a v1/v2 line server.
fn negotiate(conn: &mut ClientConn) -> io::Result<()> {
    if conn.mode != Mode::Unknown {
        return Ok(());
    }
    {
        let mut stream = conn.stream.get_ref();
        stream.write_all(&frame::PROBE)?;
        stream.flush()?;
    }
    let first = conn.stream.fill_buf()?.first().copied();
    match first {
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection during the version probe",
        )),
        Some(frame::PONG) => {
            let _ = frame::read_frame(&mut conn.stream)?;
            conn.mode = Mode::Binary;
            Ok(())
        }
        Some(_) => {
            // A line server read the probe as a garbage line and sent a
            // protocol-error envelope; consume and discard it.
            let mut line = String::new();
            conn.stream.read_line(&mut line)?;
            conn.mode = Mode::Lines;
            Ok(())
        }
    }
}

fn send_line(conn: &mut ClientConn, request: &str) -> io::Result<String> {
    {
        let mut stream = conn.stream.get_ref();
        stream.write_all(request.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
    }
    let mut line = String::new();
    if conn.stream.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        ));
    }
    Ok(line.trim_end().to_owned())
}

fn send_binary(conn: &mut ClientConn, message: &[u8]) -> io::Result<frame::Message> {
    {
        let mut stream = conn.stream.get_ref();
        stream.write_all(message)?;
        stream.flush()?;
    }
    frame::read_message(&mut conn.stream)
}

/// Maps a client-side IO failure to its error envelope: connection drops
/// (and refused re-dials — "hub went away" either way) become
/// `transport_closed`, everything else stays a `protocol` error.
fn io_error_response(e: &io::Error) -> ApiResponse {
    use io::ErrorKind as K;
    // WouldBlock/TimedOut are how a socket read/write timeout surfaces:
    // the connection stopped moving bytes, which to the caller is the
    // same "hub went away" as a drop — and equally retryable.
    let closed = matches!(
        e.kind(),
        K::UnexpectedEof
            | K::ConnectionReset
            | K::ConnectionAborted
            | K::ConnectionRefused
            | K::BrokenPipe
            | K::WouldBlock
            | K::TimedOut
    );
    ApiResponse::Error(if closed {
        WireError {
            code: ErrorCode::TransportClosed,
            message: format!("hub connection closed: {e}"),
            detail: None,
        }
    } else {
        WireError {
            code: ErrorCode::Protocol,
            message: format!("transport failure: {e}"),
            detail: None,
        }
    })
}

impl Transport for TcpTransport {
    fn send(&self, request: &str) -> String {
        let mut slot = self.conn.lock();
        let round_trip = (|| -> io::Result<String> {
            let conn = Self::ensure(self.addr, self.io_timeout, &mut slot)?;
            negotiate(conn)?;
            match conn.mode {
                Mode::Lines => send_line(conn, request),
                Mode::Binary => {
                    // The string contract stands even on a binary
                    // connection: wrap the pre-encoded line in an ENV
                    // frame, and fold any side-channel reply back into
                    // its inline (hex) envelope form.
                    let message = frame::encode_message(request, &[]);
                    let (envelope, objects) = send_binary(conn, &message)?;
                    if objects.is_empty() {
                        Ok(envelope)
                    } else {
                        Ok(match ApiResponse::parse_ext(&envelope, objects) {
                            Ok(response) => response.encode(),
                            Err(e) => ApiResponse::Error(e).encode(),
                        })
                    }
                }
                Mode::Unknown => unreachable!("negotiate() always picks a mode"),
            }
        })();
        match round_trip {
            Ok(reply) => reply,
            Err(e) => {
                *slot = None; // next call re-dials
                io_error_response(&e).encode()
            }
        }
    }

    fn exchange(&self, request: &ApiRequest) -> ApiResponse {
        let mut slot = self.conn.lock();
        let round_trip = (|| -> io::Result<ApiResponse> {
            let conn = Self::ensure(self.addr, self.io_timeout, &mut slot)?;
            negotiate(conn)?;
            match conn.mode {
                Mode::Lines => {
                    let reply = send_line(conn, &request.encode())?;
                    Ok(ApiResponse::parse(&reply).unwrap_or_else(ApiResponse::Error))
                }
                Mode::Binary => {
                    let (text, objects) = request.encode_ext();
                    let message = frame::encode_message(&text, &objects);
                    let (envelope, objects) = send_binary(conn, &message)?;
                    Ok(ApiResponse::parse_ext(&envelope, objects)
                        .unwrap_or_else(ApiResponse::Error))
                }
                Mode::Unknown => unreachable!("negotiate() always picks a mode"),
            }
        })();
        match round_trip {
            Ok(response) => response,
            Err(e) => {
                *slot = None; // next call re-dials
                io_error_response(&e)
            }
        }
    }
}

impl HubClient<TcpTransport> {
    /// Client over a fresh TCP connection to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<HubClient<TcpTransport>> {
        Ok(HubClient::new(TcpTransport::connect(addr)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hangup_surfaces_as_transport_closed() {
        // A peer that hangs up yields a parseable transport_closed
        // envelope — "hub went away" — not a panic or an empty string.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // immediate hangup
        });
        let transport = TcpTransport::connect(addr).unwrap();
        peer.join().unwrap();
        let reply = transport.send(&ApiRequest::ListRepos.encode());
        match ApiResponse::parse(&reply) {
            Ok(ApiResponse::Error(e)) => assert_eq!(e.code, ErrorCode::TransportClosed),
            other => panic!("expected a transport_closed envelope, got {other:?}"),
        }
        // And the typed path reconstructs the dedicated variant.
        match transport.exchange(&ApiRequest::ListRepos).into_result() {
            Err(HubError::TransportClosed(_)) => {}
            other => panic!("expected HubError::TransportClosed, got {other:?}"),
        }
    }

    #[test]
    fn frame_messages_round_trip() {
        let objects: Vec<(ObjectId, Vec<u8>)> = (0..300u32)
            .map(|i| {
                let bytes = format!("object payload {i} ").repeat(50).into_bytes();
                (ObjectId::hash_bytes(&bytes), bytes)
            })
            .collect();
        let message = frame::encode_message("{\"v\":3}", &objects);
        let (envelope, back) = frame::read_message(&mut &message[..]).unwrap();
        assert_eq!(envelope, "{\"v\":3}");
        assert_eq!(back, objects);
        // Compression pays for itself on repetitive payloads.
        let raw: usize = objects.iter().map(|(_, b)| 24 + b.len()).sum();
        assert!(message.len() < raw / 2, "{} vs {raw}", message.len());

        let plain = frame::encode_message("{\"v\":1}", &[]);
        let (envelope, back) = frame::read_message(&mut &plain[..]).unwrap();
        assert_eq!(envelope, "{\"v\":1}");
        assert!(back.is_empty());
    }

    #[test]
    fn record_larger_than_chunk_gets_its_own_block() {
        let big = vec![0xAB; 700 * 1024];
        let objects = vec![
            (ObjectId::hash_bytes(b"a"), b"small".to_vec()),
            (ObjectId::hash_bytes(&big), big.clone()),
            (ObjectId::hash_bytes(b"b"), b"tail".to_vec()),
        ];
        let message = frame::encode_message("{\"v\":3}", &objects);
        let (_, back) = frame::read_message(&mut &message[..]).unwrap();
        assert_eq!(back, objects);
    }
}
