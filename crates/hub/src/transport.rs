//! Line-framed TCP transport for the hub wire protocol: the piece that
//! turns the in-process platform into an out-of-process service the
//! extension and the CLI can dial.
//!
//! # Framing
//!
//! One envelope per line. A request is the compact sjson encoding of an
//! [`ApiRequest`] followed by a single `\n`; the response line mirrors
//! it. Compact sjson escapes all control characters inside strings, so
//! an envelope never contains a raw newline and the framing is
//! unambiguous. Blank lines are ignored; an unparseable line gets a
//! `protocol` error response (the connection stays up). Requests on one
//! connection are served strictly in order, one response per request.
//!
//! # Auth-token scoping
//!
//! Tokens are scoped to the connection that minted them:
//!
//! * a successful `login` records the issued token against *this*
//!   connection;
//! * any request carrying a token this connection did not mint is
//!   refused with `auth_failed` **before** dispatch — a token lifted
//!   from one session is useless on any other;
//! * when the connection closes, every token it minted is revoked on
//!   the hub, so no credential outlives its session.
//!
//! Anonymous methods (reads, `register_user`, `login` itself) carry no
//! token and pass through unscoped, exactly as over the in-process
//! transport — with two exceptions: the operator/test seams
//! `advance_clock` and `maintenance` are refused outright on the
//! socket, because "anonymous" on a network port means anyone who can
//! reach it.
//!
//! **Deployment caveat:** the hub reproduces the paper's platform, and
//! its `login` takes a username with no secret — anyone who can reach
//! the port can mint a token for any registered user. Token scoping
//! limits the blast radius of a *leaked* token, not of the open `login`
//! itself, so bind `gitcite hub serve` to loopback or a trusted network
//! only. A real credential exchange is a protocol-v3 item (see the
//! ROADMAP's transport section).
//!
//! [`SocketServer`] serves an [`Hub`] behind a listener (one thread per
//! connection — the hub itself is sharded and thread-safe);
//! [`TcpTransport`] implements the client-side [`Transport`] over one
//! connection, and [`HubClient::connect`] wires the two together.

use crate::api::{ApiRequest, ApiResponse, ErrorCode, WireError};
use crate::client::{HubClient, Transport};
use crate::error::HubError;
use crate::server::{Hub, Token};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A hub served over TCP. Binding spawns the accept loop; dropping (or
/// [`SocketServer::shutdown`]) stops accepting new connections.
pub struct SocketServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl SocketServer {
    /// Binds `addr` (use port 0 to let the OS pick) and starts serving
    /// `hub`. Each accepted connection gets its own thread and its own
    /// token scope.
    pub fn bind(hub: Arc<Hub>, addr: impl ToSocketAddrs) -> std::io::Result<SocketServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let hub = Arc::clone(&hub);
                std::thread::spawn(move || serve_connection(&hub, stream));
            }
        });
        Ok(SocketServer {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The address the server actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and waits for the accept loop to
    /// exit. Connections already open are served until their peers hang
    /// up. Dropping the server does the same.
    pub fn shutdown(self) {}

    /// Blocks the calling thread for the server's lifetime — what
    /// `gitcite hub serve` does after printing the address.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Serves one connection: reads request lines, writes response lines,
/// and enforces the connection's token scope (see the module docs).
fn serve_connection(hub: &Hub, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut minted: HashSet<String> = HashSet::new();
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = respond(hub, &mut minted, &line);
        let sent = writer
            .write_all(reply.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        if sent.is_err() {
            break;
        }
    }
    // End of session: the connection's credentials die with it.
    for token in minted {
        hub.revoke(&Token::new(token));
    }
}

fn respond(hub: &Hub, minted: &mut HashSet<String>, line: &str) -> String {
    let request = match ApiRequest::parse(line) {
        Ok(request) => request,
        Err(e) => return ApiResponse::Error(e).encode(),
    };
    // Operator/test seams carry no token in-process, but on a network
    // socket "anonymous" means "anyone who can reach the port": a
    // stranger must not skew the platform clock or trigger a gc sweep
    // over every hosted repository.
    if matches!(
        request,
        ApiRequest::AdvanceClock { .. } | ApiRequest::Maintenance
    ) {
        return ApiResponse::from_error(&HubError::PermissionDenied(format!(
            "method {:?} is operator-only and not served over the socket",
            request.method()
        )))
        .encode();
    }
    if let Some(token) = request.token() {
        if !minted.contains(token) {
            return ApiResponse::from_error(&HubError::AuthFailed).encode();
        }
    }
    let is_login = matches!(request, ApiRequest::Login { .. });
    let revoked = match &request {
        ApiRequest::Revoke { token } => Some(token.clone()),
        _ => None,
    };
    let response = hub.dispatch(request);
    if is_login {
        if let ApiResponse::Token(token) = &response {
            minted.insert(token.clone());
        }
    }
    if let Some(token) = revoked {
        minted.remove(&token);
    }
    response.encode()
}

/// Client side of the socket transport: one connection, one in-flight
/// request at a time (the interior lock serializes concurrent callers).
pub struct TcpTransport {
    conn: Mutex<BufReader<TcpStream>>,
}

impl TcpTransport {
    /// Connects to a [`SocketServer`] (or anything speaking the same
    /// line framing).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(TcpTransport {
            conn: Mutex::new(BufReader::new(stream)),
        })
    }
}

impl Transport for TcpTransport {
    fn send(&self, request: &str) -> String {
        let mut conn = self.conn.lock();
        let round_trip = (|| -> std::io::Result<String> {
            {
                let mut stream = conn.get_ref();
                stream.write_all(request.as_bytes())?;
                stream.write_all(b"\n")?;
                stream.flush()?;
            }
            let mut line = String::new();
            if conn.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            Ok(line.trim_end().to_owned())
        })();
        match round_trip {
            Ok(reply) => reply,
            // The Transport contract is string-in string-out, so IO
            // failures surface as protocol-error envelopes the caller
            // already knows how to handle.
            Err(e) => ApiResponse::Error(WireError {
                code: ErrorCode::Protocol,
                message: format!("transport failure: {e}"),
                detail: None,
            })
            .encode(),
        }
    }
}

impl HubClient<TcpTransport> {
    /// Client over a fresh TCP connection to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<HubClient<TcpTransport>> {
        Ok(HubClient::new(TcpTransport::connect(addr)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_failure_encodes_as_protocol_error() {
        // A peer that hangs up yields a parseable error envelope, not a
        // panic or an empty string.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // immediate hangup
        });
        let transport = TcpTransport::connect(addr).unwrap();
        peer.join().unwrap();
        let reply = transport.send(&ApiRequest::ListRepos.encode());
        match ApiResponse::parse(&reply) {
            Ok(ApiResponse::Error(e)) => assert_eq!(e.code, ErrorCode::Protocol),
            other => panic!("expected a protocol error envelope, got {other:?}"),
        }
    }
}
