//! Hub-to-hub replication: follower hubs that continuously pull state
//! from a primary and serve read traffic locally.
//!
//! # Model
//!
//! Replication is the client push path, inverted. A [`Follower`] owns a
//! [`HubClient`] pointed at the primary and repeats one idempotent
//! *sync round* ([`Follower::sync_once`]):
//!
//! 1. `repl_status` — the primary's logical epoch, audit length, every
//!    repository's `(head, refs)` frontier, and the deposit registry.
//! 2. For each repository whose frontier differs from the local copy,
//!    `repl_fetch` with the local branch tips as *haves*: the primary
//!    answers with a delta [`crate::api::RepoBundle`] past the common
//!    frontier (a full bundle when nothing is shared — which is also how
//!    a brand-new repository bootstraps). The bundle is applied under
//!    that repository's write lock; hash-verified object insertion plus
//!    a connectivity walk make a corrupt or truncated bundle fail the
//!    whole application rather than ever landing partial state.
//! 3. Audit catch-up through the ordinary `audit_log_page` endpoint,
//!    and deposit ingestion from the status reply.
//!
//! # Cursor semantics and restart safety
//!
//! The replication cursor is **derived, not stored**: the repo cursor is
//! the follower's own branch tips (what it would send as haves), and the
//! audit cursor is the length of its own audit log. There is no cursor
//! file to lose or corrupt, so the cursor can never disagree with the
//! data it describes: a restarted engine recomputes both from whatever
//! the hub still holds and resumes with deltas, and a follower that
//! lost its state entirely simply re-bootstraps with full bundles —
//! wrong answers are impossible, only wasted transfer. The primary's
//! epoch rides along in every status reply and is folded into the
//! follower's logical clock with `fetch_max`, keeping token expiry and
//! rate-limit arithmetic coherent across the fleet.
//!
//! # Staleness and redirects
//!
//! A follower answers replicated reads only while its last successful
//! sync round is younger than the configured staleness bound; outside
//! that window — and always, for writes and for reads it cannot answer
//! faithfully (roles, archive state) — it refuses with the typed
//! [`crate::HubError::NotPrimary`] carrying the primary's address, which
//! [`crate::client::FleetTransport`] uses to re-route the call.
//!
//! # Lock order
//!
//! The apply path follows the hub's global lock order (see
//! [`crate::server`]): `users/tokens → repos map → one repository →
//! leaf (audit, zenodo)`. Concretely, a sync round takes the repos map
//! guard only to look up or insert a repo cell and **drops it before**
//! taking the repository's own write lock; the audit and zenodo mutexes
//! are taken last and never while a repository is held. The pull loop
//! itself holds **no** hub lock across a network call — status and
//! fetch round trips complete before any local lock is taken, so a
//! stalled primary can never wedge the follower's read traffic.
//!
//! # Failure handling
//!
//! Network trouble must not kill replication: the pull loop reuses
//! [`RetryPolicy`]'s full-jitter backoff arithmetic between failed
//! rounds (the policy's `attempts` bound is ignored — a follower
//! retries forever), counts every failed round in `repl.reconnects`,
//! and relies on the transport's re-dial-on-error behaviour to get a
//! fresh connection. All of it surfaces through `server_metrics` →
//! Prometheus → `gitcite hub top`.

use crate::api::ReplMetrics;
use crate::client::{HubClient, RetryPolicy, Transport};
use crate::error::Result;
use crate::server::Hub;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Seconds since the Unix epoch (0 if the system clock is before it).
pub(crate) fn unix_now() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

/// Shared replication state of a follower hub: who the primary is, how
/// stale served reads may be, and the lag/health numbers exported
/// through `server_metrics`. Held by both the [`Hub`] (which consults it
/// on every dispatch) and the [`Follower`] engine (which updates it
/// after every sync round).
#[derive(Debug)]
pub struct ReplState {
    primary: String,
    staleness_secs: u64,
    /// Wall-clock second of the last fully successful sync round; 0
    /// until the first one completes.
    last_ok_unix: AtomicI64,
    /// Primary epoch observed by the last successful round.
    epoch: AtomicI64,
    /// Repositories whose frontier differed from the primary's at the
    /// start of the last round (with per-repo ref deltas in `behind`).
    repos_behind: AtomicU64,
    behind: Mutex<Vec<(String, u64)>>,
    rounds: telemetry::Counter,
    reconnects: telemetry::Counter,
}

impl ReplState {
    pub(crate) fn new(primary: String, staleness_secs: u64) -> ReplState {
        ReplState {
            primary,
            staleness_secs,
            last_ok_unix: AtomicI64::new(0),
            epoch: AtomicI64::new(0),
            repos_behind: AtomicU64::new(0),
            behind: Mutex::new(Vec::new()),
            rounds: telemetry::Counter::new(),
            reconnects: telemetry::Counter::new(),
        }
    }

    /// Wire address of the primary this follower replicates.
    pub fn primary(&self) -> &str {
        &self.primary
    }

    /// The staleness bound in wall-clock seconds: reads are served only
    /// while the last successful sync is at most this old.
    pub fn staleness_secs(&self) -> u64 {
        self.staleness_secs
    }

    /// Whether replicated reads must be refused at wall-clock second
    /// `now_unix`. True until the first successful sync round.
    pub fn is_stale(&self, now_unix: i64) -> bool {
        let last = self.last_ok_unix.load(Ordering::SeqCst);
        last == 0 || now_unix.saturating_sub(last) > self.staleness_secs as i64
    }

    /// Seconds since the last successful sync round, or `-1` before the
    /// first one — what `repl.lag_seconds` exports.
    pub fn lag_seconds(&self, now_unix: i64) -> i64 {
        let last = self.last_ok_unix.load(Ordering::SeqCst);
        if last == 0 {
            -1
        } else {
            now_unix.saturating_sub(last).max(0)
        }
    }

    /// Completed sync rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds.get()
    }

    /// Failed rounds (each is followed by a backed-off reconnect).
    pub fn reconnects(&self) -> u64 {
        self.reconnects.get()
    }

    /// The metrics section exported through `server_metrics`.
    pub fn metrics(&self) -> ReplMetrics {
        ReplMetrics {
            primary: self.primary.clone(),
            lag_seconds: self.lag_seconds(unix_now()),
            epoch: self.epoch.load(Ordering::SeqCst),
            repos_behind: self.repos_behind.load(Ordering::SeqCst),
            behind: self.behind.lock().clone(),
            rounds: self.rounds.get(),
            reconnects: self.reconnects.get(),
        }
    }

    fn note_behind(&self, behind: Vec<(String, u64)>) {
        self.repos_behind
            .store(behind.len() as u64, Ordering::SeqCst);
        *self.behind.lock() = behind;
    }

    fn mark_synced(&self, epoch: i64, now_unix: i64) {
        self.epoch.store(epoch, Ordering::SeqCst);
        self.last_ok_unix.store(now_unix, Ordering::SeqCst);
        self.repos_behind.store(0, Ordering::SeqCst);
        self.behind.lock().clear();
        self.rounds.inc();
    }

    pub(crate) fn note_reconnect(&self) {
        self.reconnects.inc();
    }
}

/// What one [`Follower::sync_once`] round did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SyncReport {
    /// Repositories listed by the primary's status reply.
    pub repos_checked: usize,
    /// Repositories whose frontier differed and were (re)fetched.
    pub repos_synced: usize,
    /// Fetches answered with a full bundle (bootstrap or no common
    /// frontier).
    pub full_bundles: usize,
    /// Fetches answered with a delta bundle.
    pub delta_bundles: usize,
    /// Repositories dropped because the primary no longer has them.
    pub repos_dropped: usize,
    /// Audit events ingested this round.
    pub audit_ingested: usize,
    /// Deposits newly ingested this round.
    pub deposits_ingested: usize,
    /// The primary epoch this round observed.
    pub epoch: i64,
}

/// The replication engine: drives one follower [`Hub`] from a primary
/// reached through `T`. Construction flips the hub into follower mode
/// (see [`Hub::set_follower`]); the engine then runs sync rounds either
/// on demand ([`Follower::sync_once`], what tests call) or continuously
/// on a background thread ([`Follower::spawn`], what
/// `gitcite hub serve --follow` runs).
pub struct Follower<T> {
    hub: Arc<Hub>,
    client: HubClient<T>,
    state: Arc<ReplState>,
    backoff: RetryPolicy,
    interval: Duration,
    // Jitter source for reconnect backoff; seeded so tests replay the
    // same schedule.
    rng: Mutex<StdRng>,
}

/// Audit page size for catch-up; small enough to keep round trips
/// shallow, large enough that catch-up is O(events / 256) calls.
const AUDIT_PAGE: u32 = 256;

impl<T: Transport> Follower<T> {
    /// Binds `hub` (the follower) to a primary at `primary_addr`
    /// reachable through `transport`, with the given staleness bound.
    /// The hub starts refusing writes with `not_primary` immediately;
    /// reads open up after the first successful [`Follower::sync_once`].
    pub fn new(
        hub: Arc<Hub>,
        transport: T,
        primary_addr: impl Into<String>,
        staleness_secs: u64,
    ) -> Follower<T> {
        let state = hub.set_follower(primary_addr, staleness_secs);
        Follower {
            hub,
            client: HubClient::new(transport),
            state,
            backoff: RetryPolicy::default(),
            interval: Duration::from_millis(500),
            rng: Mutex::new(StdRng::seed_from_u64(0x6769_7463_7265_706c)),
        }
    }

    /// Replaces the reconnect backoff policy (builder style). The
    /// policy's `attempts` bound is ignored — a follower retries
    /// forever; only the delay shape is reused.
    pub fn with_backoff(mut self, backoff: RetryPolicy) -> Self {
        self.backoff = backoff;
        self
    }

    /// Replaces the pause between successful rounds (builder style).
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// The shared replication state (also reachable via
    /// [`Hub::replication`]).
    pub fn state(&self) -> &Arc<ReplState> {
        &self.state
    }

    /// The client talking to the primary — e.g. to inspect transport
    /// metrics in tests.
    pub fn client(&self) -> &HubClient<T> {
        &self.client
    }

    /// Runs one complete sync round; see the module docs for the steps.
    /// A round either completes and refreshes the staleness clock, or
    /// fails without having left partial per-repository state (each
    /// bundle applies atomically under its repository's write lock).
    pub fn sync_once(&self) -> Result<SyncReport> {
        let status = self.client.repl_status()?;
        let mut report = SyncReport {
            epoch: status.epoch,
            ..SyncReport::default()
        };

        // Diff the primary's per-repo frontier against local state.
        let mut behind = Vec::new();
        for repo in &status.repos {
            report.repos_checked += 1;
            match self.hub.repl_local_frontier(&repo.repo_id) {
                Some((head, refs)) if head == repo.head && refs == repo.refs => {}
                Some((_, refs)) => {
                    // Refs added, moved, or deleted upstream.
                    let moved = repo
                        .refs
                        .iter()
                        .filter(|(name, tip)| {
                            refs.iter().find(|(n, _)| n == name).map(|(_, t)| t) != Some(tip)
                        })
                        .count()
                        + refs
                            .iter()
                            .filter(|(name, _)| !repo.refs.iter().any(|(n, _)| n == name))
                            .count();
                    behind.push((repo, moved.max(1) as u64));
                }
                None => behind.push((repo, repo.refs.len().max(1) as u64)),
            }
        }
        self.state.note_behind(
            behind
                .iter()
                .map(|(r, n)| (r.repo_id.clone(), *n))
                .collect(),
        );

        // Pull and apply a bundle per out-of-date repository.
        for (repo, _) in &behind {
            let haves = self.hub.repl_haves(&repo.repo_id);
            let bundle = self.client.repl_fetch(&repo.repo_id, &haves)?;
            if bundle.basis.is_empty() {
                report.full_bundles += 1;
            } else {
                report.delta_bundles += 1;
            }
            self.hub.repl_apply_bundle(&repo.repo_id, &bundle)?;
            report.repos_synced += 1;
        }

        // Repositories the primary no longer has disappear here too.
        let keep: HashSet<String> = status.repos.iter().map(|r| r.repo_id.clone()).collect();
        report.repos_dropped = self.hub.repl_drop_missing(&keep);

        // Audit catch-up: cursor = local length, pages are seq-ordered.
        while self.hub.repl_audit_cursor() < status.audit_seq {
            let cursor = self.hub.repl_audit_cursor().to_string();
            let page = self
                .client
                .audit_log_page(Some(&cursor), Some(AUDIT_PAGE))?;
            if page.items.is_empty() {
                break;
            }
            report.audit_ingested += self.hub.repl_ingest_audit(page.items)?;
        }

        report.deposits_ingested = self.hub.repl_ingest_deposits(status.deposits);
        self.hub.repl_observe_epoch(status.epoch);
        self.state.mark_synced(status.epoch, unix_now());
        Ok(report)
    }

    /// Runs sync rounds until `stop` flips true: the interval between
    /// successful rounds, full-jitter backoff (doubling per consecutive
    /// failure, capped by the policy) after failed ones.
    pub fn run(&self, stop: &AtomicBool) {
        let mut failures: u32 = 0;
        while !stop.load(Ordering::SeqCst) {
            let pause = match self.sync_once() {
                Ok(_) => {
                    failures = 0;
                    self.interval
                }
                Err(_) => {
                    failures = failures.saturating_add(1);
                    self.state.note_reconnect();
                    Duration::from_millis(self.backoff_delay_ms(failures))
                }
            };
            sleep_unless(stop, pause);
        }
    }

    /// One full-jitter backoff draw for the `n`-th consecutive failure —
    /// the same arithmetic [`HubClient::call`] uses between retries.
    fn backoff_delay_ms(&self, n: u32) -> u64 {
        let exp = self
            .backoff
            .base_delay_ms
            .saturating_mul(1 << n.saturating_sub(1).min(16));
        let cap = exp.min(self.backoff.max_delay_ms);
        self.rng.lock().gen_range(0..cap as usize + 1) as u64
    }
}

impl<T: Transport + Send + 'static> Follower<T> {
    /// Moves the engine onto a background thread running
    /// [`Follower::run`]; the returned handle stops and joins it on
    /// [`FollowerHandle::stop`] or drop.
    pub fn spawn(self) -> FollowerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::clone(&self.state);
        let flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("gitcite-repl".into())
            .spawn(move || self.run(&flag))
            .expect("spawn replication thread");
        FollowerHandle {
            stop,
            state,
            thread: Some(thread),
        }
    }
}

/// Sleeps up to `total`, waking early when `stop` flips true.
fn sleep_unless(stop: &AtomicBool, total: Duration) {
    let slice = Duration::from_millis(20);
    let mut remaining = total;
    while !stop.load(Ordering::SeqCst) && !remaining.is_zero() {
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

/// Handle to a background replication thread; stops and joins it when
/// dropped.
pub struct FollowerHandle {
    stop: Arc<AtomicBool>,
    state: Arc<ReplState>,
    thread: Option<JoinHandle<()>>,
}

impl FollowerHandle {
    /// The engine's shared state (lag, rounds, reconnects).
    pub fn state(&self) -> &Arc<ReplState> {
        &self.state
    }

    /// Stops the pull loop and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for FollowerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}
