//! # hub — a simulated project-hosting platform (GitHub stand-in)
//!
//! GitCite's browser extension talks to "the GitHub servers using its REST
//! API" and "directly modifies the citation file on the remote repository"
//! (paper §3). This crate rebuilds the platform surface those flows need,
//! in-process and deterministic:
//!
//! * **Users, tokens and roles** — registration, personal-access tokens,
//!   per-repository owner/member/reader roles ([`server`], [`perm`]). The
//!   member/non-member split drives exactly the capability gating Figure 2
//!   shows in the popup.
//! * **Hosted repositories** — citation-enabled repositories served over a
//!   typed, REST-like API: list/read files, log, clone, push
//!   (fast-forward checked), fork, server-side `AddCite`/`ModifyCite`/
//!   `DelCite`/`GenCite`, and server-side `MergeCite`.
//! * **Zenodo simulator** ([`zenodo`]) — deposit a released version,
//!   mint a DOI, resolve it later (paper §1's release workflow).
//! * **Software Heritage simulator** ([`heritage`]) — archive whole
//!   repositories under intrinsic SWHIDs (future work #3).
//! * **Audit log** ([`audit`]) — every API call recorded, successes and
//!   denials alike.
//!
//! Thread-safe: all API methods take `&self` (state behind a
//! `parking_lot::Mutex`), so one [`Hub`] serves many concurrent clients.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod error;
pub mod heritage;
pub mod perm;
pub mod server;
pub mod zenodo;

pub use audit::{AuditEvent, AuditLog};
pub use error::{HubError, Result};
pub use heritage::{parse_swhid, swhid, ArchiveReport, Heritage, SwhKind};
pub use perm::{Action, Role};
pub use server::{Hub, LogEntry, StoreFactory, Token, User};
pub use zenodo::{Deposit, Zenodo, DOI_PREFIX};
