//! # hub — a simulated project-hosting platform (GitHub stand-in)
//!
//! GitCite's browser extension talks to "the GitHub servers using its REST
//! API" and "directly modifies the citation file on the remote repository"
//! (paper §3). This crate rebuilds the platform surface those flows need,
//! in-process and deterministic:
//!
//! * **Users, tokens and roles** — registration, personal-access tokens,
//!   per-repository owner/member/reader roles ([`server`], [`perm`]). The
//!   member/non-member split drives exactly the capability gating Figure 2
//!   shows in the popup.
//! * **Hosted repositories** — citation-enabled repositories served over a
//!   typed, REST-like API: list/read files, log, clone, push
//!   (fast-forward checked), fork, server-side `AddCite`/`ModifyCite`/
//!   `DelCite`/`GenCite`, and server-side `MergeCite`.
//! * **Zenodo simulator** ([`zenodo`]) — deposit a released version,
//!   mint a DOI, resolve it later (paper §1's release workflow).
//! * **Software Heritage simulator** ([`heritage`]) — archive whole
//!   repositories under intrinsic SWHIDs (future work #3).
//! * **Audit log** ([`audit`]) — every API call recorded, successes and
//!   denials alike.
//! * **Versioned wire protocol** ([`api`]) — every operation above is a
//!   typed, sjson-encodable [`ApiRequest`]/[`ApiResponse`] pair routed
//!   through [`Hub::dispatch`]; [`HubClient`] speaks the protocol from
//!   the client side through a pluggable [`Transport`]. Protocol v2 adds
//!   have/want push negotiation (delta [`RepoBundle`]s) and paginated
//!   reads; protocol v3 adds batch envelopes and a binary object side
//!   channel — while v1/v2 envelopes keep being served byte-identically.
//! * **Multi-hub replication** ([`repl`], [`placement`]) — a follower
//!   hub continuously pulls per-repo deltas from a primary over the
//!   same wire protocol (the push path, inverted), serves all read
//!   traffic locally within an explicit staleness bound, and refuses
//!   writes with a typed `not_primary` redirect; rendezvous-hashed
//!   placement ([`Placement`]) tells clients which hub homes a repo.
//! * **Socket transport** ([`transport`]) — an event-driven TCP server
//!   ([`SocketServer`]: readiness reactor + worker pool, thousands of
//!   connections without thousands of threads) and client transport
//!   ([`TcpTransport`]) with per-connection auth-token scoping. v1/v2
//!   line framing and v3 length-prefixed binary framing (compressed
//!   raw-byte bundles, batch round trips) share one port.
//!
//! Thread-safe: all API methods take `&self`. State is sharded — user and
//! token tables behind `RwLock`s, each hosted repository behind its own
//! `Arc<RwLock<_>>` — so reads on different repositories (and shared
//! reads on the same repository) proceed concurrently; see [`server`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod audit;
pub mod chaos;
pub mod client;
pub mod error;
pub mod heritage;
pub mod perm;
pub mod placement;
pub mod repl;
pub mod server;
pub mod transport;
pub mod zenodo;

pub use api::{
    ApiRequest, ApiResponse, ErrorCode, LimitsMetrics, MergeOutcome, MergeSummary, MethodMetrics,
    MetricsSnapshot, Negotiation, Page, PlacementInfo, ReplMetrics, ReplRepoStatus, ReplStatus,
    RepoBundle, RepoMaintenance, StoreMetrics, StoreStats, TransportMetrics, WireError,
    WireHistogram, DEFAULT_PAGE_SIZE, MAX_PAGE_SIZE, PROTOCOL_V1, PROTOCOL_V2, PROTOCOL_V3,
    PROTOCOL_VERSION,
};
pub use audit::{AuditEvent, AuditLog};
pub use chaos::{ChaosProxy, ChaosSchedule, ChaosTransport, ProxyConfig};
pub use client::{FleetTransport, HubClient, InProcess, RetryPolicy, Transport};
pub use error::{HubError, Result};
pub use heritage::{parse_swhid, swhid, ArchiveReport, Heritage, SwhKind};
pub use perm::{Action, Role};
pub use placement::Placement;
pub use repl::{Follower, FollowerHandle, ReplState, SyncReport};
pub use server::{
    Hub, LimitsConfig, LogEntry, RateLimit, StoreFactory, Token, User, FAILURE_DECAY_TICKS,
    LOCKOUT_TICKS, MAX_LOGIN_FAILURES,
};
pub use transport::{ServerConfig, SocketServer, TcpTransport};
pub use zenodo::{Deposit, Zenodo, DOI_PREFIX};
