//! Client side of the Cloud Platform API: a typed [`HubClient`] speaking
//! the [`crate::api`] wire protocol through a pluggable [`Transport`].
//!
//! The client never touches [`Hub`] methods — every call is encoded to the
//! sjson wire envelope, handed to the transport as a string, and the
//! response string parsed back. [`InProcess`] is the transport used by the
//! in-repo simulation (the browser extension drives the hub through it);
//! a socket or HTTP transport slots in behind the same one-method trait
//! without touching any client logic.

use crate::api::{
    ApiRequest, ApiResponse, ErrorCode, MergeSummary, MetricsSnapshot, Negotiation, Page,
    PlacementInfo, ReplStatus, RepoBundle, RepoMaintenance, StoreStats,
};
use crate::audit::AuditEvent;
use crate::error::{HubError, Result};
use crate::heritage::{ArchiveReport, SwhKind};
use crate::perm::Role;
use crate::server::{Hub, LogEntry, Token, User};
use crate::zenodo::Deposit;
use citekit::{Citation, MergeStrategy};
use gitlite::{ObjectId, RepoPath, Repository};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Moves one request envelope to a hub and returns its response envelope.
///
/// The whole protocol rides on strings, so implementations range from a
/// function call ([`InProcess`]) to a socket round trip.
pub trait Transport {
    /// Sends an encoded [`ApiRequest`]; returns an encoded
    /// [`ApiResponse`].
    fn send(&self, request: &str) -> String;

    /// Typed round trip: one request in, one response out. The default
    /// rides on [`Transport::send`] — encode, exchange strings, parse —
    /// which is always correct; transports with a richer wire format
    /// (protocol v3 binary framing moves bundle objects as raw bytes
    /// instead of hex) override this to skip the hex detour.
    fn exchange(&self, request: &ApiRequest) -> ApiResponse {
        let reply = self.send(&request.encode());
        ApiResponse::parse(&reply).unwrap_or_else(ApiResponse::Error)
    }
}

/// The in-process transport: requests go straight to
/// [`Hub::handle_wire`]. Still a full encode → parse → dispatch →
/// encode → parse round trip, so anything that works here works over a
/// real wire.
pub struct InProcess<'h> {
    hub: &'h Hub,
}

impl<'h> InProcess<'h> {
    /// Binds the transport to a hub.
    pub fn new(hub: &'h Hub) -> Self {
        InProcess { hub }
    }
}

impl Transport for InProcess<'_> {
    fn send(&self, request: &str) -> String {
        self.hub.handle_wire(request)
    }
}

/// How [`HubClient::call`] retries after a dropped connection or a shed
/// (`server_busy`) reply: full-jitter exponential backoff, and **only**
/// for idempotent requests (see [`ApiRequest::is_idempotent`]) — a write
/// whose response was lost may already have landed, so replaying it is
/// the caller's deliberate decision, never the client's.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total tries including the first. `1` disables retrying.
    pub attempts: u32,
    /// Backoff before try `n + 1` is drawn uniformly from
    /// `0..=min(base_delay_ms << (n - 1), max_delay_ms)`.
    pub base_delay_ms: u64,
    /// Ceiling on any single backoff.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay_ms: 5,
            max_delay_ms: 80,
        }
    }
}

/// A typed client over the wire protocol. Method-for-method equivalent to
/// the hub's typed surface, but every call crosses the protocol boundary.
pub struct HubClient<T> {
    transport: T,
    retry: RetryPolicy,
    // Jitter source; seeded, so test runs back off on the same schedule.
    rng: Mutex<StdRng>,
}

impl<'h> HubClient<InProcess<'h>> {
    /// Client over the in-process transport.
    pub fn in_process(hub: &'h Hub) -> Self {
        HubClient::new(InProcess::new(hub))
    }
}

impl<T: Transport> HubClient<T> {
    /// Client over an arbitrary transport.
    pub fn new(transport: T) -> Self {
        HubClient {
            transport,
            retry: RetryPolicy::default(),
            rng: Mutex::new(StdRng::seed_from_u64(0x6769_7463_6974_6501)),
        }
    }

    /// Replaces the retry policy (builder style).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The underlying transport (e.g. for instrumentation wrappers that
    /// count bytes on the wire).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Sends one typed request and returns the typed response, with
    /// errors reconstructed from their wire codes. Idempotent requests
    /// that fail with [`HubError::TransportClosed`] or
    /// [`HubError::ServerBusy`] are retried per the [`RetryPolicy`];
    /// everything else surfaces immediately.
    pub fn call(&self, request: ApiRequest) -> Result<ApiResponse> {
        let mut attempt = 1u32;
        loop {
            let result = self.transport.exchange(&request).into_result();
            let retryable = matches!(
                result,
                Err(HubError::TransportClosed(_)) | Err(HubError::ServerBusy { .. })
            );
            if !retryable || attempt >= self.retry.attempts || !request.is_idempotent() {
                return result;
            }
            let exp = self
                .retry
                .base_delay_ms
                .saturating_mul(1 << (attempt - 1).min(16));
            let cap = exp.min(self.retry.max_delay_ms);
            let jittered = self.rng.lock().gen_range(0..cap as usize + 1) as u64;
            if jittered > 0 {
                std::thread::sleep(std::time::Duration::from_millis(jittered));
            }
            attempt += 1;
        }
    }

    /// Sends several requests in one round trip (protocol v3 batch
    /// envelope) and returns the per-item responses in request order.
    /// Item-level failures come back as [`ApiResponse::Error`] entries
    /// without failing the batch; the `Err` arm is for transport-level
    /// trouble (or a pre-v3 server refusing the envelope with
    /// [`HubError::Protocol`] — callers wanting to talk to old servers
    /// fall back to sequential calls on that error).
    pub fn batch(&self, requests: Vec<ApiRequest>) -> Result<Vec<ApiResponse>> {
        let expected = requests.len();
        match self.call(ApiRequest::Batch { requests })? {
            ApiResponse::Batch(responses) if responses.len() == expected => Ok(responses),
            ApiResponse::Batch(responses) => Err(HubError::Protocol(format!(
                "batch response has {} items for {expected} requests",
                responses.len()
            ))),
            other => Err(shape(&other)),
        }
    }

    // ----- users & auth ------------------------------------------------------

    /// Registers a user with no login secret (open account).
    pub fn register_user(&self, username: &str, display_name: &str) -> Result<()> {
        match self.call(ApiRequest::RegisterUser {
            username: username.to_owned(),
            display_name: display_name.to_owned(),
            secret: None,
        })? {
            ApiResponse::Unit => Ok(()),
            other => Err(shape(&other)),
        }
    }

    /// Registers a user whose logins must present `secret` (protocol v3).
    pub fn register_user_with_secret(
        &self,
        username: &str,
        display_name: &str,
        secret: &str,
    ) -> Result<()> {
        match self.call(ApiRequest::RegisterUser {
            username: username.to_owned(),
            display_name: display_name.to_owned(),
            secret: Some(secret.to_owned()),
        })? {
            ApiResponse::Unit => Ok(()),
            other => Err(shape(&other)),
        }
    }

    /// Obtains a personal-access token.
    pub fn login(&self, username: &str) -> Result<Token> {
        match self.call(ApiRequest::Login {
            username: username.to_owned(),
            secret: None,
        })? {
            ApiResponse::Token(t) => Ok(Token::new(t)),
            other => Err(shape(&other)),
        }
    }

    /// Obtains a personal-access token for a secret-protected account
    /// (protocol v3).
    pub fn login_with_secret(&self, username: &str, secret: &str) -> Result<Token> {
        match self.call(ApiRequest::Login {
            username: username.to_owned(),
            secret: Some(secret.to_owned()),
        })? {
            ApiResponse::Token(t) => Ok(Token::new(t)),
            other => Err(shape(&other)),
        }
    }

    /// Exchanges a token (possibly expired) for a fresh one, revoking the
    /// old (protocol v3).
    pub fn refresh(&self, token: &Token) -> Result<Token> {
        match self.call(ApiRequest::Refresh {
            token: token.as_str().to_owned(),
        })? {
            ApiResponse::Token(t) => Ok(Token::new(t)),
            other => Err(shape(&other)),
        }
    }

    /// Revokes a token.
    pub fn revoke(&self, token: &Token) -> Result<()> {
        match self.call(ApiRequest::Revoke {
            token: token.as_str().to_owned(),
        })? {
            ApiResponse::Unit => Ok(()),
            other => Err(shape(&other)),
        }
    }

    /// Resolves a token to its user.
    pub fn whoami(&self, token: &Token) -> Result<User> {
        match self.call(ApiRequest::Whoami {
            token: token.as_str().to_owned(),
        })? {
            ApiResponse::User(u) => Ok(u),
            other => Err(shape(&other)),
        }
    }

    // ----- repositories ------------------------------------------------------

    /// Creates a repository; returns its id.
    pub fn create_repo(&self, token: &Token, name: &str) -> Result<String> {
        match self.call(ApiRequest::CreateRepo {
            token: token.as_str().to_owned(),
            name: name.to_owned(),
        })? {
            ApiResponse::Id(id) => Ok(id),
            other => Err(shape(&other)),
        }
    }

    /// Imports an existing repository; returns its id.
    pub fn import_repo(&self, token: &Token, name: &str, repo: &Repository) -> Result<String> {
        let bundle = crate::api::RepoBundle::from_repository(repo).map_err(HubError::Git)?;
        match self.call(ApiRequest::ImportRepo {
            token: token.as_str().to_owned(),
            name: name.to_owned(),
            bundle,
        })? {
            ApiResponse::Id(id) => Ok(id),
            other => Err(shape(&other)),
        }
    }

    /// Grants a role (owner only).
    pub fn add_member(
        &self,
        token: &Token,
        repo_id: &str,
        username: &str,
        role: Role,
    ) -> Result<()> {
        match self.call(ApiRequest::AddMember {
            token: token.as_str().to_owned(),
            repo_id: repo_id.to_owned(),
            username: username.to_owned(),
            role,
        })? {
            ApiResponse::Unit => Ok(()),
            other => Err(shape(&other)),
        }
    }

    /// The role a user holds on a repository.
    pub fn role_of(&self, repo_id: &str, username: &str) -> Result<Option<Role>> {
        match self.call(ApiRequest::RoleOf {
            repo_id: repo_id.to_owned(),
            username: username.to_owned(),
        })? {
            ApiResponse::RoleOpt(r) => Ok(r),
            other => Err(shape(&other)),
        }
    }

    /// Whether the token's user may modify citations on the repository.
    pub fn can_write(&self, token: &Token, repo_id: &str) -> Result<bool> {
        match self.call(ApiRequest::CanWrite {
            token: token.as_str().to_owned(),
            repo_id: repo_id.to_owned(),
        })? {
            ApiResponse::Bool(b) => Ok(b),
            other => Err(shape(&other)),
        }
    }

    /// All repository ids.
    pub fn list_repos(&self) -> Result<Vec<String>> {
        match self.call(ApiRequest::ListRepos)? {
            ApiResponse::Names(names) => Ok(names),
            other => Err(shape(&other)),
        }
    }

    // ----- public reads ------------------------------------------------------

    /// Branch names.
    pub fn branches(&self, repo_id: &str) -> Result<Vec<String>> {
        match self.call(ApiRequest::Branches {
            repo_id: repo_id.to_owned(),
        })? {
            ApiResponse::Names(names) => Ok(names),
            other => Err(shape(&other)),
        }
    }

    /// File paths at a branch tip.
    pub fn list_files(&self, repo_id: &str, branch: &str) -> Result<Vec<RepoPath>> {
        match self.call(ApiRequest::ListFiles {
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
        })? {
            ApiResponse::Paths(paths) => Ok(paths),
            other => Err(shape(&other)),
        }
    }

    /// One file's bytes at a branch tip.
    pub fn read_file(&self, repo_id: &str, branch: &str, path: &RepoPath) -> Result<Vec<u8>> {
        match self.call(ApiRequest::ReadFile {
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            path: path.clone(),
        })? {
            ApiResponse::FileData(data) => Ok(data),
            other => Err(shape(&other)),
        }
    }

    /// Commit log of a branch, newest first. Unbounded — prefer
    /// [`HubClient::log_page`] against servers with deep histories.
    pub fn log(&self, repo_id: &str, branch: &str) -> Result<Vec<LogEntry>> {
        match self.call(ApiRequest::Log {
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
        })? {
            ApiResponse::Log(entries) => Ok(entries),
            other => Err(shape(&other)),
        }
    }

    /// One page of a branch's log (protocol v2): pass `None` to start at
    /// the tip, then the returned `next` cursor to continue.
    pub fn log_page(
        &self,
        repo_id: &str,
        branch: &str,
        cursor: Option<&str>,
        limit: Option<u32>,
    ) -> Result<Page<LogEntry>> {
        match self.call(ApiRequest::LogPage {
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            cursor: cursor.map(str::to_owned),
            limit,
        })? {
            ApiResponse::LogPage(page) => Ok(page),
            other => Err(shape(&other)),
        }
    }

    /// One page of the repository listing (protocol v2), ordered by id.
    pub fn list_repos_page(
        &self,
        cursor: Option<&str>,
        limit: Option<u32>,
    ) -> Result<Page<String>> {
        match self.call(ApiRequest::ListReposPage {
            cursor: cursor.map(str::to_owned),
            limit,
        })? {
            ApiResponse::NamesPage(page) => Ok(page),
            other => Err(shape(&other)),
        }
    }

    /// One page of the audit log (protocol v2), oldest first.
    pub fn audit_log_page(
        &self,
        cursor: Option<&str>,
        limit: Option<u32>,
    ) -> Result<Page<AuditEvent>> {
        match self.call(ApiRequest::AuditLogPage {
            cursor: cursor.map(str::to_owned),
            limit,
        })? {
            ApiResponse::AuditPage(page) => Ok(page),
            other => Err(shape(&other)),
        }
    }

    /// Asks the server which of `haves` it already holds reachable from
    /// the repository's refs (protocol v2).
    pub fn negotiate(&self, repo_id: &str, haves: &[ObjectId]) -> Result<Negotiation> {
        match self.call(ApiRequest::Negotiate {
            repo_id: repo_id.to_owned(),
            haves: haves.to_vec(),
        })? {
            ApiResponse::Negotiation(n) => Ok(n),
            other => Err(shape(&other)),
        }
    }

    /// Clones a hosted repository over the wire into a fresh in-memory
    /// repository.
    pub fn clone_repo(&self, repo_id: &str) -> Result<Repository> {
        match self.call(ApiRequest::CloneRepo {
            repo_id: repo_id.to_owned(),
        })? {
            ApiResponse::Bundle(bundle) => bundle
                .into_repository(Box::new(gitlite::MemStore::new()))
                .map_err(HubError::Git),
            other => Err(shape(&other)),
        }
    }

    // ----- citations ---------------------------------------------------------

    /// `GenCite` for a node at a branch tip (anonymous).
    pub fn generate_citation(
        &self,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
    ) -> Result<Citation> {
        match self.call(ApiRequest::GenerateCitation {
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            path: path.clone(),
        })? {
            ApiResponse::Citation(c) => Ok(c),
            other => Err(shape(&other)),
        }
    }

    /// The explicit citation entry at a path, if any.
    pub fn citation_entry(
        &self,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
    ) -> Result<Option<Citation>> {
        match self.call(ApiRequest::CitationEntry {
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            path: path.clone(),
        })? {
            ApiResponse::CitationOpt(c) => Ok(c),
            other => Err(shape(&other)),
        }
    }

    /// `AddCite` on the remote repository (member+).
    pub fn add_cite(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
        citation: Citation,
    ) -> Result<ObjectId> {
        match self.call(ApiRequest::AddCite {
            token: token.as_str().to_owned(),
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            path: path.clone(),
            citation,
        })? {
            ApiResponse::Commit(id) => Ok(id),
            other => Err(shape(&other)),
        }
    }

    /// `ModifyCite` on the remote repository (member+).
    pub fn modify_cite(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
        citation: Citation,
    ) -> Result<ObjectId> {
        match self.call(ApiRequest::ModifyCite {
            token: token.as_str().to_owned(),
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            path: path.clone(),
            citation,
        })? {
            ApiResponse::Commit(id) => Ok(id),
            other => Err(shape(&other)),
        }
    }

    /// `DelCite` on the remote repository (member+).
    pub fn del_cite(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        path: &RepoPath,
    ) -> Result<ObjectId> {
        match self.call(ApiRequest::DelCite {
            token: token.as_str().to_owned(),
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            path: path.clone(),
        })? {
            ApiResponse::Commit(id) => Ok(id),
            other => Err(shape(&other)),
        }
    }

    // ----- sync --------------------------------------------------------------

    /// Pushes `local_branch` of `local` to `branch` of the hosted
    /// repository. Negotiates first (protocol v2): the server names the
    /// commits it already has, and the request ships only the objects
    /// past that frontier instead of the whole branch closure. Falls
    /// back to a full-closure v1 push when the server refuses v2, or
    /// when the negotiated basis went away between the two calls (e.g. a
    /// concurrent gc after a force push).
    pub fn push(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        local: &Repository,
        local_branch: &str,
        force: bool,
    ) -> Result<ObjectId> {
        match self.push_negotiated(token, repo_id, branch, local, local_branch, force) {
            Err(HubError::Protocol(_))
            | Err(HubError::Git(gitlite::GitError::ObjectNotFound(_))) => {
                self.push_full(token, repo_id, branch, local, local_branch, force)
            }
            result => result,
        }
    }

    /// The v2 negotiated push: have/want exchange, then a delta bundle.
    /// Fails with a `protocol` error against a v1-only server; use
    /// [`HubClient::push`] for the version-negotiating wrapper.
    pub fn push_negotiated(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        local: &Repository,
        local_branch: &str,
        force: bool,
    ) -> Result<ObjectId> {
        let tip = local.branch_tip(local_branch).map_err(HubError::Git)?;
        let haves = sample_haves(local, tip)?;
        let reply = self.negotiate(repo_id, &haves)?;
        let common: HashSet<ObjectId> = reply.common.into_iter().collect();
        let bundle =
            RepoBundle::delta_from_branch(local, local_branch, &common).map_err(HubError::Git)?;
        match self.call(ApiRequest::Push {
            token: token.as_str().to_owned(),
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            force,
            bundle,
        })? {
            ApiResponse::Commit(id) => Ok(id),
            other => Err(shape(&other)),
        }
    }

    /// The v1 push: ships the full closure of the branch in one bundle.
    pub fn push_full(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        local: &Repository,
        local_branch: &str,
        force: bool,
    ) -> Result<ObjectId> {
        let bundle = RepoBundle::from_branch(local, local_branch).map_err(HubError::Git)?;
        match self.call(ApiRequest::Push {
            token: token.as_str().to_owned(),
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            force,
            bundle,
        })? {
            ApiResponse::Commit(id) => Ok(id),
            other => Err(shape(&other)),
        }
    }

    /// Brings the hosted branch up to date with the local one, shipping
    /// nothing when there is nothing to ship: a one-entry `log_page`
    /// first, and if the hosted branch's tip already equals the local
    /// one the push is skipped entirely. Otherwise behaves like
    /// [`HubClient::push`] without force (a branch the server does not
    /// have yet is simply pushed into existence).
    pub fn sync(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        local: &Repository,
        local_branch: &str,
    ) -> Result<ObjectId> {
        let tip = local.branch_tip(local_branch).map_err(HubError::Git)?;
        match self.log_page(repo_id, branch, None, Some(1)) {
            // Exactly current: the *target branch's* tip matches (tip
            // reachability alone is not enough — the commit could sit on
            // a different branch while `branch` lags or does not exist).
            Ok(page) if page.items.first().map(|e| e.id) == Some(tip) => Ok(tip),
            // Behind, missing branch, a v1-only server, or a follower
            // too stale to answer (`not_primary` — over a
            // [`FleetTransport`] the push below re-routes to the primary,
            // so the primary is only ever touched when a push is
            // actually needed): push decides.
            Ok(_)
            | Err(HubError::Protocol(_))
            | Err(HubError::NotPrimary { .. })
            | Err(HubError::Git(gitlite::GitError::BranchNotFound(_))) => {
                self.push(token, repo_id, branch, local, local_branch, false)
            }
            Err(e) => Err(e),
        }
    }

    /// Forks a repository under the token's user.
    pub fn fork(&self, token: &Token, src_repo_id: &str, new_name: &str) -> Result<String> {
        match self.call(ApiRequest::Fork {
            token: token.as_str().to_owned(),
            src_repo_id: src_repo_id.to_owned(),
            new_name: new_name.to_owned(),
        })? {
            ApiResponse::Id(id) => Ok(id),
            other => Err(shape(&other)),
        }
    }

    /// Server-side `MergeCite`.
    pub fn merge_branches(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        other_branch: &str,
        strategy: MergeStrategy,
    ) -> Result<MergeSummary> {
        match self.call(ApiRequest::MergeBranches {
            token: token.as_str().to_owned(),
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            other_branch: other_branch.to_owned(),
            strategy,
        })? {
            ApiResponse::Merge(m) => Ok(m),
            other => Err(shape(&other)),
        }
    }

    // ----- archives ----------------------------------------------------------

    /// Deposits a branch tip, minting a DOI.
    pub fn deposit(
        &self,
        token: &Token,
        repo_id: &str,
        branch: &str,
        title: &str,
    ) -> Result<Deposit> {
        match self.call(ApiRequest::Deposit {
            token: token.as_str().to_owned(),
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
            title: title.to_owned(),
        })? {
            ApiResponse::Deposit(d) => Ok(d),
            other => Err(shape(&other)),
        }
    }

    /// Resolves a minted DOI.
    pub fn resolve_doi(&self, doi: &str) -> Result<Deposit> {
        match self.call(ApiRequest::ResolveDoi {
            doi: doi.to_owned(),
        })? {
            ApiResponse::Deposit(d) => Ok(d),
            other => Err(shape(&other)),
        }
    }

    /// Archives a repository into the Software Heritage simulator.
    pub fn archive(&self, repo_id: &str) -> Result<ArchiveReport> {
        match self.call(ApiRequest::Archive {
            repo_id: repo_id.to_owned(),
        })? {
            ApiResponse::Archive(report) => Ok(report),
            other => Err(shape(&other)),
        }
    }

    /// Resolves an archived SWHID.
    pub fn resolve_swhid(&self, swhid: &str) -> Result<(SwhKind, ObjectId)> {
        match self.call(ApiRequest::ResolveSwhid {
            swhid: swhid.to_owned(),
        })? {
            ApiResponse::Swhid(kind, id) => Ok((kind, id)),
            other => Err(shape(&other)),
        }
    }

    /// Archive visits recorded for a repository.
    pub fn archive_visits(&self, repo_id: &str) -> Result<u64> {
        match self.call(ApiRequest::ArchiveVisits {
            repo_id: repo_id.to_owned(),
        })? {
            ApiResponse::Count(n) => Ok(n),
            other => Err(shape(&other)),
        }
    }

    // ----- credit & operations -----------------------------------------------

    /// Credited authors of a repository at a branch tip.
    pub fn credited_authors(
        &self,
        repo_id: &str,
        branch: &str,
    ) -> Result<Vec<(String, Vec<RepoPath>)>> {
        match self.call(ApiRequest::CreditedAuthors {
            repo_id: repo_id.to_owned(),
            branch: branch.to_owned(),
        })? {
            ApiResponse::Credits(c) => Ok(c),
            other => Err(shape(&other)),
        }
    }

    /// Repositories citing an author.
    pub fn find_repos_citing(&self, author: &str) -> Result<Vec<(String, Vec<RepoPath>)>> {
        match self.call(ApiRequest::FindReposCiting {
            author: author.to_owned(),
        })? {
            ApiResponse::Credits(c) => Ok(c),
            other => Err(shape(&other)),
        }
    }

    /// The audit log.
    pub fn audit_log(&self) -> Result<Vec<AuditEvent>> {
        match self.call(ApiRequest::AuditLog)? {
            ApiResponse::Audit(events) => Ok(events),
            other => Err(shape(&other)),
        }
    }

    /// Store statistics for one repository.
    pub fn store_stats(&self, repo_id: &str) -> Result<StoreStats> {
        match self.call(ApiRequest::StoreStats {
            repo_id: repo_id.to_owned(),
        })? {
            ApiResponse::Stats(s) => Ok(s),
            other => Err(shape(&other)),
        }
    }

    /// Runs storage maintenance over every hosted repository.
    pub fn maintenance(&self) -> Result<Vec<RepoMaintenance>> {
        match self.call(ApiRequest::Maintenance)? {
            ApiResponse::Maintenance(repos) => Ok(repos),
            other => Err(shape(&other)),
        }
    }

    /// The server's telemetry snapshot (protocol v3): per-method call
    /// counts and latency histograms, the socket transport's gauges and
    /// byte counters, and store-layer read statistics. Operator-scoped
    /// over a socket — the token must belong to a user the server
    /// granted the operator capability — which is why, unlike
    /// [`HubClient::maintenance`], it takes one. What `gitcite hub top`
    /// renders.
    pub fn server_metrics(&self, token: Option<&Token>) -> Result<MetricsSnapshot> {
        match self.call(ApiRequest::ServerMetrics {
            token: token.map(|t| t.as_str().to_owned()),
        })? {
            ApiResponse::Metrics(m) => Ok(m),
            other => Err(shape(&other)),
        }
    }

    // ----- replication & placement (protocol v3) ------------------------------

    /// The hub's replication status: logical epoch, audit length, every
    /// repository's `(head, refs)` frontier, and the deposit registry.
    /// What a follower's sync round starts from (see [`crate::repl`]).
    pub fn repl_status(&self) -> Result<ReplStatus> {
        match self.call(ApiRequest::ReplStatus)? {
            ApiResponse::ReplStatus(s) => Ok(s),
            other => Err(shape(&other)),
        }
    }

    /// Fetches a replication bundle for one repository: a delta past
    /// the common frontier implied by `haves`, covering **all**
    /// branches (full when nothing is common — the bootstrap path).
    pub fn repl_fetch(&self, repo_id: &str, haves: &[ObjectId]) -> Result<RepoBundle> {
        match self.call(ApiRequest::ReplFetch {
            repo_id: repo_id.to_owned(),
            haves: haves.to_vec(),
        })? {
            ApiResponse::Bundle(bundle) => Ok(bundle),
            other => Err(shape(&other)),
        }
    }

    /// Queries the fleet placement map, resolving the home hub for
    /// `repo_id` when one is named (see [`crate::placement`]).
    pub fn placement(&self, repo_id: Option<&str>) -> Result<PlacementInfo> {
        match self.call(ApiRequest::Placement {
            repo_id: repo_id.map(str::to_owned),
        })? {
            ApiResponse::Placement(p) => Ok(p),
            other => Err(shape(&other)),
        }
    }
}

/// How a [`FleetTransport`] opens a connection to an advertised primary
/// address; `None` when the address is unreachable.
pub type DialFn<T> = Box<dyn Fn(&str) -> Option<T> + Send + Sync>;

/// A fleet-aware transport for read scaling (see [`crate::repl`]):
/// requests go to a follower hub first, and any `not_primary` refusal —
/// a write, or a read the follower cannot serve inside its staleness
/// bound — is transparently retried against the primary at the address
/// the error carries. The primary connection is dialed lazily on the
/// first redirect and cached; once known, non-idempotent requests skip
/// the follower round trip entirely (the redirect is certain).
///
/// Wrap it in a [`HubClient`] like any other transport:
/// `HubClient::new(FleetTransport::new(follower, dial))`.
pub struct FleetTransport<T> {
    follower: T,
    dial: DialFn<T>,
    primary: Mutex<Option<(String, T)>>,
}

impl<T: Transport> FleetTransport<T> {
    /// Reads ride `follower`; `dial` opens a connection to an advertised
    /// primary address on the first redirect (returning `None` when the
    /// address is unreachable, in which case the refusal surfaces to the
    /// caller unchanged).
    pub fn new(follower: T, dial: impl Fn(&str) -> Option<T> + Send + Sync + 'static) -> Self {
        FleetTransport {
            follower,
            dial: Box::new(dial),
            primary: Mutex::new(None),
        }
    }

    /// The follower transport reads are routed to.
    pub fn follower(&self) -> &T {
        &self.follower
    }

    /// The primary address learned from redirects so far, if any.
    pub fn primary_addr(&self) -> Option<String> {
        self.primary.lock().as_ref().map(|(addr, _)| addr.clone())
    }

    /// Runs `f` against a (dialed-and-cached) primary connection for
    /// `addr`; `None` when dialing fails. The lock is held across the
    /// call, serializing primary traffic from this transport.
    fn with_primary<R>(&self, addr: &str, f: impl FnOnce(&T) -> R) -> Option<R> {
        let mut guard = self.primary.lock();
        if guard.as_ref().is_none_or(|(cached, _)| cached != addr) {
            *guard = Some((addr.to_owned(), (self.dial)(addr)?));
        }
        guard.as_ref().map(|(_, t)| f(t))
    }
}

/// The primary address a `not_primary` refusal advertises, if that is
/// what `response` is.
fn not_primary_addr(response: &ApiResponse) -> Option<String> {
    match response {
        ApiResponse::Error(e) if e.code == ErrorCode::NotPrimary => e.detail.clone(),
        _ => None,
    }
}

impl<T: Transport> Transport for FleetTransport<T> {
    fn send(&self, request: &str) -> String {
        let reply = self.follower.send(request);
        let parsed = ApiResponse::parse(&reply).unwrap_or_else(ApiResponse::Error);
        if let Some(addr) = not_primary_addr(&parsed) {
            if let Some(retried) = self.with_primary(&addr, |t| t.send(request)) {
                return retried;
            }
        }
        reply
    }

    fn exchange(&self, request: &ApiRequest) -> ApiResponse {
        if !request.is_idempotent() {
            let guard = self.primary.lock();
            if let Some((_, t)) = guard.as_ref() {
                return t.exchange(request);
            }
        }
        let response = self.follower.exchange(request);
        if let Some(addr) = not_primary_addr(&response) {
            if let Some(retried) = self.with_primary(&addr, |t| t.exchange(request)) {
                return retried;
            }
        }
        response
    }
}

fn shape(response: &ApiResponse) -> HubError {
    HubError::Protocol(format!(
        "response shape does not match the request (got {})",
        response.kind()
    ))
}

/// Have sample for negotiation: the tip, every commit of the recent
/// first-parent history, then exponentially sparser picks, plus the root
/// (so histories sharing only their origin still negotiate a basis).
/// Capped — a sparse sample merely means a few already-known commits get
/// re-sent, never a wrong result.
fn sample_haves(local: &Repository, tip: ObjectId) -> Result<Vec<ObjectId>> {
    const DENSE: usize = 16;
    const CAP: usize = 64;
    let chain = local.first_parent_chain(tip).map_err(HubError::Git)?;
    let mut haves = Vec::new();
    let mut idx = 0;
    let mut step = 1;
    while idx < chain.len() && haves.len() < CAP {
        haves.push(chain[idx]);
        if haves.len() >= DENSE {
            step *= 2;
        }
        idx += step;
    }
    if let Some(&root) = chain.last() {
        if haves.last() != Some(&root) {
            haves.push(root);
        }
    }
    Ok(haves)
}
