//! The versioned wire protocol of the Cloud Platform API.
//!
//! The paper's Figure 1 places a "Cloud Platform API" between the browser
//! extension, the local tool and the hosting platform. This module is that
//! seam made concrete: every hub operation is a typed [`ApiRequest`], every
//! outcome a typed [`ApiResponse`], and both are sjson-encodable so any
//! transport that can move strings (in-process call, socket, HTTP body)
//! can carry the full platform surface. [`crate::Hub::dispatch`] routes
//! requests; [`crate::HubClient`] speaks the protocol from the client side
//! through a [`crate::Transport`].
//!
//! # Wire format
//!
//! A request is one JSON object:
//!
//! ```text
//! {"v": 1, "method": "add_cite", "params": {"token": "...", "repo_id":
//!  "alice/p", "branch": "main", "path": "src/lib.rs", "citation": {...}}}
//! ```
//!
//! A response is one JSON object carrying either a `result` or an `error`,
//! never both:
//!
//! ```text
//! {"v": 1, "result": {"type": "commit", "id": "<40-hex>"}}
//! {"v": 1, "error": {"code": "permission_denied", "message": "...",
//!  "detail": "bob"}}
//! ```
//!
//! Results are self-describing (`type` tag), so responses parse without
//! knowing which request produced them. Binary payloads (file contents,
//! object bytes in a [`RepoBundle`]) travel hex-encoded; object ids are
//! their 40-char hex form; repository paths are `/`-joined strings with
//! `""` meaning the root.
//!
//! # Versioning rules
//!
//! * `v` is the protocol major version. This build speaks every version
//!   from [`PROTOCOL_V1`] through [`PROTOCOL_VERSION`] (currently 3): a
//!   request outside that range is refused with a `protocol` error.
//! * Every envelope is stamped with the *lowest* version that can carry
//!   it ([`ApiRequest::version`] / [`ApiResponse::version`]), so a
//!   v1-era method still encodes byte-identically to the v1 wire form —
//!   the golden fixtures in `tests/wire_protocol.rs` pin this. Using a
//!   v2 construct (a v2-only method, or a delta [`RepoBundle`]) inside a
//!   `"v":1` envelope is a `protocol` error: a v1 peer would misread it.
//!   The same rule applies one version up: v3 constructs (`batch`,
//!   `objects_ext`) inside a `"v":1` or `"v":2` envelope are refused.
//! * Within a version, *adding* a method or a new optional param is
//!   compatible; renaming/removing methods, changing a param's type, or
//!   changing a result's shape requires bumping `v`.
//! * Unknown methods fail with `protocol`; unknown params are ignored
//!   (callers from a newer minor revision may send extras).
//!
//! # What protocol v2 adds
//!
//! * **Push negotiation** — `negotiate` sends the client's ref tips plus
//!   a sample of recent commit ids ("haves"); the server partitions them
//!   into `common` (reachable from its refs, computed via the
//!   commit-graph-accelerated ancestor walk) and `missing`. The client
//!   then ships a *delta* [`RepoBundle`] ([`RepoBundle::delta_from_branch`])
//!   carrying only the objects past the common frontier; the bundle's
//!   `basis` field names the commits the receiver must already have.
//! * **Paginated reads** — `log_page`, `audit_log_page` and
//!   `list_repos_page` take an opaque `cursor` plus a `limit` and return
//!   a typed [`Page`] (`items` + `next` cursor), so no read materializes
//!   an unbounded array. Cursors pin their position (a log cursor pins
//!   the tip it started from), so pages stay stable while writers
//!   advance the branch.
//! * A **line-framed TCP transport** rides on the same envelopes — see
//!   [`crate::transport`] for framing and per-connection auth scoping.
//!
//! # What protocol v3 adds
//!
//! v3 changes no method semantics; it changes how envelopes travel.
//!
//! * **Binary framing with an object side channel** — over the v3
//!   length-prefixed framing ([`crate::transport`]), a bundle-carrying
//!   envelope may externalize its object payloads: the `objects` array
//!   is replaced by `"objects_ext": n`, and the *n* `(id, bytes)` records
//!   travel beside the envelope as compressed raw-byte frames, in order.
//!   This ends the hex doubling of v1/v2 bundles (~2× wire bytes).
//!   [`ApiRequest::encode_ext`] / [`ApiRequest::parse_ext`] (and the
//!   [`ApiResponse`] counterparts) are the split/join points. The rules:
//!   an `objects_ext` envelope is only valid with a side channel, must be
//!   stamped `"v":3`, must consume the side channel exactly (no
//!   leftovers), and a bundle may not carry both `objects` and
//!   `objects_ext`. Plain [`ApiRequest::parse`] of an `objects_ext`
//!   envelope is a `protocol` error — the line framing has no side
//!   channel to draw from.
//! * **Batch envelopes** — `{"v":3,"method":"batch","params":
//!   {"requests":[<envelope>, ...]}}` carries several requests in one
//!   round trip; the response is `{"type":"batch","responses":
//!   [<envelope>, ...]}` in request order, items individually succeeding
//!   or failing. Batches cannot nest, and batch items always carry their
//!   objects inline (no `objects_ext` inside a batch). The extension
//!   popup's sign-in (`whoami` + `can_write` + citation lookup) rides in
//!   one batch.
//!
//! # Error codes
//!
//! Structured codes replace stringly errors. `detail` carries the variant
//! payload (a username, repository id, path, ...) verbatim, so clients can
//! reconstruct a typed [`HubError`] without parsing prose:
//!
//! | code                     | meaning                                       |
//! |--------------------------|-----------------------------------------------|
//! | `auth_failed`            | token missing, unknown or revoked             |
//! | `permission_denied`      | authenticated but not allowed                 |
//! | `user_not_found`         | unknown user (`detail` = username)            |
//! | `user_exists`            | username taken (`detail` = username)          |
//! | `repo_not_found`         | unknown repository (`detail` = repo id)       |
//! | `repo_exists`            | repository id taken (`detail` = repo id)      |
//! | `doi_not_found`          | unknown DOI (`detail` = doi)                  |
//! | `swhid_not_found`        | unknown SWHID (`detail` = swhid)              |
//! | `bad_request`            | malformed operation (bad name, branch, ...)   |
//! | `branch_not_found`       | VCS: no such branch (`detail` = branch)       |
//! | `branch_exists`          | VCS: branch taken (`detail` = branch)         |
//! | `non_fast_forward`       | VCS: push rejected (`detail` = branch)        |
//! | `file_not_found`         | VCS: no such file (`detail` = path)           |
//! | `object_not_found`       | VCS: missing object (`detail` = hex id)       |
//! | `nothing_to_commit`      | VCS: worktree identical to HEAD               |
//! | `merge_conflicts`        | VCS: conflicted merge (`detail` = count)      |
//! | `empty_repository`       | VCS: repository has no commits                |
//! | `git`                    | any other VCS failure                         |
//! | `already_cited`          | AddCite on a cited path (`detail` = path)     |
//! | `not_cited`              | Modify/DelCite on uncited path (`detail`)     |
//! | `root_citation_required` | DelCite on the root                           |
//! | `path_missing`           | cite op on absent path (`detail` = path)      |
//! | `reserved_path`          | cite op on `citation.cite` (`detail` = path)  |
//! | `unresolved_conflict`    | merge conflict refused (`detail` = path)      |
//! | `destination_exists`     | CopyCite target taken (`detail` = path)       |
//! | `source_missing`         | CopyCite source absent (`detail` = path)      |
//! | `bad_citation_file`      | citation.cite failed to parse (`detail` = why)|
//! | `cite`                   | any other citation-layer failure              |
//! | `token_expired`          | token lifetime elapsed; `refresh` it          |
//! | `rate_limited`           | token bucket or login lockout (`detail` = retry-after ticks) |
//! | `quota_exceeded`         | size quota refused the write (`detail` = why) |
//! | `server_busy`            | connection shed under overload (`detail` = retry-after secs) |
//! | `not_primary`            | follower hub refuses write/stale read (`detail` = primary addr) |
//! | `protocol`               | envelope/method/params malformed              |
//! | `transport_closed`       | connection dropped mid-request (client-side)  |
//!
//! `transport_closed` is synthesized by client transports when the peer
//! hangs up between request and response; a server never sends it.
//! `server_busy` is the one error a server sends *outside* dispatch: the
//! reactor answers the first request on a shed connection with it and
//! closes, so an overloaded server costs one frame per refused peer
//! instead of a stalled queue slot.
//!
//! Codes whose `detail` is structurally required (the path/id-carrying
//! ones) reconstruct to a `protocol` error when a peer omits it — a
//! typed error naming an invented payload would be worse than refusing.
//! The residual `git`/`cite` codes reconstruct as message-carrying
//! variants (`GitError::Io`, `CiteError::BadCitationFile`): the family
//! survives the wire, the exact variant does not.

use crate::audit::AuditEvent;
use crate::error::HubError;
use crate::heritage::{ArchiveReport, SwhKind};
use crate::perm::Role;
use crate::server::{LogEntry, User};
use crate::zenodo::Deposit;
use citekit::{Citation, MergeStrategy, Resolution};
use gitlite::{CacheStats, ObjectId, ObjectStore, RepoPath, Repository};
use sjson::{Object, Value};
use std::collections::HashSet;
use std::fmt;

/// Protocol major version 1: the original method surface, full-closure
/// bundles, unbounded reads.
pub const PROTOCOL_V1: i64 = 1;

/// Protocol major version 2: adds push negotiation (`negotiate` + delta
/// bundles) and paginated reads (`log_page`, `audit_log_page`,
/// `list_repos_page`).
pub const PROTOCOL_V2: i64 = 2;

/// Protocol major version 3: adds batch envelopes and the binary-framing
/// object side channel (`objects_ext`). See the module docs; the framing
/// itself lives in [`crate::transport`].
pub const PROTOCOL_V3: i64 = 3;

/// The newest protocol major version this build speaks. Envelopes are
/// stamped with the lowest version that can carry them, so bumping this
/// never changes the bytes of older methods.
pub const PROTOCOL_VERSION: i64 = PROTOCOL_V3;

/// Default page size applied when a paginated request omits `limit`.
pub const DEFAULT_PAGE_SIZE: usize = 100;

/// Hard ceiling on a page: larger `limit`s are clamped, keeping one
/// response bounded no matter what a client asks for.
pub const MAX_PAGE_SIZE: usize = 500;

/// Result alias for wire-level operations.
pub type WireResult<T> = std::result::Result<T, WireError>;

// ---------------------------------------------------------------------
// Error codes
// ---------------------------------------------------------------------

/// Stable machine-readable failure categories (see the module-level
/// error-code table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the table in the module docs is the documentation
pub enum ErrorCode {
    AuthFailed,
    PermissionDenied,
    UserNotFound,
    UserExists,
    RepoNotFound,
    RepoExists,
    DoiNotFound,
    SwhidNotFound,
    BadRequest,
    BranchNotFound,
    BranchExists,
    NonFastForward,
    FileNotFound,
    ObjectNotFound,
    NothingToCommit,
    MergeConflicts,
    EmptyRepository,
    Git,
    AlreadyCited,
    NotCited,
    RootCitationRequired,
    PathMissing,
    ReservedPath,
    UnresolvedConflict,
    DestinationExists,
    SourceMissing,
    BadCitationFile,
    Cite,
    TokenExpired,
    RateLimited,
    QuotaExceeded,
    ServerBusy,
    NotPrimary,
    Protocol,
    TransportClosed,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::AuthFailed => "auth_failed",
            ErrorCode::PermissionDenied => "permission_denied",
            ErrorCode::UserNotFound => "user_not_found",
            ErrorCode::UserExists => "user_exists",
            ErrorCode::RepoNotFound => "repo_not_found",
            ErrorCode::RepoExists => "repo_exists",
            ErrorCode::DoiNotFound => "doi_not_found",
            ErrorCode::SwhidNotFound => "swhid_not_found",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::BranchNotFound => "branch_not_found",
            ErrorCode::BranchExists => "branch_exists",
            ErrorCode::NonFastForward => "non_fast_forward",
            ErrorCode::FileNotFound => "file_not_found",
            ErrorCode::ObjectNotFound => "object_not_found",
            ErrorCode::NothingToCommit => "nothing_to_commit",
            ErrorCode::MergeConflicts => "merge_conflicts",
            ErrorCode::EmptyRepository => "empty_repository",
            ErrorCode::Git => "git",
            ErrorCode::AlreadyCited => "already_cited",
            ErrorCode::NotCited => "not_cited",
            ErrorCode::RootCitationRequired => "root_citation_required",
            ErrorCode::PathMissing => "path_missing",
            ErrorCode::ReservedPath => "reserved_path",
            ErrorCode::UnresolvedConflict => "unresolved_conflict",
            ErrorCode::DestinationExists => "destination_exists",
            ErrorCode::SourceMissing => "source_missing",
            ErrorCode::BadCitationFile => "bad_citation_file",
            ErrorCode::Cite => "cite",
            ErrorCode::TokenExpired => "token_expired",
            ErrorCode::RateLimited => "rate_limited",
            ErrorCode::QuotaExceeded => "quota_exceeded",
            ErrorCode::ServerBusy => "server_busy",
            ErrorCode::NotPrimary => "not_primary",
            ErrorCode::Protocol => "protocol",
            ErrorCode::TransportClosed => "transport_closed",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "auth_failed" => ErrorCode::AuthFailed,
            "permission_denied" => ErrorCode::PermissionDenied,
            "user_not_found" => ErrorCode::UserNotFound,
            "user_exists" => ErrorCode::UserExists,
            "repo_not_found" => ErrorCode::RepoNotFound,
            "repo_exists" => ErrorCode::RepoExists,
            "doi_not_found" => ErrorCode::DoiNotFound,
            "swhid_not_found" => ErrorCode::SwhidNotFound,
            "bad_request" => ErrorCode::BadRequest,
            "branch_not_found" => ErrorCode::BranchNotFound,
            "branch_exists" => ErrorCode::BranchExists,
            "non_fast_forward" => ErrorCode::NonFastForward,
            "file_not_found" => ErrorCode::FileNotFound,
            "object_not_found" => ErrorCode::ObjectNotFound,
            "nothing_to_commit" => ErrorCode::NothingToCommit,
            "merge_conflicts" => ErrorCode::MergeConflicts,
            "empty_repository" => ErrorCode::EmptyRepository,
            "git" => ErrorCode::Git,
            "already_cited" => ErrorCode::AlreadyCited,
            "not_cited" => ErrorCode::NotCited,
            "root_citation_required" => ErrorCode::RootCitationRequired,
            "path_missing" => ErrorCode::PathMissing,
            "reserved_path" => ErrorCode::ReservedPath,
            "unresolved_conflict" => ErrorCode::UnresolvedConflict,
            "destination_exists" => ErrorCode::DestinationExists,
            "source_missing" => ErrorCode::SourceMissing,
            "bad_citation_file" => ErrorCode::BadCitationFile,
            "cite" => ErrorCode::Cite,
            "token_expired" => ErrorCode::TokenExpired,
            "rate_limited" => ErrorCode::RateLimited,
            "quota_exceeded" => ErrorCode::QuotaExceeded,
            "server_busy" => ErrorCode::ServerBusy,
            "not_primary" => ErrorCode::NotPrimary,
            "protocol" => ErrorCode::Protocol,
            "transport_closed" => ErrorCode::TransportClosed,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A failure as it travels on the wire: a stable code, a human-readable
/// message, and (when the originating error carried one) the raw variant
/// payload in `detail`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable description (the originating error's `Display`).
    pub message: String,
    /// The originating variant's payload, verbatim (username, repo id,
    /// path, ...), when it had one.
    pub detail: Option<String>,
}

impl WireError {
    /// Classifies a [`HubError`] into its wire form.
    pub fn from_hub(e: &HubError) -> WireError {
        let message = e.to_string();
        let (code, detail) = match e {
            HubError::AuthFailed => (ErrorCode::AuthFailed, None),
            HubError::PermissionDenied(s) => (ErrorCode::PermissionDenied, Some(s.clone())),
            HubError::UserNotFound(s) => (ErrorCode::UserNotFound, Some(s.clone())),
            HubError::UserExists(s) => (ErrorCode::UserExists, Some(s.clone())),
            HubError::RepoNotFound(s) => (ErrorCode::RepoNotFound, Some(s.clone())),
            HubError::RepoExists(s) => (ErrorCode::RepoExists, Some(s.clone())),
            HubError::DoiNotFound(s) => (ErrorCode::DoiNotFound, Some(s.clone())),
            HubError::SwhidNotFound(s) => (ErrorCode::SwhidNotFound, Some(s.clone())),
            HubError::BadRequest(s) => (ErrorCode::BadRequest, Some(s.clone())),
            HubError::TokenExpired => (ErrorCode::TokenExpired, None),
            HubError::RateLimited { retry_after } => {
                (ErrorCode::RateLimited, Some(retry_after.to_string()))
            }
            HubError::QuotaExceeded(s) => (ErrorCode::QuotaExceeded, Some(s.clone())),
            HubError::ServerBusy { retry_after } => {
                (ErrorCode::ServerBusy, Some(retry_after.to_string()))
            }
            HubError::NotPrimary { primary } => (ErrorCode::NotPrimary, Some(primary.clone())),
            HubError::Protocol(s) => (ErrorCode::Protocol, Some(s.clone())),
            HubError::TransportClosed(s) => (ErrorCode::TransportClosed, Some(s.clone())),
            HubError::Git(g) => classify_git(g),
            HubError::Cite(c) => match c {
                citekit::CiteError::Git(g) => classify_git(g),
                citekit::CiteError::AlreadyCited(p) => {
                    (ErrorCode::AlreadyCited, Some(p.to_string()))
                }
                citekit::CiteError::NotCited(p) => (ErrorCode::NotCited, Some(p.to_string())),
                citekit::CiteError::RootCitationRequired => (ErrorCode::RootCitationRequired, None),
                citekit::CiteError::PathMissing(p) => (ErrorCode::PathMissing, Some(p.to_string())),
                citekit::CiteError::ReservedPath(p) => {
                    (ErrorCode::ReservedPath, Some(p.to_string()))
                }
                citekit::CiteError::UnresolvedConflict(p) => {
                    (ErrorCode::UnresolvedConflict, Some(p.to_string()))
                }
                citekit::CiteError::DestinationExists(p) => {
                    (ErrorCode::DestinationExists, Some(p.to_string()))
                }
                citekit::CiteError::SourceMissing(p) => {
                    (ErrorCode::SourceMissing, Some(p.to_string()))
                }
                citekit::CiteError::BadCitationFile(msg) => {
                    (ErrorCode::BadCitationFile, Some(msg.clone()))
                }
                _ => (ErrorCode::Cite, None),
            },
        };
        WireError {
            code,
            message,
            detail,
        }
    }

    /// Reconstructs the closest typed [`HubError`]. Hub-level variants
    /// come back exactly (their payload rides in `detail`); the VCS and
    /// citation-layer variants a caller can act on have their own codes
    /// and reconstruct precisely, while the residual `git`/`cite` codes
    /// come back in the right family carrying the wire message. A
    /// path/id-carrying code whose `detail` is missing or unparseable
    /// becomes a `protocol` error — a typed error naming an invented
    /// payload would mislead.
    pub fn into_hub(self) -> HubError {
        let WireError {
            code,
            message,
            detail,
        } = self;
        let payload = |d: Option<String>| d.unwrap_or_else(|| message.clone());
        // Required structured details; `Err` is the honest protocol error.
        let path = |d: Option<String>| -> Result<RepoPath, HubError> {
            d.as_deref()
                .and_then(|s| RepoPath::parse(s).ok())
                .ok_or_else(|| {
                    HubError::Protocol(format!(
                        "error code {code} requires a path detail ({message})"
                    ))
                })
        };
        let cite = |r: Result<RepoPath, HubError>, make: fn(RepoPath) -> citekit::CiteError| match r
        {
            Ok(p) => HubError::Cite(make(p)),
            Err(e) => e,
        };
        match code {
            ErrorCode::AuthFailed => HubError::AuthFailed,
            ErrorCode::PermissionDenied => HubError::PermissionDenied(payload(detail)),
            ErrorCode::UserNotFound => HubError::UserNotFound(payload(detail)),
            ErrorCode::UserExists => HubError::UserExists(payload(detail)),
            ErrorCode::RepoNotFound => HubError::RepoNotFound(payload(detail)),
            ErrorCode::RepoExists => HubError::RepoExists(payload(detail)),
            ErrorCode::DoiNotFound => HubError::DoiNotFound(payload(detail)),
            ErrorCode::SwhidNotFound => HubError::SwhidNotFound(payload(detail)),
            ErrorCode::BadRequest => HubError::BadRequest(payload(detail)),
            ErrorCode::TokenExpired => HubError::TokenExpired,
            ErrorCode::RateLimited => match detail.as_deref().and_then(|d| d.parse().ok()) {
                Some(retry_after) => HubError::RateLimited { retry_after },
                None => HubError::Protocol(format!(
                    "error code rate_limited requires a retry-after detail ({message})"
                )),
            },
            ErrorCode::QuotaExceeded => HubError::QuotaExceeded(payload(detail)),
            ErrorCode::ServerBusy => match detail.as_deref().and_then(|d| d.parse().ok()) {
                Some(retry_after) => HubError::ServerBusy { retry_after },
                None => HubError::Protocol(format!(
                    "error code server_busy requires a retry-after detail ({message})"
                )),
            },
            ErrorCode::NotPrimary => match detail {
                Some(primary) => HubError::NotPrimary { primary },
                None => HubError::Protocol(format!(
                    "error code not_primary requires a primary-address detail ({message})"
                )),
            },
            ErrorCode::Protocol => HubError::Protocol(payload(detail)),
            ErrorCode::TransportClosed => HubError::TransportClosed(payload(detail)),
            ErrorCode::BranchNotFound => {
                HubError::Git(gitlite::GitError::BranchNotFound(payload(detail)))
            }
            ErrorCode::BranchExists => {
                HubError::Git(gitlite::GitError::BranchExists(payload(detail)))
            }
            ErrorCode::NonFastForward => HubError::Git(gitlite::GitError::NonFastForward {
                branch: payload(detail),
            }),
            ErrorCode::FileNotFound => match path(detail) {
                Ok(p) => HubError::Git(gitlite::GitError::FileNotFound(p)),
                Err(e) => e,
            },
            ErrorCode::ObjectNotFound => {
                match detail.as_deref().and_then(gitlite::ObjectId::from_hex) {
                    Some(id) => HubError::Git(gitlite::GitError::ObjectNotFound(id)),
                    None => HubError::Protocol(format!(
                        "error code object_not_found requires a hex id detail ({message})"
                    )),
                }
            }
            ErrorCode::NothingToCommit => HubError::Git(gitlite::GitError::NothingToCommit),
            ErrorCode::MergeConflicts => match detail.as_deref().and_then(|d| d.parse().ok()) {
                Some(n) => HubError::Git(gitlite::GitError::MergeConflicts(n)),
                None => HubError::Protocol(format!(
                    "error code merge_conflicts requires a count detail ({message})"
                )),
            },
            ErrorCode::EmptyRepository => HubError::Git(gitlite::GitError::EmptyRepository),
            ErrorCode::Git => HubError::Git(gitlite::GitError::Io(message)),
            ErrorCode::AlreadyCited => cite(path(detail), citekit::CiteError::AlreadyCited),
            ErrorCode::NotCited => cite(path(detail), citekit::CiteError::NotCited),
            ErrorCode::RootCitationRequired => {
                HubError::Cite(citekit::CiteError::RootCitationRequired)
            }
            ErrorCode::PathMissing => cite(path(detail), citekit::CiteError::PathMissing),
            ErrorCode::ReservedPath => cite(path(detail), citekit::CiteError::ReservedPath),
            ErrorCode::UnresolvedConflict => {
                cite(path(detail), citekit::CiteError::UnresolvedConflict)
            }
            ErrorCode::DestinationExists => {
                cite(path(detail), citekit::CiteError::DestinationExists)
            }
            ErrorCode::SourceMissing => cite(path(detail), citekit::CiteError::SourceMissing),
            ErrorCode::BadCitationFile => {
                HubError::Cite(citekit::CiteError::BadCitationFile(payload(detail)))
            }
            ErrorCode::Cite => HubError::Cite(citekit::CiteError::BadCitationFile(message)),
        }
    }

    fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("code", self.code.as_str());
        o.insert("message", self.message.as_str());
        if let Some(d) = &self.detail {
            o.insert("detail", d.as_str());
        }
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<WireError> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("error must be an object"))?;
        let code_str = req_str(o, "code")?;
        let code = ErrorCode::parse(&code_str)
            .ok_or_else(|| proto(format!("unknown error code {code_str:?}")))?;
        Ok(WireError {
            code,
            message: req_str(o, "message")?,
            detail: opt_str(o, "detail")?,
        })
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

fn classify_git(g: &gitlite::GitError) -> (ErrorCode, Option<String>) {
    match g {
        gitlite::GitError::BranchNotFound(b) => (ErrorCode::BranchNotFound, Some(b.clone())),
        gitlite::GitError::BranchExists(b) => (ErrorCode::BranchExists, Some(b.clone())),
        gitlite::GitError::NonFastForward { branch } => {
            (ErrorCode::NonFastForward, Some(branch.clone()))
        }
        gitlite::GitError::FileNotFound(p) => (ErrorCode::FileNotFound, Some(p.to_string())),
        gitlite::GitError::ObjectNotFound(id) => (ErrorCode::ObjectNotFound, Some(id.to_hex())),
        gitlite::GitError::NothingToCommit => (ErrorCode::NothingToCommit, None),
        gitlite::GitError::MergeConflicts(n) => (ErrorCode::MergeConflicts, Some(n.to_string())),
        gitlite::GitError::EmptyRepository => (ErrorCode::EmptyRepository, None),
        _ => (ErrorCode::Git, None),
    }
}

fn proto(msg: impl Into<String>) -> WireError {
    WireError {
        code: ErrorCode::Protocol,
        message: msg.into(),
        detail: None,
    }
}

// ---------------------------------------------------------------------
// Wire-level compound types
// ---------------------------------------------------------------------

/// A repository serialized for transfer: the payload of `clone_repo`
/// responses and `push` / `import_repo` requests. Object bytes are the
/// canonical content-addressed encoding, so the receiving side verifies
/// every object against its claimed id while loading (`put_raw`).
///
/// A bundle comes in two forms. A **full** bundle (`basis` empty) carries
/// the complete closure of its refs and can materialize a standalone
/// repository. A **delta** bundle (protocol v2) carries only the objects
/// past a negotiated frontier: `basis` names commits the receiver must
/// already hold, and `objects` is everything reachable from the refs
/// that is not covered by the basis commits' closures. Delta bundles can
/// only be *applied* to a repository that has the basis
/// ([`crate::Hub`]'s push path); materializing one standalone fails with
/// `ObjectNotFound`. On the wire the `basis` key is simply absent for
/// full bundles, so the v1 encoding is unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct RepoBundle {
    /// Repository name.
    pub name: String,
    /// Branch the receiver should check out, when known.
    pub head: Option<String>,
    /// `(branch, tip)` pairs.
    pub refs: Vec<(String, ObjectId)>,
    /// `(id, canonical bytes)` for every transferred object.
    pub objects: Vec<(ObjectId, Vec<u8>)>,
    /// Commits the receiver must already have (with their full closures)
    /// for `objects` to be complete. Empty = full bundle.
    pub basis: Vec<ObjectId>,
}

impl RepoBundle {
    /// Bundles every branch of `repo` (the `clone` / `import` payload).
    pub fn from_repository(repo: &Repository) -> gitlite::Result<RepoBundle> {
        let refs: Vec<(String, ObjectId)> = repo
            .branches()
            .map(|(b, tip)| (b.to_owned(), tip))
            .collect();
        let roots: Vec<ObjectId> = refs.iter().map(|(_, tip)| *tip).collect();
        Self::bundle(repo, refs, &roots, repo.current_branch().map(str::to_owned))
    }

    /// Bundles a single branch of `repo` (the `push` payload).
    pub fn from_branch(repo: &Repository, branch: &str) -> gitlite::Result<RepoBundle> {
        let tip = repo.branch_tip(branch)?;
        Self::bundle(
            repo,
            vec![(branch.to_owned(), tip)],
            &[tip],
            Some(branch.to_owned()),
        )
    }

    fn bundle(
        repo: &Repository,
        refs: Vec<(String, ObjectId)>,
        roots: &[ObjectId],
        head: Option<String>,
    ) -> gitlite::Result<RepoBundle> {
        let mut objects = Vec::new();
        for id in repo.odb().reachable_closure(roots)? {
            objects.push((id, repo.odb().get(id)?.canonical_bytes()));
        }
        Ok(RepoBundle {
            name: repo.name().to_owned(),
            head,
            refs,
            objects,
            basis: Vec::new(),
        })
    }

    /// True for the negotiated delta form (protocol v2): the bundle is
    /// only complete relative to its `basis` commits.
    pub fn is_delta(&self) -> bool {
        !self.basis.is_empty()
    }

    /// Bundles one branch of `repo` *incrementally*: only the objects
    /// past the `common` frontier (commit ids the receiver confirmed
    /// having, e.g. a `negotiate` reply). The walk from the tip stops at
    /// the first common commit on every path; those stop commits become
    /// the bundle's `basis`, and their tree closures are subtracted from
    /// the shipped objects (a commit on the receiver is there with its
    /// complete closure). With an empty `common` this degrades to a full
    /// bundle — same bytes as [`RepoBundle::from_branch`].
    pub fn delta_from_branch(
        repo: &Repository,
        branch: &str,
        common: &HashSet<ObjectId>,
    ) -> gitlite::Result<RepoBundle> {
        let tip = repo.branch_tip(branch)?;
        // New commits: everything from the tip down to the frontier.
        let mut new_commits = Vec::new();
        let mut basis = Vec::new();
        let mut seen = HashSet::new();
        let mut stack = vec![tip];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            if common.contains(&id) {
                basis.push(id);
                continue;
            }
            let obj = repo.odb().commit_ref(id)?;
            stack.extend_from_slice(&obj.as_commit().expect("checked kind").parents);
            new_commits.push(id);
        }
        // Objects the receiver provably has: the basis commits' tree
        // closures. `known` then doubles as the dedupe set for shipping.
        let mut known: HashSet<ObjectId> = HashSet::new();
        for &b in &basis {
            collect_tree_closure(repo, repo.tree_of(b)?, &mut known)?;
        }
        let mut objects = Vec::new();
        for &id in &new_commits {
            objects.push((id, repo.odb().get(id)?.canonical_bytes()));
            let mut stack = vec![repo.tree_of(id)?];
            while let Some(oid) = stack.pop() {
                if !known.insert(oid) {
                    continue;
                }
                let obj = repo.odb().get(oid)?;
                if let gitlite::Object::Tree(t) = &*obj {
                    for (_, e) in t.iter() {
                        stack.push(e.id);
                    }
                }
                objects.push((oid, obj.canonical_bytes()));
            }
        }
        Ok(RepoBundle {
            name: repo.name().to_owned(),
            head: Some(branch.to_owned()),
            refs: vec![(branch.to_owned(), tip)],
            objects,
            basis,
        })
    }

    /// Bundles *every* branch of `repo` incrementally past the `common`
    /// frontier — the replication fetch payload ([`crate::repl`]): the
    /// walk starts from all branch tips at once, stop commits become the
    /// shared `basis`, and `head`/`refs` mirror the whole repository so
    /// the receiver can force its refs to match. With an empty `common`
    /// this degrades to a full bundle (same objects as
    /// [`RepoBundle::from_repository`]), which is also how a follower
    /// bootstraps a repository it has never seen.
    pub fn delta_from_refs(
        repo: &Repository,
        common: &HashSet<ObjectId>,
    ) -> gitlite::Result<RepoBundle> {
        let refs: Vec<(String, ObjectId)> = repo
            .branches()
            .map(|(b, tip)| (b.to_owned(), tip))
            .collect();
        let mut new_commits = Vec::new();
        let mut basis = Vec::new();
        let mut seen = HashSet::new();
        let mut stack: Vec<ObjectId> = refs.iter().map(|(_, tip)| *tip).collect();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            if common.contains(&id) {
                basis.push(id);
                continue;
            }
            let obj = repo.odb().commit_ref(id)?;
            stack.extend_from_slice(&obj.as_commit().expect("checked kind").parents);
            new_commits.push(id);
        }
        let mut known: HashSet<ObjectId> = HashSet::new();
        for &b in &basis {
            collect_tree_closure(repo, repo.tree_of(b)?, &mut known)?;
        }
        let mut objects = Vec::new();
        for &id in &new_commits {
            objects.push((id, repo.odb().get(id)?.canonical_bytes()));
            let mut stack = vec![repo.tree_of(id)?];
            while let Some(oid) = stack.pop() {
                if !known.insert(oid) {
                    continue;
                }
                let obj = repo.odb().get(oid)?;
                if let gitlite::Object::Tree(t) = &*obj {
                    for (_, e) in t.iter() {
                        stack.push(e.id);
                    }
                }
                objects.push((oid, obj.canonical_bytes()));
            }
        }
        Ok(RepoBundle {
            name: repo.name().to_owned(),
            head: repo.current_branch().map(str::to_owned),
            refs,
            objects,
            basis,
        })
    }

    /// Materializes the bundle as a repository on `store`, verifying
    /// every object's bytes against its claimed id. Delta bundles cannot
    /// stand alone: their basis objects live only on the negotiating
    /// receiver, so this fails with `ObjectNotFound` instead of building
    /// a repository with holes in its history.
    pub fn into_repository(&self, store: Box<dyn ObjectStore>) -> gitlite::Result<Repository> {
        if let Some(&b) = self.basis.first() {
            return Err(gitlite::GitError::ObjectNotFound(b));
        }
        let mut repo = Repository::init_with(self.name.clone(), store);
        for (id, bytes) in &self.objects {
            repo.odb_mut().put_raw(*id, bytes)?;
        }
        for (branch, tip) in &self.refs {
            repo.set_branch(branch, *tip)?;
        }
        let head = self
            .head
            .clone()
            .filter(|b| repo.has_branch(b))
            .or_else(|| self.refs.first().map(|(b, _)| b.clone()));
        if let Some(b) = head {
            repo.checkout_branch(&b)?;
        }
        Ok(repo)
    }

    /// The envelope keys every bundle form shares: `name`, `head`, `refs`.
    fn header_value(&self) -> Object {
        let mut o = Object::new();
        o.insert("name", self.name.as_str());
        if let Some(h) = &self.head {
            o.insert("head", h.as_str());
        }
        o.insert(
            "refs",
            Value::Array(
                self.refs
                    .iter()
                    .map(|(b, tip)| Value::Array(vec![Value::from(b.as_str()), id_value(*tip)]))
                    .collect(),
            ),
        );
        o
    }

    fn to_value(&self) -> Value {
        let mut o = self.header_value();
        o.insert(
            "objects",
            Value::Array(
                self.objects
                    .iter()
                    .map(|(id, bytes)| {
                        Value::Array(vec![id_value(*id), Value::from(hex_encode(bytes))])
                    })
                    .collect(),
            ),
        );
        // Absent for full bundles, so the v1 wire form is unchanged.
        if !self.basis.is_empty() {
            o.insert(
                "basis",
                Value::Array(self.basis.iter().map(|id| id_value(*id)).collect()),
            );
        }
        Value::Object(o)
    }

    /// Like `to_value` but externalizing the object payloads (protocol
    /// v3): the envelope carries `"objects_ext": n` and the `(id, bytes)`
    /// pairs are appended to `sink`, in order, to travel as raw bytes on
    /// the binary side channel instead of hex inside the envelope.
    fn to_value_ext(&self, sink: &mut Vec<(ObjectId, Vec<u8>)>) -> Value {
        let mut o = self.header_value();
        o.insert("objects_ext", self.objects.len() as i64);
        sink.extend(self.objects.iter().cloned());
        if !self.basis.is_empty() {
            o.insert(
                "basis",
                Value::Array(self.basis.iter().map(|id| id_value(*id)).collect()),
            );
        }
        Value::Object(o)
    }

    fn from_value_inner(v: &Value, sidecar: Option<&mut Sidecar>) -> WireResult<RepoBundle> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("bundle must be an object"))?;
        let mut refs = Vec::new();
        for pair in req_arr(o, "refs")? {
            let [b, tip] = two(pair, "ref")?;
            refs.push((str_of(b, "ref branch")?, parse_id(tip, "ref tip")?));
        }
        let objects = match o.get("objects_ext") {
            Some(count) => {
                if o.get("objects").is_some() {
                    return Err(proto("bundle cannot carry both objects and objects_ext"));
                }
                let n = count
                    .as_i64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| proto("objects_ext must be a non-negative count"))?;
                let Some(sc) = sidecar else {
                    return Err(proto(
                        "objects_ext bundle requires the v3 binary side channel",
                    ));
                };
                sc.used = true;
                if sc.objects.len() < n {
                    return Err(proto(format!(
                        "objects_ext claims {n} objects, side channel carried {}",
                        sc.objects.len()
                    )));
                }
                sc.objects.drain(..n).collect()
            }
            None => {
                let mut objects = Vec::new();
                for pair in req_arr(o, "objects")? {
                    let [id, bytes] = two(pair, "object")?;
                    let bytes = hex_decode(
                        bytes
                            .as_str()
                            .ok_or_else(|| proto("object bytes must be hex"))?,
                    )
                    .ok_or_else(|| proto("object bytes must be hex"))?;
                    objects.push((parse_id(id, "object id")?, bytes));
                }
                objects
            }
        };
        let mut basis = Vec::new();
        if let Some(v) = o.get("basis") {
            for id in v
                .as_array()
                .ok_or_else(|| proto("basis must be an array"))?
            {
                basis.push(parse_id(id, "basis commit")?);
            }
        }
        Ok(RepoBundle {
            name: req_str(o, "name")?,
            head: opt_str(o, "head")?,
            refs,
            objects,
            basis,
        })
    }
}

/// Raw object payloads traveling beside a v3 envelope on the binary side
/// channel. Bundles that say `objects_ext` draw from this queue in order;
/// `used` records that the envelope referenced the side channel at all
/// (which requires a `"v":3` stamp, even for an empty one).
struct Sidecar {
    objects: std::collections::VecDeque<(ObjectId, Vec<u8>)>,
    used: bool,
}

/// Adds every tree and blob reachable from `root` (a tree id) to `out`.
fn collect_tree_closure(
    repo: &Repository,
    root: ObjectId,
    out: &mut HashSet<ObjectId>,
) -> gitlite::Result<()> {
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if !out.insert(id) {
            continue;
        }
        let obj = repo.odb().get(id)?;
        if let gitlite::Object::Tree(t) = &*obj {
            for (_, e) in t.iter() {
                stack.push(e.id);
            }
        }
    }
    Ok(())
}

/// Server's answer to a v2 `negotiate` request: the offered commit ids
/// partitioned by whether they are reachable from the repository's refs.
/// `common` commits (and their closures) need not be re-sent; `missing`
/// ones the server has never seen.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Negotiation {
    /// Offered ids the server already has reachable from its refs.
    pub common: Vec<ObjectId>,
    /// Offered ids the server lacks.
    pub missing: Vec<ObjectId>,
}

impl Negotiation {
    fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert(
            "common",
            Value::Array(self.common.iter().map(|id| id_value(*id)).collect()),
        );
        o.insert(
            "missing",
            Value::Array(self.missing.iter().map(|id| id_value(*id)).collect()),
        );
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<Negotiation> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("negotiation must be an object"))?;
        let ids = |key: &str| -> WireResult<Vec<ObjectId>> {
            req_arr(o, key)?
                .iter()
                .map(|id| parse_id(id, "negotiation commit"))
                .collect()
        };
        Ok(Negotiation {
            common: ids("common")?,
            missing: ids("missing")?,
        })
    }
}

/// One page of a paginated read (protocol v2). `next` is an opaque
/// cursor to pass back for the following page; `None` means the listing
/// is exhausted. Cursors pin their position, so a page sequence stays
/// stable while writers append.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page<T> {
    /// The items of this page, at most the requested (clamped) limit.
    pub items: Vec<T>,
    /// Cursor for the next page, absent on the last one.
    pub next: Option<String>,
}

/// Version-level outcome of a server-side merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOutcome {
    /// The other branch is already contained in ours.
    AlreadyUpToDate,
    /// Our branch simply advanced to the given commit.
    FastForwarded(ObjectId),
    /// A merge commit was created.
    Merged(ObjectId),
}

/// Wire form of a server-side `MergeCite` report: the outcome plus how
/// each citation-key conflict was settled and which entries were dropped
/// because the Git merge deleted their paths.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeSummary {
    /// What happened at the version level.
    pub outcome: MergeOutcome,
    /// `(path, resolution taken)` per conflicted citation key.
    pub citation_conflicts: Vec<(RepoPath, Resolution)>,
    /// Citation entries dropped because their paths were deleted.
    pub dropped: Vec<RepoPath>,
}

fn resolution_to_value(r: &Resolution) -> Value {
    let mut o = Object::new();
    let kind = match r {
        Resolution::Ours => "ours",
        Resolution::Theirs => "theirs",
        Resolution::Drop => "drop",
        Resolution::Unresolved => "unresolved",
        Resolution::Custom(_) => "custom",
    };
    o.insert("kind", kind);
    if let Resolution::Custom(c) = r {
        o.insert("citation", c.to_value());
    }
    Value::Object(o)
}

fn resolution_from_value(v: &Value) -> WireResult<Resolution> {
    let o = v
        .as_object()
        .ok_or_else(|| proto("resolution must be an object"))?;
    Ok(match req_str(o, "kind")?.as_str() {
        "ours" => Resolution::Ours,
        "theirs" => Resolution::Theirs,
        "drop" => Resolution::Drop,
        "unresolved" => Resolution::Unresolved,
        "custom" => Resolution::Custom(parse_citation(
            o.get("citation")
                .ok_or_else(|| proto("custom resolution needs a citation"))?,
        )?),
        other => return Err(proto(format!("unknown resolution kind {other:?}"))),
    })
}

impl MergeSummary {
    fn to_value(&self) -> Value {
        let mut outcome = Object::new();
        match self.outcome {
            MergeOutcome::AlreadyUpToDate => {
                outcome.insert("kind", "already_up_to_date");
            }
            MergeOutcome::FastForwarded(id) => {
                outcome.insert("kind", "fast_forwarded");
                outcome.insert("commit", id.to_hex());
            }
            MergeOutcome::Merged(id) => {
                outcome.insert("kind", "merged");
                outcome.insert("commit", id.to_hex());
            }
        }
        let mut o = Object::new();
        o.insert("outcome", Value::Object(outcome));
        o.insert(
            "citation_conflicts",
            Value::Array(
                self.citation_conflicts
                    .iter()
                    .map(|(p, r)| Value::Array(vec![path_value(p), resolution_to_value(r)]))
                    .collect(),
            ),
        );
        o.insert(
            "dropped",
            Value::Array(self.dropped.iter().map(path_value).collect()),
        );
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<MergeSummary> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("merge summary must be an object"))?;
        let oc = req_obj(o, "outcome")?;
        let outcome = match req_str(oc, "kind")?.as_str() {
            "already_up_to_date" => MergeOutcome::AlreadyUpToDate,
            "fast_forwarded" => MergeOutcome::FastForwarded(parse_id(
                oc.get("commit").ok_or_else(|| proto("missing commit"))?,
                "merge commit",
            )?),
            "merged" => MergeOutcome::Merged(parse_id(
                oc.get("commit").ok_or_else(|| proto("missing commit"))?,
                "merge commit",
            )?),
            other => return Err(proto(format!("unknown merge outcome {other:?}"))),
        };
        let mut citation_conflicts = Vec::new();
        for pair in req_arr(o, "citation_conflicts")? {
            let [p, r] = two(pair, "citation conflict")?;
            citation_conflicts.push((parse_path_value(p)?, resolution_from_value(r)?));
        }
        let mut dropped = Vec::new();
        for p in req_arr(o, "dropped")? {
            dropped.push(parse_path_value(p)?);
        }
        Ok(MergeSummary {
            outcome,
            citation_conflicts,
            dropped,
        })
    }
}

/// Object-store statistics for one hosted repository — the wire surface
/// of [`gitlite::CacheStats`] plus the store's object count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Repository the stats describe.
    pub repo_id: String,
    /// Objects in the backing store.
    pub objects: u64,
    /// Cache counters, when the backend stack contains a read cache.
    pub cache: Option<CacheStats>,
    /// Commits indexed by the store's commit-graph, when the backend
    /// maintains one (pack-backed repositories after their first
    /// maintenance run). `None` on graph-less backends — both the field
    /// and its wire key are simply absent, so pre-graph peers parse
    /// unchanged.
    pub graph_commits: Option<u64>,
    /// Pack records stored as deltas rather than full bytes. `None`
    /// (key absent) on backends without delta packs — same absent-field
    /// rule as `graph_commits`, so pre-delta peers parse unchanged.
    pub delta_objects: Option<u64>,
    /// Commits whose graph record carries a changed-path Bloom filter.
    /// `None` (key absent) on graph-less backends.
    pub bloom_commits: Option<u64>,
}

impl StoreStats {
    fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("repo_id", self.repo_id.as_str());
        o.insert("objects", self.objects as i64);
        if let Some(c) = &self.cache {
            let mut co = Object::new();
            co.insert("hits", c.hits as i64);
            co.insert("misses", c.misses as i64);
            co.insert("evictions", c.evictions as i64);
            co.insert("len", c.len as i64);
            co.insert("capacity", c.capacity as i64);
            o.insert("cache", Value::Object(co));
        }
        if let Some(n) = self.graph_commits {
            o.insert("graph_commits", n as i64);
        }
        if let Some(n) = self.delta_objects {
            o.insert("delta_objects", n as i64);
        }
        if let Some(n) = self.bloom_commits {
            o.insert("bloom_commits", n as i64);
        }
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<StoreStats> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("stats must be an object"))?;
        let cache = match o.get("cache") {
            None | Some(Value::Null) => None,
            Some(Value::Object(co)) => Some(CacheStats {
                hits: req_i64(co, "hits")? as u64,
                misses: req_i64(co, "misses")? as u64,
                evictions: req_i64(co, "evictions")? as u64,
                len: req_i64(co, "len")? as usize,
                capacity: req_i64(co, "capacity")? as usize,
            }),
            Some(_) => return Err(proto("cache must be an object")),
        };
        let opt_u64 = |key: &'static str| -> WireResult<Option<u64>> {
            match o.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(v) => Ok(Some(
                    v.as_i64()
                        .ok_or_else(|| proto(format!("{key} must be a number")))?
                        as u64,
                )),
            }
        };
        Ok(StoreStats {
            repo_id: req_str(o, "repo_id")?,
            objects: req_i64(o, "objects")? as u64,
            cache,
            graph_commits: opt_u64("graph_commits")?,
            delta_objects: opt_u64("delta_objects")?,
            bloom_commits: opt_u64("bloom_commits")?,
        })
    }
}

/// What hub-side maintenance did to one hosted repository. A failed gc
/// is reported per-repository (`error`), never aborting the sweep —
/// one sick repository must not stop the rest from compacting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepoMaintenance {
    /// Repository the pass visited.
    pub repo_id: String,
    /// Whether the repository's backend supports maintenance at all
    /// (in-memory stores do not).
    pub supported: bool,
    /// Objects written into the fresh pack.
    pub packed: u64,
    /// Unreachable objects discarded.
    pub dropped: u64,
    /// Why this repository's gc failed, when it did.
    pub error: Option<String>,
}

impl RepoMaintenance {
    fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("repo_id", self.repo_id.as_str());
        o.insert("supported", self.supported);
        o.insert("packed", self.packed as i64);
        o.insert("dropped", self.dropped as i64);
        if let Some(e) = &self.error {
            o.insert("error", e.as_str());
        }
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<RepoMaintenance> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("maintenance entry must be an object"))?;
        Ok(RepoMaintenance {
            repo_id: req_str(o, "repo_id")?,
            supported: req_bool(o, "supported")?,
            packed: req_i64(o, "packed")? as u64,
            dropped: req_i64(o, "dropped")? as u64,
            error: opt_str(o, "error")?,
        })
    }
}

// ---------------------------------------------------------------------
// Server metrics (v3)
// ---------------------------------------------------------------------

/// A latency distribution on the wire: the sparse form of a
/// [`telemetry::HistogramSnapshot`] — only non-empty log2 buckets
/// travel, as `[bucket, count]` pairs, alongside the exact count, sum
/// and maximum. The `buckets` key is absent when the histogram is empty,
/// so an idle method costs four short fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireHistogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, microseconds.
    pub sum_us: u64,
    /// Largest sample, microseconds (exact, not a bucket bound).
    pub max_us: u64,
    /// Non-empty `(bucket, count)` pairs, ascending by bucket.
    pub buckets: Vec<(u32, u64)>,
}

impl WireHistogram {
    /// The wire form of a snapshot.
    pub fn from_snapshot(s: &telemetry::HistogramSnapshot) -> WireHistogram {
        WireHistogram {
            count: s.count,
            sum_us: s.sum,
            max_us: s.max,
            buckets: s.sparse(),
        }
    }

    /// Rebuilds the dense snapshot, from which quantiles derive.
    pub fn to_snapshot(&self) -> telemetry::HistogramSnapshot {
        telemetry::HistogramSnapshot::from_sparse(
            &self.buckets,
            self.count,
            self.sum_us,
            self.max_us,
        )
    }

    fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("count", self.count as i64);
        o.insert("sum_us", self.sum_us as i64);
        o.insert("max_us", self.max_us as i64);
        if !self.buckets.is_empty() {
            o.insert(
                "buckets",
                Value::Array(
                    self.buckets
                        .iter()
                        .map(|&(i, n)| {
                            Value::Array(vec![Value::from(i as i64), Value::from(n as i64)])
                        })
                        .collect(),
                ),
            );
        }
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<WireHistogram> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("histogram must be an object"))?;
        let mut buckets = Vec::new();
        if let Some(arr) = o.get("buckets") {
            let arr = arr
                .as_array()
                .ok_or_else(|| proto("buckets must be an array"))?;
            for pair in arr {
                let [i, n] = two(pair, "bucket")?;
                let i = i
                    .as_i64()
                    .ok_or_else(|| proto("bucket index must be an integer"))?;
                let n = n
                    .as_i64()
                    .ok_or_else(|| proto("bucket count must be an integer"))?;
                buckets.push((i as u32, n as u64));
            }
        }
        Ok(WireHistogram {
            count: req_i64(o, "count")? as u64,
            sum_us: req_i64(o, "sum_us")? as u64,
            max_us: req_i64(o, "max_us")? as u64,
            buckets,
        })
    }
}

/// Per-method dispatch statistics: call count, latency distribution and
/// error tallies. The `errors` key is absent when the method has never
/// failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodMetrics {
    /// Wire method name (`"log"`, `"push"`, ...).
    pub method: String,
    /// Total dispatches, successes and failures alike.
    pub calls: u64,
    /// `(error code, occurrences)` pairs, ascending by code.
    pub errors: Vec<(String, u64)>,
    /// Dispatch latency in microseconds. The server times a sample of
    /// calls (always including a method's first), so `latency.count` is
    /// the number of *timed* calls and may trail `calls`.
    pub latency: WireHistogram,
}

impl MethodMetrics {
    fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("method", self.method.as_str());
        o.insert("calls", self.calls as i64);
        if !self.errors.is_empty() {
            o.insert(
                "errors",
                Value::Array(
                    self.errors
                        .iter()
                        .map(|(code, n)| {
                            Value::Array(vec![Value::from(code.as_str()), Value::from(*n as i64)])
                        })
                        .collect(),
                ),
            );
        }
        o.insert("latency", self.latency.to_value());
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<MethodMetrics> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("method metrics must be an object"))?;
        let mut errors = Vec::new();
        if let Some(arr) = o.get("errors") {
            let arr = arr
                .as_array()
                .ok_or_else(|| proto("errors must be an array"))?;
            for pair in arr {
                let [code, n] = two(pair, "error tally")?;
                let n = n
                    .as_i64()
                    .ok_or_else(|| proto("error count must be an integer"))?;
                errors.push((str_of(code, "error code")?, n as u64));
            }
        }
        Ok(MethodMetrics {
            method: req_str(o, "method")?,
            calls: req_i64(o, "calls")? as u64,
            errors,
            latency: WireHistogram::from_value(
                o.get("latency").ok_or_else(|| proto("missing latency"))?,
            )?,
        })
    }
}

/// Socket-layer gauges and counters, exported by the reactor. Absent
/// from a [`MetricsSnapshot`] (field and wire key both) when the hub is
/// embedded in-process and no transport ever attached.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransportMetrics {
    /// Connections currently open.
    pub open_connections: i64,
    /// Requests parked in the worker queue right now.
    pub queue_depth: i64,
    /// Workers executing a request right now.
    pub busy_workers: i64,
    /// Request bytes received over line framing (v1/v2).
    pub bytes_in_line: u64,
    /// Response bytes sent over line framing.
    pub bytes_out_line: u64,
    /// Request bytes received over v3 binary framing.
    pub bytes_in_binary: u64,
    /// Response bytes sent over v3 binary framing.
    pub bytes_out_binary: u64,
    /// Frames refused by the size/count caps before execution.
    pub frames_rejected: u64,
    /// Connections torn down abruptly — server shutdown under live
    /// peers, stall timeouts, write failures, or a peer hanging up with
    /// a request still in flight: the server-side tally of the
    /// `transport_closed` errors clients observe.
    pub transport_closed: u64,
    /// Uncompressed bytes of `objects_ext` payloads moved.
    pub obj_raw_bytes: u64,
    /// Their on-wire deflated size (ratio = deflate / raw).
    pub obj_deflate_bytes: u64,
}

impl TransportMetrics {
    fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("open_connections", self.open_connections);
        o.insert("queue_depth", self.queue_depth);
        o.insert("busy_workers", self.busy_workers);
        o.insert("bytes_in_line", self.bytes_in_line as i64);
        o.insert("bytes_out_line", self.bytes_out_line as i64);
        o.insert("bytes_in_binary", self.bytes_in_binary as i64);
        o.insert("bytes_out_binary", self.bytes_out_binary as i64);
        o.insert("frames_rejected", self.frames_rejected as i64);
        o.insert("transport_closed", self.transport_closed as i64);
        o.insert("obj_raw_bytes", self.obj_raw_bytes as i64);
        o.insert("obj_deflate_bytes", self.obj_deflate_bytes as i64);
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<TransportMetrics> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("transport metrics must be an object"))?;
        Ok(TransportMetrics {
            open_connections: req_i64(o, "open_connections")?,
            queue_depth: req_i64(o, "queue_depth")?,
            busy_workers: req_i64(o, "busy_workers")?,
            bytes_in_line: req_i64(o, "bytes_in_line")? as u64,
            bytes_out_line: req_i64(o, "bytes_out_line")? as u64,
            bytes_in_binary: req_i64(o, "bytes_in_binary")? as u64,
            bytes_out_binary: req_i64(o, "bytes_out_binary")? as u64,
            frames_rejected: req_i64(o, "frames_rejected")? as u64,
            transport_closed: req_i64(o, "transport_closed")? as u64,
            obj_raw_bytes: req_i64(o, "obj_raw_bytes")? as u64,
            obj_deflate_bytes: req_i64(o, "obj_deflate_bytes")? as u64,
        })
    }
}

/// Storage-layer counters aggregated across every hosted repository:
/// read-cache totals plus the process-wide pack/loose and
/// graph/fallback tallies from [`gitlite::metrics`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreMetrics {
    /// Hosted repositories.
    pub repos: u64,
    /// Read-cache hits summed over all hosted stores.
    pub cache_hits: u64,
    /// Read-cache misses summed over all hosted stores.
    pub cache_misses: u64,
    /// Object reads served from packs.
    pub pack_reads: u64,
    /// Object reads served loose.
    pub loose_reads: u64,
    /// History walks answered by the commit-graph.
    pub graph_walks: u64,
    /// History walks that fell back to decoding commits.
    pub fallback_walks: u64,
    /// Delta links applied while resolving packed objects.
    pub delta_resolutions: u64,
    /// Bloom-filter "maybe changed" answers that were real changes.
    pub bloom_hits: u64,
    /// Bloom-filter definitive "unchanged" answers (diffs skipped).
    pub bloom_skips: u64,
    /// Bloom "maybe" answers the exact check refuted.
    pub bloom_false_positives: u64,
}

impl StoreMetrics {
    /// Cache hits over lookups, `None` before the first lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("repos", self.repos as i64);
        o.insert("cache_hits", self.cache_hits as i64);
        o.insert("cache_misses", self.cache_misses as i64);
        o.insert("pack_reads", self.pack_reads as i64);
        o.insert("loose_reads", self.loose_reads as i64);
        o.insert("graph_walks", self.graph_walks as i64);
        o.insert("fallback_walks", self.fallback_walks as i64);
        // Newer counters follow the absent-field rule: the key is only
        // emitted once the counter has fired, so pre-delta/Bloom peers
        // (and the pinned goldens) see byte-identical objects.
        for (key, v) in [
            ("delta_resolutions", self.delta_resolutions),
            ("bloom_hits", self.bloom_hits),
            ("bloom_skips", self.bloom_skips),
            ("bloom_false_positives", self.bloom_false_positives),
        ] {
            if v > 0 {
                o.insert(key, v as i64);
            }
        }
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<StoreMetrics> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("store metrics must be an object"))?;
        let opt_counter = |key: &'static str| -> WireResult<u64> {
            match o.get(key) {
                None | Some(Value::Null) => Ok(0),
                Some(v) => Ok(v
                    .as_i64()
                    .ok_or_else(|| proto(format!("{key} must be a number")))?
                    as u64),
            }
        };
        Ok(StoreMetrics {
            repos: req_i64(o, "repos")? as u64,
            cache_hits: req_i64(o, "cache_hits")? as u64,
            cache_misses: req_i64(o, "cache_misses")? as u64,
            pack_reads: req_i64(o, "pack_reads")? as u64,
            loose_reads: req_i64(o, "loose_reads")? as u64,
            graph_walks: req_i64(o, "graph_walks")? as u64,
            fallback_walks: req_i64(o, "fallback_walks")? as u64,
            delta_resolutions: opt_counter("delta_resolutions")?,
            bloom_hits: opt_counter("bloom_hits")?,
            bloom_skips: opt_counter("bloom_skips")?,
            bloom_false_positives: opt_counter("bloom_false_positives")?,
        })
    }
}

/// Abuse-resistance counters: how often the hub said *no* for reasons
/// other than the request being wrong. Every field follows the
/// absent-field rule (key emitted only once the counter has fired), and
/// the whole section is absent from a [`MetricsSnapshot`] until any
/// fires — pre-existing goldens never see it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LimitsMetrics {
    /// Failed authentications: bad/expired/revoked tokens, wrong or
    /// missing login secrets, logins refused by an active lockout.
    pub auth_failures: u64,
    /// Requests refused by a per-user or per-repo token bucket.
    pub rate_rejections: u64,
    /// Pushes/imports refused by a bundle or repository size quota.
    pub quota_rejections: u64,
    /// Connections answered with `server_busy` and closed at accept
    /// time (overload or per-IP cap).
    pub conns_shed: u64,
}

impl LimitsMetrics {
    /// True when nothing has ever been refused — the section stays off
    /// the wire.
    pub fn is_empty(&self) -> bool {
        self.auth_failures == 0
            && self.rate_rejections == 0
            && self.quota_rejections == 0
            && self.conns_shed == 0
    }

    fn to_value(&self) -> Value {
        let mut o = Object::new();
        for (key, v) in [
            ("auth_failures", self.auth_failures),
            ("rate_rejections", self.rate_rejections),
            ("quota_rejections", self.quota_rejections),
            ("conns_shed", self.conns_shed),
        ] {
            if v > 0 {
                o.insert(key, v as i64);
            }
        }
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<LimitsMetrics> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("limits metrics must be an object"))?;
        let opt_counter = |key: &'static str| -> WireResult<u64> {
            match o.get(key) {
                None | Some(Value::Null) => Ok(0),
                Some(v) => Ok(v
                    .as_i64()
                    .ok_or_else(|| proto(format!("{key} must be a number")))?
                    as u64),
            }
        };
        Ok(LimitsMetrics {
            auth_failures: opt_counter("auth_failures")?,
            rate_rejections: opt_counter("rate_rejections")?,
            quota_rejections: opt_counter("quota_rejections")?,
            conns_shed: opt_counter("conns_shed")?,
        })
    }
}

/// Replication health of a follower hub (see [`crate::repl`]): who the
/// primary is, how far behind the follower sits, and how rocky the link
/// has been. The whole section is absent from a [`MetricsSnapshot`]
/// (field and wire key both) on a hub that is not following anyone, so
/// pre-replication peers and the pinned goldens never see it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplMetrics {
    /// Wire address of the primary being followed.
    pub primary: String,
    /// Seconds since the last successful sync round (`-1` before the
    /// first one) — `gitcite_repl_lag_seconds`.
    pub lag_seconds: i64,
    /// Primary logical epoch observed by the last successful round.
    pub epoch: i64,
    /// Repositories whose frontier differed from the primary's at the
    /// start of the last round — `gitcite_repl_repos_behind`.
    pub repos_behind: u64,
    /// Per-repo cursor deltas behind that count: `(repo id, refs that
    /// were added/moved/deleted upstream)`.
    pub behind: Vec<(String, u64)>,
    /// Completed sync rounds.
    pub rounds: u64,
    /// Failed rounds followed by a backed-off reconnect.
    pub reconnects: u64,
}

impl ReplMetrics {
    fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("primary", self.primary.as_str());
        o.insert("lag_seconds", self.lag_seconds);
        o.insert("epoch", self.epoch);
        o.insert("repos_behind", self.repos_behind as i64);
        if !self.behind.is_empty() {
            o.insert(
                "behind",
                Value::Array(
                    self.behind
                        .iter()
                        .map(|(repo, n)| {
                            Value::Array(vec![Value::from(repo.as_str()), Value::from(*n as i64)])
                        })
                        .collect(),
                ),
            );
        }
        o.insert("rounds", self.rounds as i64);
        o.insert("reconnects", self.reconnects as i64);
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<ReplMetrics> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("repl metrics must be an object"))?;
        let mut behind = Vec::new();
        if let Some(v) = o.get("behind") {
            for pair in v
                .as_array()
                .ok_or_else(|| proto("behind must be an array"))?
            {
                let [repo, n] = two(pair, "behind entry")?;
                let n = n
                    .as_i64()
                    .ok_or_else(|| proto("behind delta must be an integer"))?;
                behind.push((str_of(repo, "behind repo")?, n as u64));
            }
        }
        Ok(ReplMetrics {
            primary: req_str(o, "primary")?,
            lag_seconds: req_i64(o, "lag_seconds")?,
            epoch: req_i64(o, "epoch")?,
            repos_behind: req_i64(o, "repos_behind")? as u64,
            behind,
            rounds: req_i64(o, "rounds")? as u64,
            reconnects: req_i64(o, "reconnects")? as u64,
        })
    }
}

/// One repository's replication frontier in a [`ReplStatus`] reply: its
/// head and every `(branch, tip)` pair. A follower compares this against
/// its local copy to decide whether a fetch is needed — the per-repo
/// half of the replication cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplRepoStatus {
    /// Repository id (`owner/name`).
    pub repo_id: String,
    /// Currently checked-out branch, when any.
    pub head: Option<String>,
    /// `(branch, tip)` pairs in the server's canonical order.
    pub refs: Vec<(String, ObjectId)>,
}

impl ReplRepoStatus {
    fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("repo_id", self.repo_id.as_str());
        if let Some(h) = &self.head {
            o.insert("head", h.as_str());
        }
        o.insert(
            "refs",
            Value::Array(
                self.refs
                    .iter()
                    .map(|(b, tip)| Value::Array(vec![Value::from(b.as_str()), id_value(*tip)]))
                    .collect(),
            ),
        );
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<ReplRepoStatus> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("repl repo status must be an object"))?;
        let mut refs = Vec::new();
        for pair in req_arr(o, "refs")? {
            let [b, tip] = two(pair, "ref")?;
            refs.push((str_of(b, "ref branch")?, parse_id(tip, "ref tip")?));
        }
        Ok(ReplRepoStatus {
            repo_id: req_str(o, "repo_id")?,
            head: opt_str(o, "head")?,
            refs,
        })
    }
}

/// The primary's answer to `repl_status` (see [`crate::repl`]): its
/// logical epoch, the audit log length (the follower's audit cursor
/// target), every repository's frontier, and the full deposit registry
/// (small records, replicated wholesale so followers resolve DOIs
/// faithfully).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplStatus {
    /// The primary's logical clock reading.
    pub epoch: i64,
    /// Number of audit events the primary holds (next sequence number).
    pub audit_seq: u64,
    /// Frontier of every hosted repository.
    pub repos: Vec<ReplRepoStatus>,
    /// The complete deposit registry.
    pub deposits: Vec<Deposit>,
}

impl ReplStatus {
    fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("epoch", self.epoch);
        o.insert("audit_seq", self.audit_seq as i64);
        o.insert(
            "repos",
            Value::Array(self.repos.iter().map(|r| r.to_value()).collect()),
        );
        o.insert(
            "deposits",
            Value::Array(self.deposits.iter().map(deposit_value).collect()),
        );
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<ReplStatus> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("repl status must be an object"))?;
        let mut repos = Vec::new();
        for r in req_arr(o, "repos")? {
            repos.push(ReplRepoStatus::from_value(r)?);
        }
        let mut deposits = Vec::new();
        for d in req_arr(o, "deposits")? {
            deposits.push(parse_deposit(d)?);
        }
        Ok(ReplStatus {
            epoch: req_i64(o, "epoch")?,
            audit_seq: req_i64(o, "audit_seq")? as u64,
            repos,
            deposits,
        })
    }
}

/// The fleet's placement map as served over the wire (`placement`): the
/// participating hub addresses, plus — when the request named a
/// repository — the hub that homes it per rendezvous hashing
/// ([`crate::placement`]). An unconfigured follower answers with an
/// empty hub list and its primary's address, so clients can always
/// discover where writes go.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlacementInfo {
    /// The fleet's hub addresses (empty when placement is unconfigured).
    pub hubs: Vec<String>,
    /// The home hub for the queried repository, when one was named and
    /// a home is known.
    pub primary: Option<String>,
}

impl PlacementInfo {
    fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert(
            "hubs",
            Value::Array(self.hubs.iter().map(|h| Value::from(h.as_str())).collect()),
        );
        if let Some(p) = &self.primary {
            o.insert("primary", p.as_str());
        }
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<PlacementInfo> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("placement must be an object"))?;
        let mut hubs = Vec::new();
        for h in req_arr(o, "hubs")? {
            hubs.push(str_of(h, "placement hub")?);
        }
        Ok(PlacementInfo {
            hubs,
            primary: opt_str(o, "primary")?,
        })
    }
}

/// The full answer to [`ApiRequest::ServerMetrics`]: one point-in-time
/// view of the hub's health, from the dispatch layer down to storage.
/// Optional sections omit their wire key entirely when absent, per the
/// protocol's absent-field rule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Per-method dispatch stats, ascending by method name. Only
    /// methods dispatched at least once appear.
    pub methods: Vec<MethodMetrics>,
    /// Socket-layer stats; `None` when no transport is attached.
    pub transport: Option<TransportMetrics>,
    /// Storage-layer stats; `None` when metrics are disabled.
    pub store: Option<StoreMetrics>,
    /// Abuse-resistance tallies; `None` until the hub refuses anything.
    pub limits: Option<LimitsMetrics>,
    /// Replication health; `None` unless this hub is a follower.
    pub repl: Option<ReplMetrics>,
}

impl MetricsSnapshot {
    /// The Prometheus text exposition of the snapshot (`gitcite_`-
    /// prefixed families; latency quantiles derived from the buckets).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.methods.is_empty() {
            out.push_str("# TYPE gitcite_method_calls_total counter\n");
            for m in &self.methods {
                let _ = writeln!(
                    out,
                    "gitcite_method_calls_total{{method=\"{}\"}} {}",
                    m.method, m.calls
                );
            }
            out.push_str("# TYPE gitcite_method_errors_total counter\n");
            for m in &self.methods {
                for (code, n) in &m.errors {
                    let _ = writeln!(
                        out,
                        "gitcite_method_errors_total{{method=\"{}\",code=\"{code}\"}} {n}",
                        m.method
                    );
                }
            }
            out.push_str("# TYPE gitcite_method_latency_us summary\n");
            for m in &self.methods {
                let snap = m.latency.to_snapshot();
                for (q, v) in [(0.5, snap.p50()), (0.9, snap.p90()), (0.99, snap.p99())] {
                    let _ = writeln!(
                        out,
                        "gitcite_method_latency_us{{method=\"{}\",quantile=\"{q}\"}} {v}",
                        m.method
                    );
                }
                let _ = writeln!(
                    out,
                    "gitcite_method_latency_us_sum{{method=\"{}\"}} {}",
                    m.method, snap.sum
                );
                let _ = writeln!(
                    out,
                    "gitcite_method_latency_us_count{{method=\"{}\"}} {}",
                    m.method, snap.count
                );
            }
        }
        if let Some(t) = &self.transport {
            for (name, v) in [
                ("open_connections", t.open_connections),
                ("queue_depth", t.queue_depth),
                ("busy_workers", t.busy_workers),
            ] {
                let _ = writeln!(out, "# TYPE gitcite_{name} gauge\ngitcite_{name} {v}");
            }
            for (name, v) in [
                ("bytes_in_line", t.bytes_in_line),
                ("bytes_out_line", t.bytes_out_line),
                ("bytes_in_binary", t.bytes_in_binary),
                ("bytes_out_binary", t.bytes_out_binary),
                ("frames_rejected", t.frames_rejected),
                ("transport_closed", t.transport_closed),
                ("obj_raw_bytes", t.obj_raw_bytes),
                ("obj_deflate_bytes", t.obj_deflate_bytes),
            ] {
                let _ = writeln!(
                    out,
                    "# TYPE gitcite_{name}_total counter\ngitcite_{name}_total {v}"
                );
            }
        }
        if let Some(s) = &self.store {
            let _ = writeln!(out, "# TYPE gitcite_repos gauge\ngitcite_repos {}", s.repos);
            for (name, v) in [
                ("store_cache_hits", s.cache_hits),
                ("store_cache_misses", s.cache_misses),
                ("store_pack_reads", s.pack_reads),
                ("store_loose_reads", s.loose_reads),
                ("store_graph_walks", s.graph_walks),
                ("store_fallback_walks", s.fallback_walks),
                ("store_delta_resolutions", s.delta_resolutions),
                ("store_bloom_hits", s.bloom_hits),
                ("store_bloom_skips", s.bloom_skips),
                ("store_bloom_false_positives", s.bloom_false_positives),
            ] {
                let _ = writeln!(
                    out,
                    "# TYPE gitcite_{name}_total counter\ngitcite_{name}_total {v}"
                );
            }
        }
        if let Some(l) = &self.limits {
            for (name, v) in [
                ("auth_failures", l.auth_failures),
                ("rate_rejections", l.rate_rejections),
                ("quota_rejections", l.quota_rejections),
                ("conns_shed", l.conns_shed),
            ] {
                let _ = writeln!(
                    out,
                    "# TYPE gitcite_{name}_total counter\ngitcite_{name}_total {v}"
                );
            }
        }
        if let Some(r) = &self.repl {
            for (name, v) in [
                ("repl_lag_seconds", r.lag_seconds),
                ("repl_epoch", r.epoch),
                ("repl_repos_behind", r.repos_behind as i64),
            ] {
                let _ = writeln!(out, "# TYPE gitcite_{name} gauge\ngitcite_{name} {v}");
            }
            for (name, v) in [("repl_rounds", r.rounds), ("repl_reconnects", r.reconnects)] {
                let _ = writeln!(
                    out,
                    "# TYPE gitcite_{name}_total counter\ngitcite_{name}_total {v}"
                );
            }
        }
        out
    }

    fn to_value(&self) -> Value {
        let mut o = Object::new();
        o.insert(
            "methods",
            Value::Array(self.methods.iter().map(|m| m.to_value()).collect()),
        );
        if let Some(t) = &self.transport {
            o.insert("transport", t.to_value());
        }
        if let Some(s) = &self.store {
            o.insert("store", s.to_value());
        }
        if let Some(l) = &self.limits {
            o.insert("limits", l.to_value());
        }
        if let Some(r) = &self.repl {
            o.insert("repl", r.to_value());
        }
        Value::Object(o)
    }

    fn from_value(v: &Value) -> WireResult<MetricsSnapshot> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("metrics must be an object"))?;
        let mut methods = Vec::new();
        for m in req_arr(o, "methods")? {
            methods.push(MethodMetrics::from_value(m)?);
        }
        let transport = match o.get("transport") {
            None | Some(Value::Null) => None,
            Some(v) => Some(TransportMetrics::from_value(v)?),
        };
        let store = match o.get("store") {
            None | Some(Value::Null) => None,
            Some(v) => Some(StoreMetrics::from_value(v)?),
        };
        let limits = match o.get("limits") {
            None | Some(Value::Null) => None,
            Some(v) => Some(LimitsMetrics::from_value(v)?),
        };
        let repl = match o.get("repl") {
            None | Some(Value::Null) => None,
            Some(v) => Some(ReplMetrics::from_value(v)?),
        };
        Ok(MetricsSnapshot {
            methods,
            transport,
            store,
            limits,
            repl,
        })
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Every operation the platform exposes, as a typed request.
///
/// Tokens travel as their raw string form (the credential itself);
/// repositories travel as [`RepoBundle`]s.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings match the typed `Hub` methods
pub enum ApiRequest {
    // auth
    /// `secret` (v3, absent-field rule) enrolls a credential: the hub
    /// stores a salted hash and every future login must present the
    /// secret. Absent = open registration (the paper simulator's model).
    RegisterUser {
        username: String,
        display_name: String,
        secret: Option<String>,
    },
    /// `secret` (v3, absent-field rule) is required for users registered
    /// with one, verified constant-time against the stored salted hash.
    Login {
        username: String,
        secret: Option<String>,
    },
    /// v3: exchange a known (possibly expired) token for a fresh one with
    /// a new lifetime, revoking the old. The one call an expired token is
    /// still good for.
    Refresh {
        token: String,
    },
    Revoke {
        token: String,
    },
    Whoami {
        token: String,
    },
    // repositories
    CreateRepo {
        token: String,
        name: String,
    },
    ImportRepo {
        token: String,
        name: String,
        bundle: RepoBundle,
    },
    AddMember {
        token: String,
        repo_id: String,
        username: String,
        role: Role,
    },
    RoleOf {
        repo_id: String,
        username: String,
    },
    CanWrite {
        token: String,
        repo_id: String,
    },
    ListRepos,
    // public reads
    Branches {
        repo_id: String,
    },
    ListFiles {
        repo_id: String,
        branch: String,
    },
    ReadFile {
        repo_id: String,
        branch: String,
        path: RepoPath,
    },
    Log {
        repo_id: String,
        branch: String,
    },
    /// v2: one page of a branch's log. `cursor` is opaque (obtained from
    /// a previous page); `limit` is clamped to [`MAX_PAGE_SIZE`].
    LogPage {
        repo_id: String,
        branch: String,
        cursor: Option<String>,
        limit: Option<u32>,
    },
    CloneRepo {
        repo_id: String,
    },
    /// v2: have/want exchange ahead of an incremental push — ref tips
    /// plus a sample of recent commit ids the client holds.
    Negotiate {
        repo_id: String,
        haves: Vec<ObjectId>,
    },
    // citations
    GenerateCitation {
        repo_id: String,
        branch: String,
        path: RepoPath,
    },
    CitationEntry {
        repo_id: String,
        branch: String,
        path: RepoPath,
    },
    AddCite {
        token: String,
        repo_id: String,
        branch: String,
        path: RepoPath,
        citation: Citation,
    },
    ModifyCite {
        token: String,
        repo_id: String,
        branch: String,
        path: RepoPath,
        citation: Citation,
    },
    DelCite {
        token: String,
        repo_id: String,
        branch: String,
        path: RepoPath,
    },
    // sync
    Push {
        token: String,
        repo_id: String,
        branch: String,
        force: bool,
        bundle: RepoBundle,
    },
    Fork {
        token: String,
        src_repo_id: String,
        new_name: String,
    },
    MergeBranches {
        token: String,
        repo_id: String,
        branch: String,
        other_branch: String,
        strategy: MergeStrategy,
    },
    // archives
    Deposit {
        token: String,
        repo_id: String,
        branch: String,
        title: String,
    },
    ResolveDoi {
        doi: String,
    },
    Archive {
        repo_id: String,
    },
    ResolveSwhid {
        swhid: String,
    },
    ArchiveVisits {
        repo_id: String,
    },
    // credit
    CreditedAuthors {
        repo_id: String,
        branch: String,
    },
    FindReposCiting {
        author: String,
    },
    // operations
    AuditLog,
    /// v2: one page of the audit log (cursor = next sequence number).
    AuditLogPage {
        cursor: Option<String>,
        limit: Option<u32>,
    },
    /// v2: one page of the repository listing (cursor = last id seen).
    ListReposPage {
        cursor: Option<String>,
        limit: Option<u32>,
    },
    StoreStats {
        repo_id: String,
    },
    Maintenance,
    /// v3: one point-in-time health snapshot of the whole hub
    /// ([`MetricsSnapshot`]). Operator-scoped on sockets: the token must
    /// belong to an operator there; trusted in-process embedders may
    /// omit it.
    ServerMetrics {
        token: Option<String>,
    },
    AdvanceClock {
        ts: i64,
    },
    /// v3: several requests in one envelope, executed in order on the
    /// server, answered by [`ApiResponse::Batch`] in the same order (one
    /// round trip for flows like the popup's sign-in). Batches cannot
    /// nest, and batch items always carry their objects inline.
    Batch {
        requests: Vec<ApiRequest>,
    },
    // replication (see `crate::repl`; v3 additions within the version)
    /// v3: the primary's replication frontier — epoch, audit length,
    /// every repository's refs, the deposit registry
    /// ([`ApiResponse::ReplStatus`]). Public read: it reveals nothing a
    /// crawl of the public read surface would not.
    ReplStatus,
    /// v3: fetch one repository incrementally for replication. `haves`
    /// are the follower's local branch tips; the reply is a delta
    /// [`ApiResponse::Bundle`] past the negotiated frontier (full when
    /// nothing is shared).
    ReplFetch {
        repo_id: String,
        haves: Vec<ObjectId>,
    },
    /// v3: the fleet's placement map ([`ApiResponse::Placement`]);
    /// `repo_id` (absent-field rule) additionally asks which hub homes
    /// that repository.
    Placement {
        repo_id: Option<String>,
    },
}

fn strategy_str(s: MergeStrategy) -> &'static str {
    match s {
        MergeStrategy::Union => "union",
        MergeStrategy::Ours => "ours",
        MergeStrategy::Theirs => "theirs",
        MergeStrategy::ThreeWay => "three-way",
    }
}

fn strategy_parse(s: &str) -> WireResult<MergeStrategy> {
    Ok(match s {
        "union" => MergeStrategy::Union,
        "ours" => MergeStrategy::Ours,
        "theirs" => MergeStrategy::Theirs,
        "three-way" => MergeStrategy::ThreeWay,
        other => return Err(proto(format!("unknown merge strategy {other:?}"))),
    })
}

fn role_str(r: Role) -> &'static str {
    match r {
        Role::Reader => "reader",
        Role::Member => "member",
        Role::Owner => "owner",
    }
}

fn role_parse(s: &str) -> WireResult<Role> {
    Ok(match s {
        "reader" => Role::Reader,
        "member" => Role::Member,
        "owner" => Role::Owner,
        other => return Err(proto(format!("unknown role {other:?}"))),
    })
}

/// Every wire method name, indexed by [`ApiRequest::method_index`].
/// The hub keys its per-method dispatch stats by this index so the hot
/// path is one array access, not a map lookup.
pub const METHOD_NAMES: &[&str] = &[
    "register_user",
    "login",
    "revoke",
    "whoami",
    "create_repo",
    "import_repo",
    "add_member",
    "role_of",
    "can_write",
    "list_repos",
    "branches",
    "list_files",
    "read_file",
    "log",
    "log_page",
    "clone_repo",
    "negotiate",
    "generate_citation",
    "citation_entry",
    "add_cite",
    "modify_cite",
    "del_cite",
    "push",
    "fork",
    "merge_branches",
    "deposit",
    "resolve_doi",
    "archive",
    "resolve_swhid",
    "archive_visits",
    "credited_authors",
    "find_repos_citing",
    "audit_log",
    "audit_log_page",
    "list_repos_page",
    "store_stats",
    "maintenance",
    "server_metrics",
    "advance_clock",
    "batch",
    "refresh",
    "repl_status",
    "repl_fetch",
    "placement",
];

impl ApiRequest {
    /// This request's position in [`METHOD_NAMES`].
    pub fn method_index(&self) -> usize {
        match self {
            ApiRequest::RegisterUser { .. } => 0,
            ApiRequest::Login { .. } => 1,
            ApiRequest::Revoke { .. } => 2,
            ApiRequest::Whoami { .. } => 3,
            ApiRequest::CreateRepo { .. } => 4,
            ApiRequest::ImportRepo { .. } => 5,
            ApiRequest::AddMember { .. } => 6,
            ApiRequest::RoleOf { .. } => 7,
            ApiRequest::CanWrite { .. } => 8,
            ApiRequest::ListRepos => 9,
            ApiRequest::Branches { .. } => 10,
            ApiRequest::ListFiles { .. } => 11,
            ApiRequest::ReadFile { .. } => 12,
            ApiRequest::Log { .. } => 13,
            ApiRequest::LogPage { .. } => 14,
            ApiRequest::CloneRepo { .. } => 15,
            ApiRequest::Negotiate { .. } => 16,
            ApiRequest::GenerateCitation { .. } => 17,
            ApiRequest::CitationEntry { .. } => 18,
            ApiRequest::AddCite { .. } => 19,
            ApiRequest::ModifyCite { .. } => 20,
            ApiRequest::DelCite { .. } => 21,
            ApiRequest::Push { .. } => 22,
            ApiRequest::Fork { .. } => 23,
            ApiRequest::MergeBranches { .. } => 24,
            ApiRequest::Deposit { .. } => 25,
            ApiRequest::ResolveDoi { .. } => 26,
            ApiRequest::Archive { .. } => 27,
            ApiRequest::ResolveSwhid { .. } => 28,
            ApiRequest::ArchiveVisits { .. } => 29,
            ApiRequest::CreditedAuthors { .. } => 30,
            ApiRequest::FindReposCiting { .. } => 31,
            ApiRequest::AuditLog => 32,
            ApiRequest::AuditLogPage { .. } => 33,
            ApiRequest::ListReposPage { .. } => 34,
            ApiRequest::StoreStats { .. } => 35,
            ApiRequest::Maintenance => 36,
            ApiRequest::ServerMetrics { .. } => 37,
            ApiRequest::AdvanceClock { .. } => 38,
            ApiRequest::Batch { .. } => 39,
            ApiRequest::Refresh { .. } => 40,
            ApiRequest::ReplStatus => 41,
            ApiRequest::ReplFetch { .. } => 42,
            ApiRequest::Placement { .. } => 43,
        }
    }

    /// The wire method name.
    pub fn method(&self) -> &'static str {
        METHOD_NAMES[self.method_index()]
    }

    /// The lowest protocol major version that can carry this request —
    /// the `v` the envelope is stamped with. v1-era methods with v1-era
    /// payloads stay at [`PROTOCOL_V1`] (byte-identical encoding); the
    /// v2 methods, and a `push`/`import_repo` whose bundle is a delta,
    /// need [`PROTOCOL_V2`]; `batch` needs [`PROTOCOL_V3`]. (The other
    /// v3 construct, `objects_ext`, is introduced by [`Self::encode_ext`]
    /// at encode time, which stamps v3 itself.)
    pub fn version(&self) -> i64 {
        match self {
            ApiRequest::Batch { .. }
            | ApiRequest::ServerMetrics { .. }
            | ApiRequest::Refresh { .. }
            | ApiRequest::ReplStatus
            | ApiRequest::ReplFetch { .. }
            | ApiRequest::Placement { .. } => PROTOCOL_V3,
            // A secret silently dropped by an old server would register
            // an unprotected account, so a secret-bearing register/login
            // is a v3 construct: v1/v2 peers refuse it instead.
            ApiRequest::RegisterUser {
                secret: Some(_), ..
            }
            | ApiRequest::Login {
                secret: Some(_), ..
            } => PROTOCOL_V3,
            ApiRequest::Negotiate { .. }
            | ApiRequest::LogPage { .. }
            | ApiRequest::AuditLogPage { .. }
            | ApiRequest::ListReposPage { .. } => PROTOCOL_V2,
            ApiRequest::Push { bundle, .. } | ApiRequest::ImportRepo { bundle, .. }
                if bundle.is_delta() =>
            {
                PROTOCOL_V2
            }
            _ => PROTOCOL_V1,
        }
    }

    /// The auth token this request carries, if the method is
    /// authenticated. Transports use this for per-connection token
    /// scoping without knowing anything about individual methods.
    pub fn token(&self) -> Option<&str> {
        match self {
            ApiRequest::Refresh { token }
            | ApiRequest::Revoke { token }
            | ApiRequest::Whoami { token }
            | ApiRequest::CreateRepo { token, .. }
            | ApiRequest::ImportRepo { token, .. }
            | ApiRequest::AddMember { token, .. }
            | ApiRequest::CanWrite { token, .. }
            | ApiRequest::AddCite { token, .. }
            | ApiRequest::ModifyCite { token, .. }
            | ApiRequest::DelCite { token, .. }
            | ApiRequest::Push { token, .. }
            | ApiRequest::Fork { token, .. }
            | ApiRequest::MergeBranches { token, .. }
            | ApiRequest::Deposit { token, .. } => Some(token),
            ApiRequest::ServerMetrics { token } => token.as_deref(),
            _ => None,
        }
    }

    /// True when re-sending this request after an ambiguous failure (the
    /// connection died before a response arrived) cannot change server
    /// state beyond what the first attempt did. The client's automatic
    /// retry loop only ever fires for these; everything that mints,
    /// mutates or commits is resubmitted deliberately by the caller.
    pub fn is_idempotent(&self) -> bool {
        match self {
            ApiRequest::Whoami { .. }
            | ApiRequest::RoleOf { .. }
            | ApiRequest::CanWrite { .. }
            | ApiRequest::ListRepos
            | ApiRequest::Branches { .. }
            | ApiRequest::ListFiles { .. }
            | ApiRequest::ReadFile { .. }
            | ApiRequest::Log { .. }
            | ApiRequest::LogPage { .. }
            | ApiRequest::CloneRepo { .. }
            | ApiRequest::Negotiate { .. }
            | ApiRequest::GenerateCitation { .. }
            | ApiRequest::CitationEntry { .. }
            | ApiRequest::ResolveDoi { .. }
            | ApiRequest::ResolveSwhid { .. }
            | ApiRequest::ArchiveVisits { .. }
            | ApiRequest::CreditedAuthors { .. }
            | ApiRequest::FindReposCiting { .. }
            | ApiRequest::AuditLog
            | ApiRequest::AuditLogPage { .. }
            | ApiRequest::ListReposPage { .. }
            | ApiRequest::StoreStats { .. }
            | ApiRequest::ServerMetrics { .. }
            | ApiRequest::ReplStatus
            | ApiRequest::ReplFetch { .. }
            | ApiRequest::Placement { .. } => true,
            // Everything else either writes (push, cite ops, deposit,
            // archive — it bumps visit counts), mints or revokes
            // credentials, or wraps other requests (batch: any item
            // could be a write).
            _ => false,
        }
    }

    /// The repository this request operates on, when it names one — the
    /// key the hub's per-repo rate limiter charges. `import_repo` /
    /// `create_repo` / `fork` target a repository that does not exist
    /// yet, so they charge only the per-user bucket.
    pub fn target_repo(&self) -> Option<&str> {
        match self {
            ApiRequest::AddMember { repo_id, .. }
            | ApiRequest::CanWrite { repo_id, .. }
            | ApiRequest::RoleOf { repo_id, .. }
            | ApiRequest::Branches { repo_id }
            | ApiRequest::ListFiles { repo_id, .. }
            | ApiRequest::ReadFile { repo_id, .. }
            | ApiRequest::Log { repo_id, .. }
            | ApiRequest::LogPage { repo_id, .. }
            | ApiRequest::CloneRepo { repo_id }
            | ApiRequest::Negotiate { repo_id, .. }
            | ApiRequest::GenerateCitation { repo_id, .. }
            | ApiRequest::CitationEntry { repo_id, .. }
            | ApiRequest::AddCite { repo_id, .. }
            | ApiRequest::ModifyCite { repo_id, .. }
            | ApiRequest::DelCite { repo_id, .. }
            | ApiRequest::Push { repo_id, .. }
            | ApiRequest::MergeBranches { repo_id, .. }
            | ApiRequest::Deposit { repo_id, .. }
            | ApiRequest::Archive { repo_id }
            | ApiRequest::ArchiveVisits { repo_id }
            | ApiRequest::CreditedAuthors { repo_id, .. }
            | ApiRequest::ReplFetch { repo_id, .. }
            | ApiRequest::StoreStats { repo_id } => Some(repo_id),
            ApiRequest::Fork { src_repo_id, .. } => Some(src_repo_id),
            _ => None,
        }
    }

    fn params_value(&self) -> Value {
        let mut p = Object::new();
        match self {
            ApiRequest::RegisterUser {
                username,
                display_name,
                secret,
            } => {
                p.insert("username", username.as_str());
                p.insert("display_name", display_name.as_str());
                if let Some(s) = secret {
                    p.insert("secret", s.as_str());
                }
            }
            ApiRequest::Login { username, secret } => {
                p.insert("username", username.as_str());
                if let Some(s) = secret {
                    p.insert("secret", s.as_str());
                }
            }
            ApiRequest::Refresh { token }
            | ApiRequest::Revoke { token }
            | ApiRequest::Whoami { token } => {
                p.insert("token", token.as_str());
            }
            ApiRequest::CreateRepo { token, name } => {
                p.insert("token", token.as_str());
                p.insert("name", name.as_str());
            }
            ApiRequest::ImportRepo {
                token,
                name,
                bundle,
            } => {
                p.insert("token", token.as_str());
                p.insert("name", name.as_str());
                p.insert("bundle", bundle.to_value());
            }
            ApiRequest::AddMember {
                token,
                repo_id,
                username,
                role,
            } => {
                p.insert("token", token.as_str());
                p.insert("repo_id", repo_id.as_str());
                p.insert("username", username.as_str());
                p.insert("role", role_str(*role));
            }
            ApiRequest::RoleOf { repo_id, username } => {
                p.insert("repo_id", repo_id.as_str());
                p.insert("username", username.as_str());
            }
            ApiRequest::CanWrite { token, repo_id } => {
                p.insert("token", token.as_str());
                p.insert("repo_id", repo_id.as_str());
            }
            ApiRequest::ListRepos | ApiRequest::AuditLog | ApiRequest::Maintenance => {}
            ApiRequest::ServerMetrics { token } => {
                if let Some(t) = token {
                    p.insert("token", t.as_str());
                }
            }
            ApiRequest::LogPage {
                repo_id,
                branch,
                cursor,
                limit,
            } => {
                p.insert("repo_id", repo_id.as_str());
                p.insert("branch", branch.as_str());
                insert_page_params(&mut p, cursor, limit);
            }
            ApiRequest::AuditLogPage { cursor, limit }
            | ApiRequest::ListReposPage { cursor, limit } => {
                insert_page_params(&mut p, cursor, limit);
            }
            ApiRequest::Negotiate { repo_id, haves } => {
                p.insert("repo_id", repo_id.as_str());
                p.insert(
                    "haves",
                    Value::Array(haves.iter().map(|id| id_value(*id)).collect()),
                );
            }
            ApiRequest::Branches { repo_id }
            | ApiRequest::CloneRepo { repo_id }
            | ApiRequest::Archive { repo_id }
            | ApiRequest::ArchiveVisits { repo_id }
            | ApiRequest::StoreStats { repo_id } => {
                p.insert("repo_id", repo_id.as_str());
            }
            ApiRequest::ListFiles { repo_id, branch }
            | ApiRequest::Log { repo_id, branch }
            | ApiRequest::CreditedAuthors { repo_id, branch } => {
                p.insert("repo_id", repo_id.as_str());
                p.insert("branch", branch.as_str());
            }
            ApiRequest::ReadFile {
                repo_id,
                branch,
                path,
            }
            | ApiRequest::GenerateCitation {
                repo_id,
                branch,
                path,
            }
            | ApiRequest::CitationEntry {
                repo_id,
                branch,
                path,
            } => {
                p.insert("repo_id", repo_id.as_str());
                p.insert("branch", branch.as_str());
                p.insert("path", path_value(path));
            }
            ApiRequest::AddCite {
                token,
                repo_id,
                branch,
                path,
                citation,
            }
            | ApiRequest::ModifyCite {
                token,
                repo_id,
                branch,
                path,
                citation,
            } => {
                p.insert("token", token.as_str());
                p.insert("repo_id", repo_id.as_str());
                p.insert("branch", branch.as_str());
                p.insert("path", path_value(path));
                p.insert("citation", citation.to_value());
            }
            ApiRequest::DelCite {
                token,
                repo_id,
                branch,
                path,
            } => {
                p.insert("token", token.as_str());
                p.insert("repo_id", repo_id.as_str());
                p.insert("branch", branch.as_str());
                p.insert("path", path_value(path));
            }
            ApiRequest::Push {
                token,
                repo_id,
                branch,
                force,
                bundle,
            } => {
                p.insert("token", token.as_str());
                p.insert("repo_id", repo_id.as_str());
                p.insert("branch", branch.as_str());
                p.insert("force", *force);
                p.insert("bundle", bundle.to_value());
            }
            ApiRequest::Fork {
                token,
                src_repo_id,
                new_name,
            } => {
                p.insert("token", token.as_str());
                p.insert("src_repo_id", src_repo_id.as_str());
                p.insert("new_name", new_name.as_str());
            }
            ApiRequest::MergeBranches {
                token,
                repo_id,
                branch,
                other_branch,
                strategy,
            } => {
                p.insert("token", token.as_str());
                p.insert("repo_id", repo_id.as_str());
                p.insert("branch", branch.as_str());
                p.insert("other_branch", other_branch.as_str());
                p.insert("strategy", strategy_str(*strategy));
            }
            ApiRequest::Deposit {
                token,
                repo_id,
                branch,
                title,
            } => {
                p.insert("token", token.as_str());
                p.insert("repo_id", repo_id.as_str());
                p.insert("branch", branch.as_str());
                p.insert("title", title.as_str());
            }
            ApiRequest::ResolveDoi { doi } => {
                p.insert("doi", doi.as_str());
            }
            ApiRequest::ResolveSwhid { swhid } => {
                p.insert("swhid", swhid.as_str());
            }
            ApiRequest::FindReposCiting { author } => {
                p.insert("author", author.as_str());
            }
            ApiRequest::AdvanceClock { ts } => {
                p.insert("ts", *ts);
            }
            ApiRequest::Batch { requests } => {
                p.insert(
                    "requests",
                    Value::Array(requests.iter().map(|r| r.envelope_value()).collect()),
                );
            }
            ApiRequest::ReplStatus => {}
            ApiRequest::ReplFetch { repo_id, haves } => {
                p.insert("repo_id", repo_id.as_str());
                p.insert(
                    "haves",
                    Value::Array(haves.iter().map(|id| id_value(*id)).collect()),
                );
            }
            ApiRequest::Placement { repo_id } => {
                if let Some(r) = repo_id {
                    p.insert("repo_id", r.as_str());
                }
            }
        }
        Value::Object(p)
    }

    /// The full envelope as a value, stamped with the lowest protocol
    /// version that can carry it (see [`ApiRequest::version`]).
    fn envelope_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("v", self.version());
        o.insert("method", self.method());
        o.insert("params", self.params_value());
        Value::Object(o)
    }

    /// Serializes to the one-line wire envelope, stamped with the lowest
    /// protocol version that can carry it (see [`ApiRequest::version`]).
    pub fn encode(&self) -> String {
        self.envelope_value().to_string_compact()
    }

    /// Serializes for the v3 binary framing: bundle object payloads are
    /// externalized into the returned side-channel vector and the
    /// envelope says `"objects_ext": n` (stamped `"v":3`). A request
    /// without a bundle returns an empty side channel and exactly the
    /// [`ApiRequest::encode`] bytes.
    pub fn encode_ext(&self) -> (String, Vec<(ObjectId, Vec<u8>)>) {
        let mut sink = Vec::new();
        let (v, params) = match self {
            ApiRequest::ImportRepo {
                token,
                name,
                bundle,
            } => {
                let mut p = Object::new();
                p.insert("token", token.as_str());
                p.insert("name", name.as_str());
                p.insert("bundle", bundle.to_value_ext(&mut sink));
                (PROTOCOL_V3, Value::Object(p))
            }
            ApiRequest::Push {
                token,
                repo_id,
                branch,
                force,
                bundle,
            } => {
                let mut p = Object::new();
                p.insert("token", token.as_str());
                p.insert("repo_id", repo_id.as_str());
                p.insert("branch", branch.as_str());
                p.insert("force", *force);
                p.insert("bundle", bundle.to_value_ext(&mut sink));
                (PROTOCOL_V3, Value::Object(p))
            }
            other => (other.version(), other.params_value()),
        };
        let mut o = Object::new();
        o.insert("v", v);
        o.insert("method", self.method());
        o.insert("params", params);
        (Value::Object(o).to_string_compact(), sink)
    }

    /// Parses a wire envelope.
    pub fn parse(text: &str) -> WireResult<ApiRequest> {
        let v = sjson::parse(text).map_err(|e| proto(format!("unparseable request: {e}")))?;
        Self::from_value(&v)
    }

    /// Parses a v3 envelope together with its side-channel objects.
    /// Bundles that say `objects_ext` draw from `objects` in order; a
    /// side channel with leftover objects, or an `objects_ext` reference
    /// from a pre-v3 envelope, is a protocol error.
    pub fn parse_ext(text: &str, objects: Vec<(ObjectId, Vec<u8>)>) -> WireResult<ApiRequest> {
        let v = sjson::parse(text).map_err(|e| proto(format!("unparseable request: {e}")))?;
        let mut sc = Sidecar {
            objects: objects.into(),
            used: false,
        };
        let req = Self::from_value_inner(&v, Some(&mut sc))?;
        if !sc.objects.is_empty() {
            return Err(proto(format!(
                "side channel carried {} unconsumed objects",
                sc.objects.len()
            )));
        }
        Ok(req)
    }

    /// Reads a request out of an already-parsed envelope value.
    pub fn from_value(v: &Value) -> WireResult<ApiRequest> {
        Self::from_value_inner(v, None)
    }

    fn from_value_inner(v: &Value, mut sidecar: Option<&mut Sidecar>) -> WireResult<ApiRequest> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("request must be an object"))?;
        let envelope_v = check_version(o)?;
        let method = req_str(o, "method")?;
        let empty = Object::new();
        let p = match o.get("params") {
            None | Some(Value::Null) => &empty,
            Some(Value::Object(p)) => p,
            Some(_) => return Err(proto("params must be an object")),
        };
        let req = match method.as_str() {
            "register_user" => ApiRequest::RegisterUser {
                username: req_str(p, "username")?,
                display_name: req_str(p, "display_name")?,
                secret: opt_str(p, "secret")?,
            },
            "login" => ApiRequest::Login {
                username: req_str(p, "username")?,
                secret: opt_str(p, "secret")?,
            },
            "refresh" => ApiRequest::Refresh {
                token: req_str(p, "token")?,
            },
            "revoke" => ApiRequest::Revoke {
                token: req_str(p, "token")?,
            },
            "whoami" => ApiRequest::Whoami {
                token: req_str(p, "token")?,
            },
            "create_repo" => ApiRequest::CreateRepo {
                token: req_str(p, "token")?,
                name: req_str(p, "name")?,
            },
            "import_repo" => ApiRequest::ImportRepo {
                token: req_str(p, "token")?,
                name: req_str(p, "name")?,
                bundle: RepoBundle::from_value_inner(
                    p.get("bundle").ok_or_else(|| proto("missing bundle"))?,
                    sidecar.as_deref_mut(),
                )?,
            },
            "add_member" => ApiRequest::AddMember {
                token: req_str(p, "token")?,
                repo_id: req_str(p, "repo_id")?,
                username: req_str(p, "username")?,
                role: role_parse(&req_str(p, "role")?)?,
            },
            "role_of" => ApiRequest::RoleOf {
                repo_id: req_str(p, "repo_id")?,
                username: req_str(p, "username")?,
            },
            "can_write" => ApiRequest::CanWrite {
                token: req_str(p, "token")?,
                repo_id: req_str(p, "repo_id")?,
            },
            "list_repos" => ApiRequest::ListRepos,
            "branches" => ApiRequest::Branches {
                repo_id: req_str(p, "repo_id")?,
            },
            "list_files" => ApiRequest::ListFiles {
                repo_id: req_str(p, "repo_id")?,
                branch: req_str(p, "branch")?,
            },
            "read_file" => ApiRequest::ReadFile {
                repo_id: req_str(p, "repo_id")?,
                branch: req_str(p, "branch")?,
                path: req_path(p)?,
            },
            "log" => ApiRequest::Log {
                repo_id: req_str(p, "repo_id")?,
                branch: req_str(p, "branch")?,
            },
            "log_page" => {
                let (cursor, limit) = parse_page_params(p)?;
                ApiRequest::LogPage {
                    repo_id: req_str(p, "repo_id")?,
                    branch: req_str(p, "branch")?,
                    cursor,
                    limit,
                }
            }
            "clone_repo" => ApiRequest::CloneRepo {
                repo_id: req_str(p, "repo_id")?,
            },
            "negotiate" => {
                let mut haves = Vec::new();
                for id in req_arr(p, "haves")? {
                    haves.push(parse_id(id, "have")?);
                }
                ApiRequest::Negotiate {
                    repo_id: req_str(p, "repo_id")?,
                    haves,
                }
            }
            "generate_citation" => ApiRequest::GenerateCitation {
                repo_id: req_str(p, "repo_id")?,
                branch: req_str(p, "branch")?,
                path: req_path(p)?,
            },
            "citation_entry" => ApiRequest::CitationEntry {
                repo_id: req_str(p, "repo_id")?,
                branch: req_str(p, "branch")?,
                path: req_path(p)?,
            },
            "add_cite" => ApiRequest::AddCite {
                token: req_str(p, "token")?,
                repo_id: req_str(p, "repo_id")?,
                branch: req_str(p, "branch")?,
                path: req_path(p)?,
                citation: parse_citation(
                    p.get("citation").ok_or_else(|| proto("missing citation"))?,
                )?,
            },
            "modify_cite" => ApiRequest::ModifyCite {
                token: req_str(p, "token")?,
                repo_id: req_str(p, "repo_id")?,
                branch: req_str(p, "branch")?,
                path: req_path(p)?,
                citation: parse_citation(
                    p.get("citation").ok_or_else(|| proto("missing citation"))?,
                )?,
            },
            "del_cite" => ApiRequest::DelCite {
                token: req_str(p, "token")?,
                repo_id: req_str(p, "repo_id")?,
                branch: req_str(p, "branch")?,
                path: req_path(p)?,
            },
            "push" => ApiRequest::Push {
                token: req_str(p, "token")?,
                repo_id: req_str(p, "repo_id")?,
                branch: req_str(p, "branch")?,
                force: req_bool(p, "force")?,
                bundle: RepoBundle::from_value_inner(
                    p.get("bundle").ok_or_else(|| proto("missing bundle"))?,
                    sidecar.as_deref_mut(),
                )?,
            },
            "fork" => ApiRequest::Fork {
                token: req_str(p, "token")?,
                src_repo_id: req_str(p, "src_repo_id")?,
                new_name: req_str(p, "new_name")?,
            },
            "merge_branches" => ApiRequest::MergeBranches {
                token: req_str(p, "token")?,
                repo_id: req_str(p, "repo_id")?,
                branch: req_str(p, "branch")?,
                other_branch: req_str(p, "other_branch")?,
                strategy: strategy_parse(&req_str(p, "strategy")?)?,
            },
            "deposit" => ApiRequest::Deposit {
                token: req_str(p, "token")?,
                repo_id: req_str(p, "repo_id")?,
                branch: req_str(p, "branch")?,
                title: req_str(p, "title")?,
            },
            "resolve_doi" => ApiRequest::ResolveDoi {
                doi: req_str(p, "doi")?,
            },
            "archive" => ApiRequest::Archive {
                repo_id: req_str(p, "repo_id")?,
            },
            "resolve_swhid" => ApiRequest::ResolveSwhid {
                swhid: req_str(p, "swhid")?,
            },
            "archive_visits" => ApiRequest::ArchiveVisits {
                repo_id: req_str(p, "repo_id")?,
            },
            "credited_authors" => ApiRequest::CreditedAuthors {
                repo_id: req_str(p, "repo_id")?,
                branch: req_str(p, "branch")?,
            },
            "find_repos_citing" => ApiRequest::FindReposCiting {
                author: req_str(p, "author")?,
            },
            "audit_log" => ApiRequest::AuditLog,
            "audit_log_page" => {
                let (cursor, limit) = parse_page_params(p)?;
                ApiRequest::AuditLogPage { cursor, limit }
            }
            "list_repos_page" => {
                let (cursor, limit) = parse_page_params(p)?;
                ApiRequest::ListReposPage { cursor, limit }
            }
            "store_stats" => ApiRequest::StoreStats {
                repo_id: req_str(p, "repo_id")?,
            },
            "maintenance" => ApiRequest::Maintenance,
            "server_metrics" => ApiRequest::ServerMetrics {
                token: opt_str(p, "token")?,
            },
            "advance_clock" => ApiRequest::AdvanceClock {
                ts: req_i64(p, "ts")?,
            },
            "batch" => {
                let mut requests = Vec::new();
                for item in req_arr(p, "requests")? {
                    // Batch items get no sidecar: objects stay inline.
                    let inner = ApiRequest::from_value(item)?;
                    if matches!(inner, ApiRequest::Batch { .. }) {
                        return Err(proto("batch requests cannot nest"));
                    }
                    requests.push(inner);
                }
                ApiRequest::Batch { requests }
            }
            "repl_status" => ApiRequest::ReplStatus,
            "repl_fetch" => {
                let mut haves = Vec::new();
                for id in req_arr(p, "haves")? {
                    haves.push(parse_id(id, "have")?);
                }
                ApiRequest::ReplFetch {
                    repo_id: req_str(p, "repo_id")?,
                    haves,
                }
            }
            "placement" => ApiRequest::Placement {
                repo_id: opt_str(p, "repo_id")?,
            },
            other => return Err(proto(format!("unknown method {other:?}"))),
        };
        // A v2-only construct inside a v1 envelope would be misread by a
        // v1 peer; refuse instead of guessing.
        if req.version() > envelope_v {
            return Err(proto(format!(
                "method {:?} with this payload requires protocol v{} (envelope says v{envelope_v})",
                req.method(),
                req.version(),
            )));
        }
        if sidecar.as_deref().is_some_and(|s| s.used) && envelope_v < PROTOCOL_V3 {
            return Err(proto(format!(
                "objects_ext requires protocol v{PROTOCOL_V3} (envelope says v{envelope_v})"
            )));
        }
        Ok(req)
    }
}

fn insert_page_params(p: &mut Object, cursor: &Option<String>, limit: &Option<u32>) {
    if let Some(c) = cursor {
        p.insert("cursor", c.as_str());
    }
    if let Some(n) = limit {
        p.insert("limit", *n as i64);
    }
}

fn parse_page_params(p: &Object) -> WireResult<(Option<String>, Option<u32>)> {
    let cursor = opt_str(p, "cursor")?;
    let limit = match p.get("limit") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_i64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| proto("limit must be a non-negative integer"))?,
        ),
    };
    Ok((cursor, limit))
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// Every result shape the platform returns. Self-describing on the wire
/// (each carries a `type` tag), so responses parse independently of the
/// request that produced them.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // shapes mirror the typed `Hub` method returns
pub enum ApiResponse {
    Unit,
    Token(String),
    User(User),
    /// A repository id, username or similar identifier.
    Id(String),
    Names(Vec<String>),
    Paths(Vec<RepoPath>),
    FileData(Vec<u8>),
    Log(Vec<LogEntry>),
    /// v2: one page of a branch's log.
    LogPage(Page<LogEntry>),
    /// v2: one page of the audit log.
    AuditPage(Page<AuditEvent>),
    /// v2: one page of a name listing (repository ids).
    NamesPage(Page<String>),
    /// v2: the server's answer to a have/want exchange.
    Negotiation(Negotiation),
    Citation(Citation),
    CitationOpt(Option<Citation>),
    Commit(ObjectId),
    Bool(bool),
    RoleOpt(Option<Role>),
    Merge(MergeSummary),
    Deposit(Deposit),
    Archive(ArchiveReport),
    Swhid(SwhKind, ObjectId),
    Count(u64),
    /// `(name, citing paths)` pairs — credited authors of one repository,
    /// or repositories citing one author.
    Credits(Vec<(String, Vec<RepoPath>)>),
    Audit(Vec<AuditEvent>),
    Stats(StoreStats),
    Maintenance(Vec<RepoMaintenance>),
    /// v3: the hub-wide health snapshot.
    Metrics(MetricsSnapshot),
    Bundle(RepoBundle),
    /// v3: the responses to a [`ApiRequest::Batch`], in request order.
    /// Items may individually be errors — one failed sub-request does not
    /// poison its siblings.
    Batch(Vec<ApiResponse>),
    /// v3: the primary's replication frontier ([`ApiRequest::ReplStatus`]).
    ReplStatus(ReplStatus),
    /// v3: the fleet placement map ([`ApiRequest::Placement`]).
    Placement(PlacementInfo),
    Error(WireError),
}

impl ApiResponse {
    /// Wraps a failed operation.
    pub fn from_error(e: &HubError) -> ApiResponse {
        ApiResponse::Error(WireError::from_hub(e))
    }

    /// The wire discriminant: the `type` tag a result serializes under
    /// (`"error"` for the error variant). Single source for the
    /// serializer and for shape-mismatch diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            ApiResponse::Unit => "unit",
            ApiResponse::Token(_) => "token",
            ApiResponse::User(_) => "user",
            ApiResponse::Id(_) => "id",
            ApiResponse::Names(_) => "names",
            ApiResponse::Paths(_) => "paths",
            ApiResponse::FileData(_) => "file",
            ApiResponse::Log(_) => "log",
            ApiResponse::LogPage(_) => "log_page",
            ApiResponse::AuditPage(_) => "audit_page",
            ApiResponse::NamesPage(_) => "names_page",
            ApiResponse::Negotiation(_) => "negotiation",
            ApiResponse::Citation(_) => "citation",
            ApiResponse::CitationOpt(_) => "citation_opt",
            ApiResponse::Commit(_) => "commit",
            ApiResponse::Bool(_) => "bool",
            ApiResponse::RoleOpt(_) => "role",
            ApiResponse::Merge(_) => "merge",
            ApiResponse::Deposit(_) => "deposit",
            ApiResponse::Archive(_) => "archive",
            ApiResponse::Swhid(..) => "swhid",
            ApiResponse::Count(_) => "count",
            ApiResponse::Credits(_) => "credits",
            ApiResponse::Audit(_) => "audit",
            ApiResponse::Stats(_) => "stats",
            ApiResponse::Maintenance(_) => "maintenance",
            ApiResponse::Metrics(_) => "metrics",
            ApiResponse::Bundle(_) => "bundle",
            ApiResponse::Batch(_) => "batch",
            ApiResponse::ReplStatus(_) => "repl_status",
            ApiResponse::Placement(_) => "placement",
            ApiResponse::Error(_) => "error",
        }
    }

    /// Splits success from failure, reconstructing a typed [`HubError`]
    /// for the failure side.
    pub fn into_result(self) -> Result<ApiResponse, HubError> {
        match self {
            ApiResponse::Error(e) => Err(e.into_hub()),
            ok => Ok(ok),
        }
    }

    fn result_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("type", self.kind());
        match self {
            ApiResponse::Unit => {}
            ApiResponse::Token(t) => {
                o.insert("token", t.as_str());
            }
            ApiResponse::User(u) => {
                o.insert("username", u.username.as_str());
                o.insert("display_name", u.display_name.as_str());
                o.insert("email", u.email.as_str());
            }
            ApiResponse::Id(id) => {
                o.insert("id", id.as_str());
            }
            ApiResponse::Names(ns) => {
                o.insert(
                    "names",
                    Value::Array(ns.iter().map(|n| Value::from(n.as_str())).collect()),
                );
            }
            ApiResponse::Paths(ps) => {
                o.insert("paths", Value::Array(ps.iter().map(path_value).collect()));
            }
            ApiResponse::FileData(bytes) => {
                o.insert("data", hex_encode(bytes));
            }
            ApiResponse::Log(entries) => {
                o.insert(
                    "entries",
                    Value::Array(entries.iter().map(log_entry_value).collect()),
                );
            }
            ApiResponse::LogPage(page) => {
                o.insert(
                    "entries",
                    Value::Array(page.items.iter().map(log_entry_value).collect()),
                );
                if let Some(next) = &page.next {
                    o.insert("next", next.as_str());
                }
            }
            ApiResponse::AuditPage(page) => {
                o.insert(
                    "events",
                    Value::Array(page.items.iter().map(audit_event_value).collect()),
                );
                if let Some(next) = &page.next {
                    o.insert("next", next.as_str());
                }
            }
            ApiResponse::NamesPage(page) => {
                o.insert(
                    "names",
                    Value::Array(page.items.iter().map(|n| Value::from(n.as_str())).collect()),
                );
                if let Some(next) = &page.next {
                    o.insert("next", next.as_str());
                }
            }
            ApiResponse::Negotiation(n) => {
                o.insert("negotiation", n.to_value());
            }
            ApiResponse::Citation(c) => {
                o.insert("citation", c.to_value());
            }
            ApiResponse::CitationOpt(c) => {
                match c {
                    Some(c) => o.insert("citation", c.to_value()),
                    None => o.insert("citation", Value::Null),
                };
            }
            ApiResponse::Commit(id) => {
                o.insert("id", id.to_hex());
            }
            ApiResponse::Bool(b) => {
                o.insert("value", *b);
            }
            ApiResponse::RoleOpt(r) => {
                match r {
                    Some(r) => o.insert("role", role_str(*r)),
                    None => o.insert("role", Value::Null),
                };
            }
            ApiResponse::Merge(m) => {
                o.insert("report", m.to_value());
            }
            ApiResponse::Deposit(d) => {
                o.insert("doi", d.doi.as_str());
                o.insert("repo_id", d.repo_id.as_str());
                o.insert("version", d.version.to_hex());
                o.insert("tree", d.tree.to_hex());
                o.insert("title", d.title.as_str());
                o.insert(
                    "creators",
                    Value::Array(d.creators.iter().map(|c| Value::from(c.as_str())).collect()),
                );
                o.insert("deposited_at", d.deposited_at);
            }
            ApiResponse::Archive(a) => {
                o.insert("origin", a.origin.as_str());
                o.insert(
                    "heads",
                    Value::Array(a.heads.iter().map(|h| Value::from(h.as_str())).collect()),
                );
                o.insert(
                    "new_objects",
                    Value::Array(vec![
                        Value::from(a.new_objects.0 as i64),
                        Value::from(a.new_objects.1 as i64),
                        Value::from(a.new_objects.2 as i64),
                    ]),
                );
            }
            ApiResponse::Swhid(kind, id) => {
                o.insert(
                    "kind",
                    match kind {
                        SwhKind::Content => "cnt",
                        SwhKind::Directory => "dir",
                        SwhKind::Revision => "rev",
                    },
                );
                o.insert("id", id.to_hex());
            }
            ApiResponse::Count(n) => {
                o.insert("count", *n as i64);
            }
            ApiResponse::Credits(cs) => {
                o.insert(
                    "credits",
                    Value::Array(
                        cs.iter()
                            .map(|(name, paths)| {
                                Value::Array(vec![
                                    Value::from(name.as_str()),
                                    Value::Array(paths.iter().map(path_value).collect()),
                                ])
                            })
                            .collect(),
                    ),
                );
            }
            ApiResponse::Audit(events) => {
                o.insert(
                    "events",
                    Value::Array(events.iter().map(audit_event_value).collect()),
                );
            }
            ApiResponse::Stats(s) => {
                o.insert("stats", s.to_value());
            }
            ApiResponse::Maintenance(entries) => {
                o.insert(
                    "repos",
                    Value::Array(entries.iter().map(|e| e.to_value()).collect()),
                );
            }
            ApiResponse::Metrics(m) => {
                o.insert("metrics", m.to_value());
            }
            ApiResponse::Bundle(b) => {
                o.insert("bundle", b.to_value());
            }
            ApiResponse::Batch(responses) => {
                o.insert(
                    "responses",
                    Value::Array(responses.iter().map(|r| r.envelope_value()).collect()),
                );
            }
            ApiResponse::ReplStatus(s) => {
                o.insert("status", s.to_value());
            }
            ApiResponse::Placement(p) => {
                o.insert("placement", p.to_value());
            }
            ApiResponse::Error(_) => unreachable!("errors are encoded by encode()"),
        }
        Value::Object(o)
    }

    /// The lowest protocol major version that can carry this response —
    /// v3 for batch responses, v2 for the page/negotiation shapes and
    /// delta bundles, v1 for everything else (including errors, which
    /// every peer must parse).
    pub fn version(&self) -> i64 {
        match self {
            ApiResponse::Batch(_)
            | ApiResponse::Metrics(_)
            | ApiResponse::ReplStatus(_)
            | ApiResponse::Placement(_) => PROTOCOL_V3,
            ApiResponse::LogPage(_)
            | ApiResponse::AuditPage(_)
            | ApiResponse::NamesPage(_)
            | ApiResponse::Negotiation(_) => PROTOCOL_V2,
            ApiResponse::Bundle(b) if b.is_delta() => PROTOCOL_V2,
            _ => PROTOCOL_V1,
        }
    }

    /// The full envelope (`v` + `result`-or-`error`) as a value — the
    /// unit that nests inside a batch response's `responses` array.
    fn envelope_value(&self) -> Value {
        let mut o = Object::new();
        o.insert("v", self.version());
        match self {
            ApiResponse::Error(e) => o.insert("error", e.to_value()),
            ok => o.insert("result", ok.result_value()),
        };
        Value::Object(o)
    }

    /// Serializes to the one-line wire envelope, stamped with the lowest
    /// protocol version that can carry it.
    pub fn encode(&self) -> String {
        self.envelope_value().to_string_compact()
    }

    /// v3 serialization: like [`ApiResponse::encode`] but bundle object
    /// payloads leave the envelope and come back as raw `(id, bytes)`
    /// pairs for the binary side channel; the envelope carries an
    /// `objects_ext` count in their place and is stamped v3. Responses
    /// without an externalizable payload encode exactly as
    /// [`ApiResponse::encode`] with an empty side channel.
    pub fn encode_ext(&self) -> (String, Vec<(ObjectId, Vec<u8>)>) {
        match self {
            ApiResponse::Bundle(b) => {
                let mut sink = Vec::new();
                let mut r = Object::new();
                r.insert("type", self.kind());
                r.insert("bundle", b.to_value_ext(&mut sink));
                let mut o = Object::new();
                o.insert("v", PROTOCOL_V3);
                o.insert("result", Value::Object(r));
                (Value::Object(o).to_string_compact(), sink)
            }
            other => (other.encode(), Vec::new()),
        }
    }

    /// Parses a wire envelope.
    pub fn parse(text: &str) -> WireResult<ApiResponse> {
        let v = sjson::parse(text).map_err(|e| proto(format!("unparseable response: {e}")))?;
        Self::from_value(&v)
    }

    /// v3 parse: like [`ApiResponse::parse`] but resolves `objects_ext`
    /// counts against `objects` received on the binary side channel.
    /// Every side-channel object must be consumed.
    pub fn parse_ext(text: &str, objects: Vec<(ObjectId, Vec<u8>)>) -> WireResult<ApiResponse> {
        let v = sjson::parse(text).map_err(|e| proto(format!("unparseable response: {e}")))?;
        let mut sc = Sidecar {
            objects: objects.into(),
            used: false,
        };
        let resp = Self::from_value_inner(&v, Some(&mut sc))?;
        if !sc.objects.is_empty() {
            return Err(proto(format!(
                "side channel carried {} unconsumed objects",
                sc.objects.len()
            )));
        }
        Ok(resp)
    }

    /// Reads a response out of an already-parsed envelope value.
    pub fn from_value(v: &Value) -> WireResult<ApiResponse> {
        Self::from_value_inner(v, None)
    }

    fn from_value_inner(v: &Value, mut sidecar: Option<&mut Sidecar>) -> WireResult<ApiResponse> {
        let o = v
            .as_object()
            .ok_or_else(|| proto("response must be an object"))?;
        let envelope_v = check_version(o)?;
        if let Some(err) = o.get("error") {
            return Ok(ApiResponse::Error(WireError::from_value(err)?));
        }
        let r = req_obj(o, "result")?;
        let resp = match req_str(r, "type")?.as_str() {
            "unit" => ApiResponse::Unit,
            "token" => ApiResponse::Token(req_str(r, "token")?),
            "user" => ApiResponse::User(User {
                username: req_str(r, "username")?,
                display_name: req_str(r, "display_name")?,
                email: req_str(r, "email")?,
            }),
            "id" => ApiResponse::Id(req_str(r, "id")?),
            "names" => {
                let mut names = Vec::new();
                for n in req_arr(r, "names")? {
                    names.push(str_of(n, "name")?);
                }
                ApiResponse::Names(names)
            }
            "paths" => {
                let mut paths = Vec::new();
                for p in req_arr(r, "paths")? {
                    paths.push(parse_path_value(p)?);
                }
                ApiResponse::Paths(paths)
            }
            "file" => ApiResponse::FileData(
                hex_decode(&req_str(r, "data")?).ok_or_else(|| proto("file data must be hex"))?,
            ),
            "log" => {
                let mut entries = Vec::new();
                for e in req_arr(r, "entries")? {
                    entries.push(parse_log_entry(e)?);
                }
                ApiResponse::Log(entries)
            }
            "log_page" => {
                let mut items = Vec::new();
                for e in req_arr(r, "entries")? {
                    items.push(parse_log_entry(e)?);
                }
                ApiResponse::LogPage(Page {
                    items,
                    next: opt_str(r, "next")?,
                })
            }
            "audit_page" => {
                let mut items = Vec::new();
                for e in req_arr(r, "events")? {
                    items.push(parse_audit_event(e)?);
                }
                ApiResponse::AuditPage(Page {
                    items,
                    next: opt_str(r, "next")?,
                })
            }
            "names_page" => {
                let mut items = Vec::new();
                for n in req_arr(r, "names")? {
                    items.push(str_of(n, "name")?);
                }
                ApiResponse::NamesPage(Page {
                    items,
                    next: opt_str(r, "next")?,
                })
            }
            "negotiation" => ApiResponse::Negotiation(Negotiation::from_value(
                r.get("negotiation")
                    .ok_or_else(|| proto("missing negotiation"))?,
            )?),
            "citation" => ApiResponse::Citation(parse_citation(
                r.get("citation").ok_or_else(|| proto("missing citation"))?,
            )?),
            "citation_opt" => match r.get("citation") {
                None | Some(Value::Null) => ApiResponse::CitationOpt(None),
                Some(v) => ApiResponse::CitationOpt(Some(parse_citation(v)?)),
            },
            "commit" => ApiResponse::Commit(parse_id(
                r.get("id").ok_or_else(|| proto("missing commit id"))?,
                "commit id",
            )?),
            "bool" => ApiResponse::Bool(req_bool(r, "value")?),
            "role" => match r.get("role") {
                None | Some(Value::Null) => ApiResponse::RoleOpt(None),
                Some(v) => ApiResponse::RoleOpt(Some(role_parse(
                    v.as_str().ok_or_else(|| proto("role must be a string"))?,
                )?)),
            },
            "merge" => ApiResponse::Merge(MergeSummary::from_value(
                r.get("report")
                    .ok_or_else(|| proto("missing merge report"))?,
            )?),
            "deposit" => {
                let mut creators = Vec::new();
                for c in req_arr(r, "creators")? {
                    creators.push(str_of(c, "creator")?);
                }
                ApiResponse::Deposit(Deposit {
                    doi: req_str(r, "doi")?,
                    repo_id: req_str(r, "repo_id")?,
                    version: parse_id(
                        r.get("version").ok_or_else(|| proto("missing version"))?,
                        "deposit version",
                    )?,
                    tree: parse_id(
                        r.get("tree").ok_or_else(|| proto("missing tree"))?,
                        "deposit tree",
                    )?,
                    title: req_str(r, "title")?,
                    creators,
                    deposited_at: req_i64(r, "deposited_at")?,
                })
            }
            "archive" => {
                let mut heads = Vec::new();
                for h in req_arr(r, "heads")? {
                    heads.push(str_of(h, "head")?);
                }
                let counts = req_arr(r, "new_objects")?;
                if counts.len() != 3 {
                    return Err(proto("new_objects must have three counts"));
                }
                let n = |v: &Value| -> WireResult<usize> {
                    v.as_i64()
                        .map(|n| n as usize)
                        .ok_or_else(|| proto("new_objects entries must be integers"))
                };
                ApiResponse::Archive(ArchiveReport {
                    origin: req_str(r, "origin")?,
                    heads,
                    new_objects: (n(&counts[0])?, n(&counts[1])?, n(&counts[2])?),
                })
            }
            "swhid" => {
                let kind = match req_str(r, "kind")?.as_str() {
                    "cnt" => SwhKind::Content,
                    "dir" => SwhKind::Directory,
                    "rev" => SwhKind::Revision,
                    other => return Err(proto(format!("unknown swhid kind {other:?}"))),
                };
                ApiResponse::Swhid(
                    kind,
                    parse_id(
                        r.get("id").ok_or_else(|| proto("missing swhid id"))?,
                        "swhid id",
                    )?,
                )
            }
            "count" => ApiResponse::Count(req_i64(r, "count")? as u64),
            "credits" => {
                let mut credits = Vec::new();
                for pair in req_arr(r, "credits")? {
                    let [name, paths] = two(pair, "credit")?;
                    let paths = paths
                        .as_array()
                        .ok_or_else(|| proto("credit paths must be an array"))?;
                    let mut ps = Vec::new();
                    for p in paths {
                        ps.push(parse_path_value(p)?);
                    }
                    credits.push((str_of(name, "credited name")?, ps));
                }
                ApiResponse::Credits(credits)
            }
            "audit" => {
                let mut events = Vec::new();
                for e in req_arr(r, "events")? {
                    events.push(parse_audit_event(e)?);
                }
                ApiResponse::Audit(events)
            }
            "stats" => ApiResponse::Stats(StoreStats::from_value(
                r.get("stats").ok_or_else(|| proto("missing stats"))?,
            )?),
            "maintenance" => {
                let mut repos = Vec::new();
                for e in req_arr(r, "repos")? {
                    repos.push(RepoMaintenance::from_value(e)?);
                }
                ApiResponse::Maintenance(repos)
            }
            "metrics" => ApiResponse::Metrics(MetricsSnapshot::from_value(
                r.get("metrics").ok_or_else(|| proto("missing metrics"))?,
            )?),
            "bundle" => ApiResponse::Bundle(RepoBundle::from_value_inner(
                r.get("bundle").ok_or_else(|| proto("missing bundle"))?,
                sidecar.as_deref_mut(),
            )?),
            "batch" => {
                let mut responses = Vec::new();
                for item in req_arr(r, "responses")? {
                    // Batch items get no sidecar: objects stay inline.
                    let inner = ApiResponse::from_value(item)?;
                    if matches!(inner, ApiResponse::Batch(_)) {
                        return Err(proto("batch responses cannot nest"));
                    }
                    responses.push(inner);
                }
                ApiResponse::Batch(responses)
            }
            "repl_status" => ApiResponse::ReplStatus(ReplStatus::from_value(
                r.get("status")
                    .ok_or_else(|| proto("missing replication status"))?,
            )?),
            "placement" => ApiResponse::Placement(PlacementInfo::from_value(
                r.get("placement")
                    .ok_or_else(|| proto("missing placement"))?,
            )?),
            other => return Err(proto(format!("unknown result type {other:?}"))),
        };
        if resp.version() > envelope_v {
            return Err(proto(format!(
                "result type {:?} requires protocol v{} (envelope says v{envelope_v})",
                resp.kind(),
                resp.version(),
            )));
        }
        if sidecar.as_deref().is_some_and(|s| s.used) && envelope_v < PROTOCOL_V3 {
            return Err(proto(format!(
                "objects_ext requires protocol v{PROTOCOL_V3} (envelope says v{envelope_v})"
            )));
        }
        Ok(resp)
    }
}

/// A [`Deposit`] as a standalone wire object — same keys as the inline
/// `deposit` result arm, nested so replication status can carry a list.
fn deposit_value(d: &Deposit) -> Value {
    let mut o = Object::new();
    o.insert("doi", d.doi.as_str());
    o.insert("repo_id", d.repo_id.as_str());
    o.insert("version", d.version.to_hex());
    o.insert("tree", d.tree.to_hex());
    o.insert("title", d.title.as_str());
    o.insert(
        "creators",
        Value::Array(d.creators.iter().map(|c| Value::from(c.as_str())).collect()),
    );
    o.insert("deposited_at", d.deposited_at);
    Value::Object(o)
}

fn parse_deposit(v: &Value) -> WireResult<Deposit> {
    let o = v
        .as_object()
        .ok_or_else(|| proto("deposit must be an object"))?;
    let mut creators = Vec::new();
    for c in req_arr(o, "creators")? {
        creators.push(str_of(c, "creator")?);
    }
    Ok(Deposit {
        doi: req_str(o, "doi")?,
        repo_id: req_str(o, "repo_id")?,
        version: parse_id(
            o.get("version").ok_or_else(|| proto("missing version"))?,
            "deposit version",
        )?,
        tree: parse_id(
            o.get("tree").ok_or_else(|| proto("missing tree"))?,
            "deposit tree",
        )?,
        title: req_str(o, "title")?,
        creators,
        deposited_at: req_i64(o, "deposited_at")?,
    })
}

fn log_entry_value(e: &LogEntry) -> Value {
    let mut eo = Object::new();
    eo.insert("id", e.id.to_hex());
    eo.insert("author", e.author.as_str());
    eo.insert("timestamp", e.timestamp);
    eo.insert("message", e.message.as_str());
    Value::Object(eo)
}

fn parse_log_entry(e: &Value) -> WireResult<LogEntry> {
    let eo = e
        .as_object()
        .ok_or_else(|| proto("log entry must be an object"))?;
    Ok(LogEntry {
        id: parse_id(
            eo.get("id").ok_or_else(|| proto("missing log id"))?,
            "log id",
        )?,
        author: req_str(eo, "author")?,
        timestamp: req_i64(eo, "timestamp")?,
        message: req_str(eo, "message")?,
    })
}

fn audit_event_value(e: &AuditEvent) -> Value {
    let mut eo = Object::new();
    eo.insert("seq", e.seq as i64);
    eo.insert("timestamp", e.timestamp);
    match &e.actor {
        Some(a) => eo.insert("actor", Value::from(a.as_str())),
        None => eo.insert("actor", Value::Null),
    };
    eo.insert("action", e.action.as_str());
    eo.insert("target", e.target.as_str());
    eo.insert("ok", e.ok);
    Value::Object(eo)
}

fn parse_audit_event(e: &Value) -> WireResult<AuditEvent> {
    let eo = e
        .as_object()
        .ok_or_else(|| proto("audit event must be an object"))?;
    Ok(AuditEvent {
        seq: req_i64(eo, "seq")? as u64,
        timestamp: req_i64(eo, "timestamp")?,
        actor: opt_str(eo, "actor")?,
        action: req_str(eo, "action")?,
        target: req_str(eo, "target")?,
        ok: req_bool(eo, "ok")?,
    })
}

// ---------------------------------------------------------------------
// Parsing helpers
// ---------------------------------------------------------------------

fn check_version(o: &Object) -> WireResult<i64> {
    let v = req_i64(o, "v")?;
    if !(PROTOCOL_V1..=PROTOCOL_VERSION).contains(&v) {
        return Err(proto(format!(
            "unsupported protocol version {v} (this peer speaks {PROTOCOL_V1} through {PROTOCOL_VERSION})"
        )));
    }
    Ok(v)
}

fn req_str(o: &Object, key: &str) -> WireResult<String> {
    o.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| proto(format!("missing or non-string field {key:?}")))
}

fn opt_str(o: &Object, key: &str) -> WireResult<Option<String>> {
    match o.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::String(s)) => Ok(Some(s.clone())),
        Some(_) => Err(proto(format!("field {key:?} must be a string or null"))),
    }
}

fn req_i64(o: &Object, key: &str) -> WireResult<i64> {
    o.get(key)
        .and_then(Value::as_i64)
        .ok_or_else(|| proto(format!("missing or non-integer field {key:?}")))
}

fn req_bool(o: &Object, key: &str) -> WireResult<bool> {
    o.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| proto(format!("missing or non-boolean field {key:?}")))
}

fn req_arr<'a>(o: &'a Object, key: &str) -> WireResult<&'a [Value]> {
    o.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| proto(format!("missing or non-array field {key:?}")))
}

fn req_obj<'a>(o: &'a Object, key: &str) -> WireResult<&'a Object> {
    o.get(key)
        .and_then(Value::as_object)
        .ok_or_else(|| proto(format!("missing or non-object field {key:?}")))
}

fn str_of(v: &Value, what: &str) -> WireResult<String> {
    v.as_str()
        .map(str::to_owned)
        .ok_or_else(|| proto(format!("{what} must be a string")))
}

fn two<'a>(v: &'a Value, what: &str) -> WireResult<[&'a Value; 2]> {
    match v.as_array() {
        Some([a, b]) => Ok([a, b]),
        _ => Err(proto(format!("{what} must be a two-element array"))),
    }
}

fn path_value(p: &RepoPath) -> Value {
    Value::from(p.to_string())
}

fn parse_path_value(v: &Value) -> WireResult<RepoPath> {
    let s = v.as_str().ok_or_else(|| proto("path must be a string"))?;
    RepoPath::parse(s).map_err(|e| proto(format!("bad path {s:?}: {e}")))
}

fn req_path(o: &Object) -> WireResult<RepoPath> {
    parse_path_value(
        o.get("path")
            .ok_or_else(|| proto("missing field \"path\""))?,
    )
}

fn id_value(id: ObjectId) -> Value {
    Value::from(id.to_hex())
}

fn parse_id(v: &Value, what: &str) -> WireResult<ObjectId> {
    let s = v
        .as_str()
        .ok_or_else(|| proto(format!("{what} must be a hex string")))?;
    ObjectId::from_hex(s).ok_or_else(|| proto(format!("{what} is not a 40-char hex id")))
}

fn parse_citation(v: &Value) -> WireResult<Citation> {
    Citation::from_value(v).map_err(|e| proto(format!("bad citation: {e}")))
}

const HEX: &[u8; 16] = b"0123456789abcdef";

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks_exact(2) {
        out.push(nibble(pair[0])? << 4 | nibble(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert_eq!(hex_decode("0g"), None);
        assert_eq!(hex_decode("abc"), None);
        assert_eq!(hex_decode(""), Some(Vec::new()));
    }

    #[test]
    fn request_envelope_round_trip() {
        let req = ApiRequest::AddCite {
            token: "ghp_x".into(),
            repo_id: "a/p".into(),
            branch: "main".into(),
            path: RepoPath::parse("src/lib.rs").unwrap(),
            citation: Citation::builder("p", "A").author("A").build(),
        };
        let text = req.encode();
        assert!(text.contains("\"v\":1"));
        assert!(text.contains("\"method\":\"add_cite\""));
        assert_eq!(ApiRequest::parse(&text).unwrap(), req);
    }

    #[test]
    fn response_envelope_round_trip() {
        let resp = ApiResponse::Commit(ObjectId::hash_bytes(b"x"));
        let text = resp.encode();
        assert_eq!(ApiResponse::parse(&text).unwrap(), resp);
    }

    #[test]
    fn wrong_version_is_refused() {
        let text = r#"{"v": 4, "method": "list_repos", "params": {}}"#;
        let err = ApiRequest::parse(text).unwrap_err();
        assert_eq!(err.code, ErrorCode::Protocol);
        assert!(err.message.contains("version"));
    }

    #[test]
    fn v1_methods_ride_in_v2_envelopes_but_not_vice_versa() {
        // A v2 peer may stamp v2 on an old method; it still parses.
        let text = r#"{"v": 2, "method": "list_repos", "params": {}}"#;
        assert_eq!(ApiRequest::parse(text).unwrap(), ApiRequest::ListRepos);
        // A v2-only method inside a v1 envelope is refused.
        let text = r#"{"v": 1, "method": "negotiate", "params": {"repo_id": "a/p", "haves": []}}"#;
        let err = ApiRequest::parse(text).unwrap_err();
        assert_eq!(err.code, ErrorCode::Protocol);
        assert!(err.message.contains("requires protocol v2"));
    }

    #[test]
    fn delta_bundles_force_v2_envelopes() {
        let full = RepoBundle {
            name: "p".into(),
            head: None,
            refs: vec![],
            objects: vec![],
            basis: vec![],
        };
        let delta = RepoBundle {
            basis: vec![ObjectId::hash_bytes(b"base")],
            ..full.clone()
        };
        let req = |bundle: RepoBundle| ApiRequest::Push {
            token: "t".into(),
            repo_id: "a/p".into(),
            branch: "main".into(),
            force: false,
            bundle,
        };
        assert!(req(full).encode().contains("\"v\":1"));
        let delta_req = req(delta);
        let text = delta_req.encode();
        assert!(text.contains("\"v\":2"));
        assert_eq!(ApiRequest::parse(&text).unwrap(), delta_req);
        // The same bytes downgraded to a v1 envelope must be refused.
        let downgraded = text.replacen("\"v\":2", "\"v\":1", 1);
        assert_eq!(
            ApiRequest::parse(&downgraded).unwrap_err().code,
            ErrorCode::Protocol
        );
    }

    #[test]
    fn page_responses_round_trip_and_stamp_v2() {
        let page = ApiResponse::NamesPage(Page {
            items: vec!["a/p".into(), "b/q".into()],
            next: Some("b/q".into()),
        });
        let text = page.encode();
        assert!(text.contains("\"v\":2"));
        assert_eq!(ApiResponse::parse(&text).unwrap(), page);
        let last = ApiResponse::NamesPage(Page {
            items: vec![],
            next: None,
        });
        assert_eq!(ApiResponse::parse(&last.encode()).unwrap(), last);
    }

    #[test]
    fn unknown_method_is_refused() {
        let text = r#"{"v": 1, "method": "frobnicate", "params": {}}"#;
        let err = ApiRequest::parse(text).unwrap_err();
        assert_eq!(err.code, ErrorCode::Protocol);
    }

    #[test]
    fn unknown_params_are_ignored() {
        let text = r#"{"v": 1, "method": "login", "params": {"username": "a", "extra": 1}}"#;
        assert_eq!(
            ApiRequest::parse(text).unwrap(),
            ApiRequest::Login {
                username: "a".into(),
                secret: None
            }
        );
    }

    #[test]
    fn error_codes_reconstruct_hub_errors() {
        let original = HubError::PermissionDenied("bob lacks Write".into());
        let wire = WireError::from_hub(&original);
        assert_eq!(wire.code, ErrorCode::PermissionDenied);
        assert_eq!(wire.into_hub(), original);

        let original = HubError::Cite(citekit::CiteError::AlreadyCited(
            RepoPath::parse("src/lib.rs").unwrap(),
        ));
        let wire = WireError::from_hub(&original);
        assert_eq!(wire.code, ErrorCode::AlreadyCited);
        assert_eq!(wire.into_hub(), original);

        let original = HubError::Git(gitlite::GitError::NonFastForward {
            branch: "main".into(),
        });
        let wire = WireError::from_hub(&original);
        assert_eq!(wire.code, ErrorCode::NonFastForward);
        assert_eq!(wire.into_hub(), original);

        // The common read failure keeps its exact variant in-process.
        let original = HubError::Git(gitlite::GitError::FileNotFound(
            RepoPath::parse("src/lib.rs").unwrap(),
        ));
        let wire = WireError::from_hub(&original);
        assert_eq!(wire.code, ErrorCode::FileNotFound);
        assert_eq!(wire.into_hub(), original);

        let original = HubError::Git(gitlite::GitError::NothingToCommit);
        assert_eq!(WireError::from_hub(&original).into_hub(), original);

        let original = HubError::Cite(citekit::CiteError::BadCitationFile("bad json".into()));
        let wire = WireError::from_hub(&original);
        assert_eq!(wire.code, ErrorCode::BadCitationFile);
        assert_eq!(wire.into_hub(), original);
    }

    #[test]
    fn missing_required_detail_reconstructs_as_protocol_error() {
        // A peer that strips the structured payload gets an honest
        // protocol error, not a typed error naming an invented path.
        let wire = WireError {
            code: ErrorCode::AlreadyCited,
            message: "already cited".into(),
            detail: None,
        };
        assert!(matches!(wire.into_hub(), HubError::Protocol(_)));
        let wire = WireError {
            code: ErrorCode::ObjectNotFound,
            message: "object gone".into(),
            detail: Some("not-hex".into()),
        };
        assert!(matches!(wire.into_hub(), HubError::Protocol(_)));
    }

    #[test]
    fn error_envelope_round_trip() {
        let resp = ApiResponse::from_error(&HubError::RepoNotFound("a/p".into()));
        let text = resp.encode();
        assert!(text.contains("\"error\""));
        assert!(!text.contains("\"result\""));
        let back = ApiResponse::parse(&text).unwrap();
        assert_eq!(back, resp);
        assert!(matches!(
            back.into_result(),
            Err(HubError::RepoNotFound(r)) if r == "a/p"
        ));
    }

    // -- protocol v3 ---------------------------------------------------

    fn push_with_objects() -> ApiRequest {
        let payload = b"blob 13\0fn main() {}\n".to_vec();
        ApiRequest::Push {
            token: "t".into(),
            repo_id: "a/p".into(),
            branch: "main".into(),
            force: false,
            bundle: RepoBundle {
                name: "p".into(),
                head: None,
                refs: vec![("main".into(), ObjectId::hash_bytes(b"c"))],
                objects: vec![(ObjectId::hash_bytes(&payload), payload)],
                basis: vec![],
            },
        }
    }

    #[test]
    fn batch_request_round_trips_and_stamps_v3() {
        let req = ApiRequest::Batch {
            requests: vec![
                ApiRequest::Whoami { token: "t".into() },
                ApiRequest::ListRepos,
            ],
        };
        let text = req.encode();
        assert!(text.starts_with("{\"v\":3,"), "{text}");
        assert!(text.contains("\"method\":\"batch\""));
        assert_eq!(ApiRequest::parse(&text).unwrap(), req);
        // Downgraded to v2, the same envelope must be refused.
        let downgraded = text.replacen("\"v\":3", "\"v\":2", 1);
        assert_eq!(
            ApiRequest::parse(&downgraded).unwrap_err().code,
            ErrorCode::Protocol
        );
    }

    #[test]
    fn batch_response_round_trips_and_stamps_v3() {
        let resp = ApiResponse::Batch(vec![
            ApiResponse::Bool(true),
            ApiResponse::from_error(&HubError::AuthFailed),
        ]);
        let text = resp.encode();
        assert!(text.starts_with("{\"v\":3,"), "{text}");
        assert_eq!(ApiResponse::parse(&text).unwrap(), resp);
    }

    #[test]
    fn nested_batches_are_refused() {
        let req = ApiRequest::Batch {
            requests: vec![ApiRequest::Batch { requests: vec![] }],
        };
        let err = ApiRequest::parse(&req.encode()).unwrap_err();
        assert_eq!(err.code, ErrorCode::Protocol);
        assert!(err.message.contains("nest"), "{}", err.message);

        let resp = ApiResponse::Batch(vec![ApiResponse::Batch(vec![])]);
        let err = ApiResponse::parse(&resp.encode()).unwrap_err();
        assert_eq!(err.code, ErrorCode::Protocol);
        assert!(err.message.contains("nest"), "{}", err.message);
    }

    #[test]
    fn encode_ext_externalizes_objects_and_round_trips() {
        let req = push_with_objects();
        let (text, objects) = req.encode_ext();
        assert!(text.starts_with("{\"v\":3,"), "{text}");
        assert!(text.contains("\"objects_ext\":1"), "{text}");
        assert!(!text.contains("\"objects\":["), "{text}");
        assert_eq!(objects.len(), 1);
        assert_eq!(ApiRequest::parse_ext(&text, objects).unwrap(), req);
    }

    #[test]
    fn encode_ext_shrinks_the_envelope() {
        let req = push_with_objects();
        let inline = req.encode();
        let (text, _) = req.encode_ext();
        assert!(
            text.len() < inline.len(),
            "ext envelope ({}) not smaller than inline ({})",
            text.len(),
            inline.len()
        );
    }

    #[test]
    fn response_encode_ext_externalizes_bundles() {
        let bundle = match push_with_objects() {
            ApiRequest::Push { bundle, .. } => bundle,
            _ => unreachable!(),
        };
        let resp = ApiResponse::Bundle(bundle);
        let (text, objects) = resp.encode_ext();
        assert!(text.starts_with("{\"v\":3,"), "{text}");
        assert!(text.contains("\"objects_ext\":1"), "{text}");
        assert_eq!(objects.len(), 1);
        assert_eq!(ApiResponse::parse_ext(&text, objects).unwrap(), resp);
        // Responses with nothing to externalize keep their plain encoding.
        let plain = ApiResponse::Bool(true);
        let (text, objects) = plain.encode_ext();
        assert_eq!(text, plain.encode());
        assert!(objects.is_empty());
    }

    #[test]
    fn objects_ext_without_side_channel_is_refused() {
        let (text, _objects) = push_with_objects().encode_ext();
        // Plain parse has no side channel to satisfy the count.
        let err = ApiRequest::parse(&text).unwrap_err();
        assert_eq!(err.code, ErrorCode::Protocol);
        assert!(err.message.contains("side channel"), "{}", err.message);
    }

    #[test]
    fn objects_ext_in_v2_envelope_is_refused() {
        let (text, objects) = push_with_objects().encode_ext();
        let downgraded = text.replacen("\"v\":3", "\"v\":2", 1);
        let err = ApiRequest::parse_ext(&downgraded, objects).unwrap_err();
        assert_eq!(err.code, ErrorCode::Protocol);
        assert!(err.message.contains("v3"), "{}", err.message);
    }

    #[test]
    fn leftover_side_channel_objects_are_refused() {
        let (text, mut objects) = push_with_objects().encode_ext();
        objects.push((ObjectId::hash_bytes(b"extra"), b"extra".to_vec()));
        let err = ApiRequest::parse_ext(&text, objects).unwrap_err();
        assert_eq!(err.code, ErrorCode::Protocol);
        assert!(err.message.contains("unconsumed"), "{}", err.message);
    }

    #[test]
    fn short_side_channel_is_refused() {
        let (text, _objects) = push_with_objects().encode_ext();
        let err = ApiRequest::parse_ext(&text, Vec::new()).unwrap_err();
        assert_eq!(err.code, ErrorCode::Protocol);
        assert!(err.message.contains("carried"), "{}", err.message);
    }

    #[test]
    fn objects_and_objects_ext_together_are_refused() {
        let (text, objects) = push_with_objects().encode_ext();
        let spliced = text.replacen("\"objects_ext\":1", "\"objects\":[],\"objects_ext\":1", 1);
        let err = ApiRequest::parse_ext(&spliced, objects).unwrap_err();
        assert_eq!(err.code, ErrorCode::Protocol);
        assert!(err.message.contains("both"), "{}", err.message);
    }

    #[test]
    fn transport_closed_code_round_trips() {
        let original = HubError::TransportClosed("read reset by peer".into());
        let wire = WireError::from_hub(&original);
        assert_eq!(wire.code, ErrorCode::TransportClosed);
        assert_eq!(wire.code.as_str(), "transport_closed");
        assert_eq!(ErrorCode::parse("transport_closed"), Some(wire.code));
        assert_eq!(wire.into_hub(), original);
    }
}
