//! Append-only audit log of every hub operation.
//!
//! Credit and provenance systems need an answer to "who changed this
//! citation, and when" beyond what the commit history shows (e.g. failed
//! attempts, permission denials, token issuance). Every API call records
//! an event here.

/// One recorded API call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEvent {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Hub logical-clock timestamp (seconds).
    pub timestamp: i64,
    /// Acting user, when authenticated.
    pub actor: Option<String>,
    /// Operation name, e.g. `"add_cite"`.
    pub action: String,
    /// Operation target, e.g. `"leshang/P1"` or a path.
    pub target: String,
    /// Whether the operation succeeded.
    pub ok: bool,
}

/// The log container.
#[derive(Debug, Default)]
pub struct AuditLog {
    events: Vec<AuditEvent>,
}

impl AuditLog {
    /// Appends an event, assigning its sequence number.
    pub fn record(
        &mut self,
        timestamp: i64,
        actor: Option<&str>,
        action: &str,
        target: &str,
        ok: bool,
    ) {
        let seq = self.events.len() as u64;
        self.events.push(AuditEvent {
            seq,
            timestamp,
            actor: actor.map(str::to_owned),
            action: action.to_owned(),
            target: target.to_owned(),
            ok,
        });
    }

    /// Ingests an event replicated from another hub, preserving its
    /// sequence number. Returns `true` when the event was appended:
    /// events at exactly the next sequence are taken, events below it
    /// are already present (idempotent re-delivery) and skipped, and an
    /// event beyond the next sequence is refused — a gap would break the
    /// dense numbering [`AuditLog::record`] guarantees.
    pub fn ingest(&mut self, event: AuditEvent) -> Result<bool, u64> {
        let next = self.events.len() as u64;
        match event.seq.cmp(&next) {
            std::cmp::Ordering::Less => Ok(false),
            std::cmp::Ordering::Equal => {
                self.events.push(event);
                Ok(true)
            }
            std::cmp::Ordering::Greater => Err(next),
        }
    }

    /// All events, oldest first.
    pub fn events(&self) -> &[AuditEvent] {
        &self.events
    }

    /// Events touching a given target.
    pub fn for_target<'a>(&'a self, target: &'a str) -> impl Iterator<Item = &'a AuditEvent> {
        self.events.iter().filter(move |e| e.target == target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_sequence() {
        let mut log = AuditLog::default();
        log.record(1, Some("alice"), "create_repo", "alice/p", true);
        log.record(2, None, "generate_citation", "alice/p", true);
        log.record(3, Some("bob"), "add_cite", "alice/p", false);
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.events()[0].seq, 0);
        assert_eq!(log.events()[2].seq, 2);
        assert_eq!(log.events()[1].actor, None);
        assert!(!log.events()[2].ok);
        assert_eq!(log.for_target("alice/p").count(), 3);
        assert_eq!(log.for_target("other").count(), 0);
    }
}
