//! A Zenodo-style deposit archive that mints DOIs for released versions.
//!
//! The paper motivates GitCite against the Zenodo workflow: "A released
//! version of a software project may be treated as open-access data and
//! uploaded to \[a\] public hosting platform like Zenodo which provides a
//! DOI, thus enabling more traditional citations and ensuring
//! persistence" (§1). This simulator freezes a version (commit + tree
//! ids) under a deterministic DOI so root citations can carry real,
//! resolvable DOIs end-to-end.

use gitlite::ObjectId;
use std::collections::BTreeMap;

/// The DOI prefix used for minted identifiers (Zenodo's real prefix).
pub const DOI_PREFIX: &str = "10.5281/zenodo";

/// A frozen release record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deposit {
    /// The minted DOI, e.g. `10.5281/zenodo.3`.
    pub doi: String,
    /// Hosted repository id (`owner/name`).
    pub repo_id: String,
    /// The released commit.
    pub version: ObjectId,
    /// The released root tree (content identity of the release).
    pub tree: ObjectId,
    /// Release title (repository name + version label).
    pub title: String,
    /// Credited creators.
    pub creators: Vec<String>,
    /// Hub timestamp of the deposit.
    pub deposited_at: i64,
}

/// The deposit store.
#[derive(Debug, Default)]
pub struct Zenodo {
    deposits: BTreeMap<String, Deposit>,
    next_id: u64,
}

impl Zenodo {
    /// Mints the next DOI and stores the deposit. Depositing the exact
    /// same version of the same repository again returns the existing DOI
    /// (idempotent releases).
    pub fn deposit(
        &mut self,
        repo_id: &str,
        version: ObjectId,
        tree: ObjectId,
        title: &str,
        creators: Vec<String>,
        timestamp: i64,
    ) -> &Deposit {
        let existing = self
            .deposits
            .values()
            .find(|d| d.repo_id == repo_id && d.version == version)
            .map(|d| d.doi.clone());
        let doi = match existing {
            Some(doi) => doi,
            None => {
                self.next_id += 1;
                let doi = format!("{DOI_PREFIX}.{}", self.next_id);
                self.deposits.insert(
                    doi.clone(),
                    Deposit {
                        doi: doi.clone(),
                        repo_id: repo_id.to_owned(),
                        version,
                        tree,
                        title: title.to_owned(),
                        creators,
                        deposited_at: timestamp,
                    },
                );
                doi
            }
        };
        &self.deposits[&doi]
    }

    /// Ingests a deposit replicated from another hub, keyed by its
    /// already-minted DOI. Idempotent: re-delivering an existing DOI
    /// overwrites with identical content. The mint counter advances past
    /// any numeric suffix seen so a later local `deposit` (e.g. after
    /// promotion to primary) can never re-mint a replicated DOI.
    pub fn ingest(&mut self, deposit: Deposit) -> bool {
        if let Some(n) = deposit
            .doi
            .strip_prefix(DOI_PREFIX)
            .and_then(|rest| rest.strip_prefix('.'))
            .and_then(|n| n.parse::<u64>().ok())
        {
            self.next_id = self.next_id.max(n);
        }
        self.deposits.insert(deposit.doi.clone(), deposit).is_none()
    }

    /// Resolves a DOI to its deposit.
    pub fn resolve(&self, doi: &str) -> Option<&Deposit> {
        self.deposits.get(doi)
    }

    /// All deposits, in DOI order.
    pub fn deposits(&self) -> impl Iterator<Item = &Deposit> {
        self.deposits.values()
    }

    /// Number of deposits.
    pub fn len(&self) -> usize {
        self.deposits.len()
    }

    /// True when nothing has been deposited.
    pub fn is_empty(&self) -> bool {
        self.deposits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u8) -> ObjectId {
        ObjectId::hash_bytes(&[n])
    }

    #[test]
    fn mints_sequential_dois() {
        let mut z = Zenodo::default();
        let d1 = z
            .deposit("a/p", id(1), id(2), "p v1", vec!["alice".into()], 10)
            .doi
            .clone();
        let d2 = z
            .deposit("a/p", id(3), id(4), "p v2", vec!["alice".into()], 20)
            .doi
            .clone();
        assert_eq!(d1, "10.5281/zenodo.1");
        assert_eq!(d2, "10.5281/zenodo.2");
        assert_eq!(z.len(), 2);
    }

    #[test]
    fn deposit_is_idempotent_per_version() {
        let mut z = Zenodo::default();
        let d1 = z
            .deposit("a/p", id(1), id(2), "p v1", vec![], 10)
            .doi
            .clone();
        let d2 = z
            .deposit("a/p", id(1), id(2), "p v1 again", vec![], 30)
            .doi
            .clone();
        assert_eq!(d1, d2);
        assert_eq!(z.len(), 1);
        // Same version in a *different* repo gets its own DOI.
        let d3 = z.deposit("b/q", id(1), id(2), "q", vec![], 40).doi.clone();
        assert_ne!(d1, d3);
    }

    #[test]
    fn resolve_round_trip() {
        let mut z = Zenodo::default();
        let doi = z
            .deposit(
                "a/p",
                id(1),
                id(2),
                "p v1",
                vec!["alice".into(), "bob".into()],
                10,
            )
            .doi
            .clone();
        let dep = z.resolve(&doi).unwrap();
        assert_eq!(dep.repo_id, "a/p");
        assert_eq!(dep.version, id(1));
        assert_eq!(dep.creators, vec!["alice".to_owned(), "bob".to_owned()]);
        assert!(z.resolve("10.5281/zenodo.999").is_none());
    }
}
