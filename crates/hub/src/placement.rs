//! Repo → hub placement by rendezvous (highest-random-weight) hashing.
//!
//! A fleet of hubs splits write load by giving every repository exactly
//! one *home* hub: the member of the fleet with the highest hash score
//! for that repository id. Rendezvous hashing gives the two properties a
//! placement map needs without any coordination state:
//!
//! * **Agreement** — every party that knows the fleet's address list
//!   computes the same home for the same repository, so clients can
//!   route writes without asking anyone.
//! * **Minimal disruption** — removing one hub only re-homes the
//!   repositories that lived on it (each falls to its second-ranked
//!   hub); adding one only claims the repositories it now wins. No
//!   global reshuffle, unlike modulo hashing.
//!
//! Scores are the first eight bytes of a domain-separated SHA-256 over
//! `(hub address, repository id)`, so placement is stable across
//! processes, platforms and releases. The map is queryable over the wire
//! (`placement` — see [`crate::api::ApiRequest::Placement`]), which is
//! how a client discovers where to send a write before its first
//! `not_primary` redirect.

/// A fleet placement map: the ordered set of hub addresses that
/// participate in rendezvous hashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    hubs: Vec<String>,
}

impl Placement {
    /// Builds a map over `hubs` (wire addresses, `host:port`). Duplicate
    /// addresses are dropped, first occurrence wins; order is otherwise
    /// irrelevant to scoring.
    pub fn new<I, S>(hubs: I) -> Placement
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out: Vec<String> = Vec::new();
        for hub in hubs {
            let hub = hub.into();
            if !out.contains(&hub) {
                out.push(hub);
            }
        }
        Placement { hubs: out }
    }

    /// The participating hub addresses, in construction order.
    pub fn hubs(&self) -> &[String] {
        &self.hubs
    }

    /// True when the map has no hubs (placement unconfigured).
    pub fn is_empty(&self) -> bool {
        self.hubs.is_empty()
    }

    /// The rendezvous score of one `(hub, repo)` pair: the big-endian
    /// u64 prefix of a domain-separated SHA-256. Public so clients and
    /// servers provably agree on the arithmetic.
    pub fn score(hub_addr: &str, repo_id: &str) -> u64 {
        let mut h = sha2::Sha256::new();
        h.update(b"gitcite.placement.v1\x00");
        h.update(hub_addr.as_bytes());
        h.update(b"\x00");
        h.update(repo_id.as_bytes());
        let digest = h.finalize();
        u64::from_be_bytes(digest[..8].try_into().expect("8-byte prefix"))
    }

    /// The home hub for `repo_id` — the highest-scoring address — or
    /// `None` on an empty map. Ties (astronomically unlikely) break
    /// toward the lexically smaller address so every computer agrees.
    pub fn primary_for(&self, repo_id: &str) -> Option<&str> {
        self.hubs
            .iter()
            .max_by(|a, b| {
                Self::score(a, repo_id)
                    .cmp(&Self::score(b, repo_id))
                    // max_by keeps the *last* maximal element; order by
                    // reversed address on ties so the smaller one wins.
                    .then_with(|| b.as_str().cmp(a.as_str()))
            })
            .map(String::as_str)
    }

    /// Every hub ranked for `repo_id`, best first — the failover order a
    /// client walks when the home hub is unreachable.
    pub fn rank(&self, repo_id: &str) -> Vec<&str> {
        let mut scored: Vec<(&str, u64)> = self
            .hubs
            .iter()
            .map(|h| (h.as_str(), Self::score(h, repo_id)))
            .collect();
        scored.sort_by(|(ha, sa), (hb, sb)| sb.cmp(sa).then_with(|| ha.cmp(hb)));
        scored.into_iter().map(|(h, _)| h).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Placement {
        Placement::new(["hub-a:7000", "hub-b:7000", "hub-c:7000", "hub-d:7000"])
    }

    #[test]
    fn deterministic_and_in_fleet() {
        let p = fleet();
        for i in 0..64 {
            let repo = format!("user{i}/project{i}");
            let home = p.primary_for(&repo).unwrap();
            assert_eq!(p.primary_for(&repo), Some(home), "stable across calls");
            assert!(p.hubs().iter().any(|h| h == home));
            assert_eq!(p.rank(&repo)[0], home, "rank[0] is the home");
        }
    }

    #[test]
    fn spreads_load_across_the_fleet() {
        let p = fleet();
        let mut counts = std::collections::BTreeMap::new();
        for i in 0..400 {
            let repo = format!("owner/repo-{i}");
            *counts
                .entry(p.primary_for(&repo).unwrap().to_owned())
                .or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 4, "every hub homes something");
        for (hub, n) in &counts {
            assert!(
                (40..=180).contains(n),
                "{hub} homes {n}/400 — distribution is badly skewed"
            );
        }
    }

    #[test]
    fn removing_a_hub_only_remaps_its_own_repos() {
        let four = fleet();
        let three = Placement::new(["hub-a:7000", "hub-b:7000", "hub-c:7000"]);
        for i in 0..200 {
            let repo = format!("owner/repo-{i}");
            let before = four.primary_for(&repo).unwrap();
            let after = three.primary_for(&repo).unwrap();
            if before != "hub-d:7000" {
                assert_eq!(before, after, "{repo} moved although its home survived");
            } else {
                assert_eq!(
                    after,
                    four.rank(&repo)[1],
                    "{repo} should fall to its second-ranked hub"
                );
            }
        }
    }

    #[test]
    fn duplicates_are_dropped() {
        let p = Placement::new(["a:1", "a:1", "b:1"]);
        assert_eq!(p.hubs(), ["a:1".to_owned(), "b:1".to_owned()]);
        assert!(!p.is_empty());
        assert!(Placement::new(Vec::<String>::new()).is_empty());
        assert_eq!(
            Placement::new(Vec::<String>::new()).primary_for("x/y"),
            None
        );
    }
}
