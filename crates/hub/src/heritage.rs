//! A Software Heritage-style archive with intrinsic identifiers (SWHIDs).
//!
//! Future work #3 of the paper: "we would like to see how to integrate our
//! system with software archives such as the Software Heritage archive"
//! (§5). The real archive identifies every artifact by an *intrinsic*
//! identifier computed from its content using Git-compatible hashing —
//! which `gitlite` also uses, so our SWHIDs are structurally faithful:
//! `swh:1:cnt:<sha1>` for file contents, `swh:1:dir:<sha1>` for
//! directories and `swh:1:rev:<sha1>` for revisions.

use crate::error::{HubError, Result};
use gitlite::{Object, ObjectId, Repository};
use std::collections::{BTreeMap, BTreeSet};

/// The kind of archived object an SWHID names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwhKind {
    /// File content (blob).
    Content,
    /// Directory (tree).
    Directory,
    /// Revision (commit).
    Revision,
}

impl SwhKind {
    fn tag(self) -> &'static str {
        match self {
            SwhKind::Content => "cnt",
            SwhKind::Directory => "dir",
            SwhKind::Revision => "rev",
        }
    }
}

/// Builds the SWHID string for an object id.
pub fn swhid(kind: SwhKind, id: ObjectId) -> String {
    format!("swh:1:{}:{}", kind.tag(), id.to_hex())
}

/// Parses an SWHID string into its kind and object id.
pub fn parse_swhid(s: &str) -> Option<(SwhKind, ObjectId)> {
    let rest = s.strip_prefix("swh:1:")?;
    let (tag, hex) = rest.split_once(':')?;
    let kind = match tag {
        "cnt" => SwhKind::Content,
        "dir" => SwhKind::Directory,
        "rev" => SwhKind::Revision,
        _ => return None,
    };
    Some((kind, ObjectId::from_hex(hex)?))
}

/// Summary of one archival run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveReport {
    /// Origin URL recorded for the snapshot.
    pub origin: String,
    /// SWHIDs of the branch-tip revisions captured.
    pub heads: Vec<String>,
    /// Newly archived objects by kind: `(contents, directories, revisions)`.
    pub new_objects: (usize, usize, usize),
}

/// The archive store.
#[derive(Debug, Default)]
pub struct Heritage {
    contents: BTreeSet<ObjectId>,
    directories: BTreeSet<ObjectId>,
    revisions: BTreeSet<ObjectId>,
    /// Origin → list of visit head SWHIDs (newest visit last).
    origins: BTreeMap<String, Vec<Vec<String>>>,
}

impl Heritage {
    /// Archives everything reachable from every branch of `repo`,
    /// recording a visit for `origin`.
    pub fn archive(&mut self, origin: &str, repo: &Repository) -> Result<ArchiveReport> {
        let tips: Vec<ObjectId> = repo.branches().map(|(_, tip)| tip).collect();
        if tips.is_empty() {
            return Err(HubError::BadRequest(
                "repository has no commits to archive".into(),
            ));
        }
        let closure = repo.odb().reachable_closure(&tips).map_err(HubError::Git)?;
        let mut new_objects = (0usize, 0usize, 0usize);
        for id in closure {
            let obj = repo.odb().get(id).map_err(HubError::Git)?;
            match &*obj {
                Object::Blob(_) => {
                    if self.contents.insert(id) {
                        new_objects.0 += 1;
                    }
                }
                Object::Tree(_) => {
                    if self.directories.insert(id) {
                        new_objects.1 += 1;
                    }
                }
                Object::Commit(_) => {
                    if self.revisions.insert(id) {
                        new_objects.2 += 1;
                    }
                }
            }
        }
        let heads: Vec<String> = tips.iter().map(|t| swhid(SwhKind::Revision, *t)).collect();
        self.origins
            .entry(origin.to_owned())
            .or_default()
            .push(heads.clone());
        Ok(ArchiveReport {
            origin: origin.to_owned(),
            heads,
            new_objects,
        })
    }

    /// True when the archive holds the object behind an SWHID.
    pub fn contains(&self, swhid_str: &str) -> bool {
        match parse_swhid(swhid_str) {
            Some((SwhKind::Content, id)) => self.contents.contains(&id),
            Some((SwhKind::Directory, id)) => self.directories.contains(&id),
            Some((SwhKind::Revision, id)) => self.revisions.contains(&id),
            None => false,
        }
    }

    /// Resolves an SWHID, failing when absent or malformed.
    pub fn resolve(&self, swhid_str: &str) -> Result<(SwhKind, ObjectId)> {
        let parsed =
            parse_swhid(swhid_str).ok_or_else(|| HubError::SwhidNotFound(swhid_str.to_owned()))?;
        if self.contains(swhid_str) {
            Ok(parsed)
        } else {
            Err(HubError::SwhidNotFound(swhid_str.to_owned()))
        }
    }

    /// Number of visits recorded for an origin.
    pub fn visits(&self, origin: &str) -> usize {
        self.origins.get(origin).map(Vec::len).unwrap_or(0)
    }

    /// Archive-wide object counts `(contents, directories, revisions)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.contents.len(),
            self.directories.len(),
            self.revisions.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gitlite::{path, Signature};

    fn sample_repo() -> Repository {
        let mut r = Repository::init("arch");
        r.worktree_mut().write(&path("a.txt"), &b"a\n"[..]).unwrap();
        r.commit(Signature::new("x", "x@x", 1), "c1").unwrap();
        r.worktree_mut()
            .write(&path("b/c.txt"), &b"c\n"[..])
            .unwrap();
        r.commit(Signature::new("x", "x@x", 2), "c2").unwrap();
        r
    }

    #[test]
    fn swhid_format_and_parse() {
        let id = ObjectId::hash_bytes(b"x");
        let s = swhid(SwhKind::Revision, id);
        assert!(s.starts_with("swh:1:rev:"));
        assert_eq!(parse_swhid(&s), Some((SwhKind::Revision, id)));
        assert_eq!(parse_swhid("swh:1:xyz:00"), None);
        assert_eq!(parse_swhid("not-a-swhid"), None);
        assert_eq!(parse_swhid("swh:1:cnt:zz"), None);
    }

    #[test]
    fn archive_captures_full_closure() {
        let repo = sample_repo();
        let mut h = Heritage::default();
        let report = h.archive("https://hub/x/arch", &repo).unwrap();
        // 2 commits, 3 trees (root v1, root v2, b/), 2 blobs.
        assert_eq!(report.new_objects, (2, 3, 2));
        assert_eq!(report.heads.len(), 1);
        assert!(h.contains(&report.heads[0]));
        let tip = repo.head_commit().unwrap();
        assert!(h.contains(&swhid(SwhKind::Revision, tip)));
        let tree = repo.tree_of(tip).unwrap();
        assert!(h.contains(&swhid(SwhKind::Directory, tree)));
    }

    #[test]
    fn second_visit_archives_nothing_new() {
        let repo = sample_repo();
        let mut h = Heritage::default();
        h.archive("origin", &repo).unwrap();
        let second = h.archive("origin", &repo).unwrap();
        assert_eq!(second.new_objects, (0, 0, 0));
        assert_eq!(h.visits("origin"), 2);
        assert_eq!(h.visits("elsewhere"), 0);
    }

    #[test]
    fn resolve_rejects_unknown() {
        let mut h = Heritage::default();
        let repo = sample_repo();
        h.archive("o", &repo).unwrap();
        let bogus = swhid(SwhKind::Content, ObjectId::hash_bytes(b"never stored"));
        assert!(matches!(h.resolve(&bogus), Err(HubError::SwhidNotFound(_))));
        assert!(matches!(
            h.resolve("garbage"),
            Err(HubError::SwhidNotFound(_))
        ));
    }

    #[test]
    fn identical_content_deduplicates_across_repos() {
        // The property SWH relies on: same bytes, same intrinsic id.
        let mut h = Heritage::default();
        let r1 = sample_repo();
        h.archive("o1", &r1).unwrap();
        let mut r2 = Repository::init("other");
        r2.worktree_mut()
            .write(&path("same.txt"), &b"a\n"[..])
            .unwrap();
        r2.commit(Signature::new("y", "y@y", 9), "c").unwrap();
        let report = h.archive("o2", &r2).unwrap();
        // The blob "a\n" was already archived from r1.
        assert_eq!(report.new_objects.0, 0);
    }
}
