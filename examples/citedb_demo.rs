//! The paper's demonstration scenario (§4): Yinjun Wu's CiteDB project
//! with the CoreCover import (CopyCite) and Yanssie's GUI branch
//! (MergeCite), ending with the `citation.cite` of Listing 1.
//!
//! Run with: `cargo run --example citedb_demo`

use citekit::{file, parse_iso8601, Citation, CitedRepo, FailOnConflict, MergeStrategy};
use gitlite::{path, Signature};

fn ts(iso: &str) -> i64 {
    parse_iso8601(iso).expect("valid date")
}

fn main() {
    // Chen Li's alu01-corecover: the CoreCover query-rewriting code.
    let mut corecover = CitedRepo::init_with_root(
        "alu01-corecover",
        Citation::builder("alu01-corecover", "Chen Li")
            .url("https://github.com/chenlica/alu01-corecover")
            .author("Chen Li")
            .build(),
    );
    corecover
        .write_file(
            &path("CoreCover/CoreCover.java"),
            &b"// CoreCover algorithm\n"[..],
        )
        .unwrap();
    corecover
        .write_file(
            &path("CoreCover/Rewriter.java"),
            &b"// rewriting using views\n"[..],
        )
        .unwrap();
    corecover
        .commit(
            Signature::new("Chen Li", "chenli@example.org", ts("2018-03-24T00:29:45Z")),
            "CoreCover implementation",
        )
        .unwrap();
    let v_cc = corecover.repo().head_commit().unwrap();
    println!("Chen Li's alu01-corecover at {}", v_cc.short());

    // Yinjun Wu's Data_citation_demo.
    let mut demo = CitedRepo::init_with_root(
        "Data_citation_demo",
        Citation::builder("Data_citation_demo", "Yinjun Wu")
            .url("https://github.com/thuwuyinjun/Data_citation_demo")
            .author("Yinjun Wu")
            .build(),
    );
    demo.write_file(&path("citation/engine.py"), &b"# citation engine\n"[..])
        .unwrap();
    demo.commit(
        Signature::new("Yinjun Wu", "wu@example.org", ts("2017-05-01T00:00:00Z")),
        "initial CiteDB code",
    )
    .unwrap();

    // Yanssie's summer GUI, on its own branch.
    demo.create_branch("gui").unwrap();
    demo.checkout_branch("gui").unwrap();
    demo.write_file(&path("citation/GUI/app.js"), &b"// CiteDB demo GUI\n"[..])
        .unwrap();
    demo.add_cite(
        &path("citation/GUI"),
        Citation::builder("Data_citation_demo", "Yinjun Wu")
            .url("https://github.com/thuwuyinjun/Data_citation_demo")
            .author("Yanssie")
            .commit("", "2017-06-16T20:57:06Z")
            .build(),
    )
    .unwrap();
    let gui_commit = demo
        .commit(
            Signature::new("Yanssie", "yanssie@example.org", ts("2017-06-16T20:57:06Z")),
            "GUI for the CiteDB demo",
        )
        .unwrap()
        .commit;
    let mut pinned = demo.function().get(&path("citation/GUI")).unwrap().clone();
    pinned.commit_id = gui_commit.short();
    demo.modify_cite(&path("citation/GUI"), pinned).unwrap();
    demo.commit(
        Signature::new(
            "Yanssie",
            "yanssie@example.org",
            ts("2017-06-16T20:57:06Z") + 60,
        ),
        "pin GUI citation",
    )
    .unwrap();
    println!("Yanssie's GUI branch at {}", gui_commit.short());

    // Main continues; CopyCite brings CoreCover in.
    demo.checkout_branch("main").unwrap();
    let report = demo
        .copy_cite(
            &path("CoreCover"),
            corecover.repo(),
            v_cc,
            &path("CoreCover"),
        )
        .unwrap();
    println!(
        "CopyCite imported {} files; materialized: {}",
        report.files_copied,
        report
            .materialized
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or_default()
    );
    demo.write_file(&path("CoreCover/glue.py"), &b"# dovetail with CiteDB\n"[..])
        .unwrap();
    demo.commit(
        Signature::new(
            "Yinjun Wu",
            "wu@example.org",
            ts("2018-03-24T00:29:45Z") + 3600,
        ),
        "import CoreCover",
    )
    .unwrap();

    // MergeCite the GUI branch.
    let report = demo
        .merge_cite(
            "gui",
            Signature::new("Yinjun Wu", "wu@example.org", ts("2018-08-01T00:00:00Z")),
            "Merge branch 'gui'",
            MergeStrategy::Union,
            &mut FailOnConflict,
        )
        .unwrap();
    println!(
        "MergeCite: {} citation conflicts",
        report.citation_conflicts.len()
    );

    // Release commit of 2018-09-04, stamped into the root by publish.
    demo.write_file(&path("RELEASE.md"), &b"CiteDB demo release\n"[..])
        .unwrap();
    demo.commit(
        Signature::new("Yinjun Wu", "wu@example.org", ts("2018-09-04T02:35:20Z")),
        "release",
    )
    .unwrap();
    let outcome = demo
        .publish(
            Signature::new(
                "Yinjun Wu",
                "wu@example.org",
                ts("2018-09-04T02:35:20Z") + 1,
            ),
            None,
            None,
        )
        .unwrap();

    println!("\n=== final citation.cite (compare with Listing 1 of the paper) ===\n");
    println!(
        "{}",
        file::to_text(&demo.function_at(outcome.commit).unwrap())
    );

    println!("=== resolution checks ===");
    for q in [
        "CoreCover/CoreCover.java",
        "citation/GUI/app.js",
        "citation/engine.py",
    ] {
        let c = demo.cite_at(outcome.commit, &path(q)).unwrap();
        println!("  {q:28} -> {} {:?}", c.repo_name, c.author_list);
    }
}
