//! Figure 2: the browser-extension popup, simulated headlessly — the
//! non-member flow (immediate citation generation, disabled buttons) and
//! the member flow (explicit citation editing).
//!
//! Run with: `cargo run --example browser_extension_demo`

use citekit::{Citation, CitedRepo};
use extension::Popup;
use gitlite::{path, Signature};
use hub::{Hub, Role, Transport};

fn render<T: Transport>(popup: &Popup<T>) {
    let v = popup.view();
    println!("+--------------------------- GitCite ---------------------------+");
    println!(
        "| repo: {:<20} branch: {:<10} user: {:<10}|",
        v.repo_id,
        v.branch,
        v.signed_in_as.as_deref().unwrap_or("(anonymous)")
    );
    println!(
        "| selected: {:<52}|",
        v.selected
            .as_ref()
            .map(|p| p.to_string())
            .unwrap_or_default()
    );
    println!("+----------------------------------------------------------------+");
    for line in v.text_box.lines().take(8) {
        println!("| {line:<63}|");
    }
    if v.text_box.is_empty() {
        println!("| (empty citation text box){:<38}|", "");
    }
    println!("+----------------------------------------------------------------+");
    let b = |on: bool, name: &str| {
        if on {
            format!("[{name}]")
        } else {
            format!(" {name} ")
        }
    };
    println!(
        "| {} {} {} {}            |",
        b(v.buttons.generate, "Generate Citation"),
        b(v.buttons.add, "Add"),
        b(v.buttons.modify, "Modify"),
        b(v.buttons.delete, "Delete"),
    );
    println!("| status: {:<55}|", v.status);
    println!("+----------------------------------------------------------------+\n");
}

fn main() {
    // Platform with one project.
    let hub = Hub::new("https://hub.example");
    hub.register_user("leshang", "Leshang Chen").unwrap();
    hub.register_user("yanssie", "Yanssie").unwrap();
    hub.register_user("visitor", "A Visitor").unwrap();
    let leshang = hub.login("leshang").unwrap();
    let repo_id = hub.create_repo(&leshang, "demo").unwrap();
    hub.add_member(&leshang, &repo_id, "yanssie", Role::Member)
        .unwrap();

    let mut local = CitedRepo::open(hub.clone_repo(&repo_id).unwrap()).unwrap();
    local
        .write_file(&path("core/algo.rs"), &b"// core\n"[..])
        .unwrap();
    local
        .write_file(&path("tools/gen.py"), &b"# tool\n"[..])
        .unwrap();
    local
        .add_cite(
            &path("core"),
            Citation::builder("demo-core", "Leshang Chen")
                .author("Leshang Chen")
                .build(),
        )
        .unwrap();
    local
        .commit(Signature::new("Leshang Chen", "l@x", 1000), "seed")
        .unwrap();
    hub.push(&leshang, &repo_id, "main", local.repo(), "main", false)
        .unwrap();

    // --- Non-member flow -------------------------------------------------
    println!("### A visitor clicks core/algo.rs — citation appears at once:\n");
    let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
    popup.select(&path("core/algo.rs")).unwrap();
    render(&popup);
    println!("…and copies it for a bibliography manager:\n");
    println!("{}", popup.export(bibformat::Format::Bibtex).unwrap());

    // --- Member flow -----------------------------------------------------
    println!("### Yanssie (a member) signs in and clicks the uncited tools/gen.py:\n");
    let yanssie = hub.login("yanssie").unwrap();
    let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
    popup.sign_in(yanssie).unwrap();
    popup.select(&path("tools/gen.py")).unwrap();
    render(&popup);

    println!("### She presses Generate Citation (closest ancestor), edits it, and Adds:\n");
    let mut c = popup.generate().unwrap();
    c.repo_name = "demo-tools".into();
    c.author_list = vec!["Yanssie".into()];
    popup.edit_text(c.to_value().to_string_pretty());
    popup.add().unwrap();
    render(&popup);

    println!("### The platform's audit log recorded everything:\n");
    for e in hub.audit_log().iter().rev().take(6) {
        println!(
            "  #{:<3} {:<18} by {:<12} on {:<16} ok={}",
            e.seq,
            e.action,
            e.actor.as_deref().unwrap_or("-"),
            e.target,
            e.ok
        );
    }
}
