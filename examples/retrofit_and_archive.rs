//! The paper's future-work items, working: retroactive citations for a
//! legacy project (#2) and archival integration — Zenodo DOIs and
//! Software Heritage SWHIDs (#3).
//!
//! Run with: `cargo run --example retrofit_and_archive`

use citekit::{retrofit, retrofit_history, CitedRepo, RetrofitOptions};
use gitlite::{path, RepoPath, Repository, Signature};
use hub::Hub;

fn main() {
    // A legacy project: three years of history, no citation files at all.
    let mut legacy = Repository::init("climate-sim");
    legacy
        .worktree_mut()
        .write(&path("solver/core.f90"), &b"! solver\n"[..])
        .unwrap();
    legacy
        .commit(
            Signature::new("Ada", "ada@lab", 1_500_000_000),
            "solver core",
        )
        .unwrap();
    legacy
        .worktree_mut()
        .write(&path("viz/plots.py"), &b"# plots\n"[..])
        .unwrap();
    legacy
        .commit(
            Signature::new("Grace", "grace@lab", 1_540_000_000),
            "visualization",
        )
        .unwrap();
    legacy
        .worktree_mut()
        .write(&path("solver/radiation.f90"), &b"! radiation\n"[..])
        .unwrap();
    legacy
        .commit(
            Signature::new("Ada", "ada@lab", 1_580_000_000),
            "radiation model",
        )
        .unwrap();
    legacy
        .worktree_mut()
        .write(&path("viz/maps.py"), &b"# maps\n"[..])
        .unwrap();
    legacy
        .commit(
            Signature::new("Grace", "grace@lab", 1_600_000_000),
            "map rendering",
        )
        .unwrap();
    println!(
        "legacy project: {} commits, no citation.cite",
        legacy.log_head().unwrap().len()
    );

    // --- Future work #2a: retrofit the tip -------------------------------
    let opts = RetrofitOptions::new("The Climate Lab", "https://hub.example/lab/climate-sim");
    let (cited, report) = retrofit(
        legacy.clone(),
        &opts,
        Signature::new("maintainer", "m@lab", 1_650_000_000),
    )
    .unwrap();
    println!(
        "\nretrofit synthesized citations for {:?}",
        report
            .cited_dirs
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
    );
    for q in ["solver/core.f90", "viz/plots.py"] {
        let c = cited.cite(&path(q)).unwrap();
        println!(
            "  {q:20} now credits {:?} (last touched {})",
            c.author_list, c.committed_date
        );
    }

    // --- Future work #2b: rewrite the whole history ----------------------
    let (rewritten, map) = retrofit_history(&legacy, &opts).unwrap();
    println!(
        "\nretrofit_history rewrote {} versions; every one carries citation.cite:",
        map.len()
    );
    for id in rewritten.log_head().unwrap() {
        let has = rewritten.file_at(id, &citekit::citation_path()).is_ok();
        let msg = rewritten.commit_obj(id).unwrap().message;
        println!("  {} {:40} citation.cite: {}", id.short(), msg, has);
    }

    // --- Future work #3: archives ----------------------------------------
    let hub = Hub::new("https://hub.example");
    hub.register_user("lab", "The Climate Lab").unwrap();
    let lab = hub.login("lab").unwrap();
    let repo_id = hub
        .import_repo(
            &lab,
            "climate-sim",
            CitedRepo::open(rewritten).unwrap().into_repository(),
        )
        .unwrap();

    // Zenodo-style release: mint a DOI, publish it into the root citation.
    let deposit = hub
        .deposit(&lab, &repo_id, "main", "climate-sim v1.0")
        .unwrap();
    println!(
        "\nZenodo deposit: DOI {} for commit {}",
        deposit.doi,
        deposit.version.short()
    );
    let mut local = CitedRepo::open(hub.clone_repo(&repo_id).unwrap()).unwrap();
    local
        .publish(
            Signature::new("maintainer", "m@lab", 1_660_000_000),
            Some("v1.0"),
            Some(&deposit.doi),
        )
        .unwrap();
    hub.push(&lab, &repo_id, "main", local.repo(), "main", false)
        .unwrap();
    let root = hub
        .generate_citation(&repo_id, "main", &RepoPath::root())
        .unwrap();
    println!("root citation now carries the DOI: {:?}", root.doi);

    // Software Heritage-style archival with intrinsic identifiers.
    let report = hub.archive(&repo_id).unwrap();
    println!(
        "\nSoftware Heritage archive: +{} contents, +{} directories, +{} revisions",
        report.new_objects.0, report.new_objects.1, report.new_objects.2
    );
    for head in &report.heads {
        println!("  head: {head}");
        assert!(hub.resolve_swhid(head).is_ok());
    }
    println!(
        "\nBibTeX for the released root:\n\n{}",
        bibformat::render(&root, bibformat::Format::Bibtex)
    );
}
