//! Figure 1 (right half) of the paper, narrated: versions V1..V5 of
//! projects P1 and P2 with AddCite, CopyCite and MergeCite, printing the
//! citation state at every step.
//!
//! Run with: `cargo run --example running_example`

use citekit::{Citation, CitedRepo, FailOnConflict, MergeCiteOutcome, MergeStrategy};
use gitlite::{path, ObjectId, Signature};

fn sig(name: &str, t: i64) -> Signature {
    Signature::new(name, format!("{name}@example.org"), t)
}

fn show(label: &str, repo: &CitedRepo, version: ObjectId, queries: &[&str]) {
    println!("--- {label} ({}) ---", version.short());
    for q in queries {
        let c = repo.cite_at(version, &path(q)).unwrap();
        println!(
            "  Cite({label})({q:24}) = {} by {:?}",
            c.repo_name, c.author_list
        );
    }
    println!();
}

fn main() {
    // P1, owner Leshang (the figure annotates license 115490).
    let mut p1 = CitedRepo::init_with_root(
        "P1",
        Citation::builder("P1", "Leshang")
            .url("https://hub/Leshang/P1")
            .author("Leshang")
            .license("115490")
            .build(),
    );
    p1.write_file(&path("f1.txt"), &b"f1\n"[..]).unwrap();
    p1.write_file(&path("docs/readme.md"), &b"# P1\n"[..])
        .unwrap();
    let v1 = p1.commit(sig("Leshang", 1_000), "V1").unwrap().commit;
    show("V1,P1", &p1, v1, &["f1.txt", "docs/readme.md"]);
    p1.create_branch("copy-arm").unwrap();

    // V1 → V2: AddCite attaches C2 to f1.
    p1.add_cite(
        &path("f1.txt"),
        Citation::builder("P1-f1-module", "Leshang")
            .author("Leshang")
            .build(),
    )
    .unwrap();
    let v2 = p1
        .commit(sig("Leshang", 2_000), "V2: AddCite f1")
        .unwrap()
        .commit;
    println!("AddCite(f1, C2):");
    show("V2,P1", &p1, v2, &["f1.txt", "docs/readme.md"]);

    // P2, owner Susan (license 256497), version V3 with the green subtree.
    let mut p2 = CitedRepo::init_with_root(
        "P2",
        Citation::builder("P2", "Susan")
            .url("https://hub/Susan/P2")
            .author("Susan")
            .license("256497")
            .build(),
    );
    p2.write_file(&path("green/inner.c"), &b"int inner;\n"[..])
        .unwrap();
    p2.write_file(&path("green/f2.txt"), &b"f2\n"[..]).unwrap();
    p2.add_cite(
        &path("green/inner.c"),
        Citation::builder("P2-inner", "Susan")
            .author("Susan")
            .build(),
    )
    .unwrap();
    let v3 = p2.commit(sig("Susan", 3_000), "V3").unwrap().commit;
    show("V3,P2", &p2, v3, &["green/inner.c", "green/f2.txt"]);

    // CopyCite the green subtree of P2@V3 into P1 → V4 (on the copy arm).
    p1.checkout_branch("copy-arm").unwrap();
    let report = p1
        .copy_cite(&path("green"), p2.repo(), v3, &path("green"))
        .unwrap();
    println!(
        "CopyCite(P2@{}:green -> P1:green): {} files, {} citations migrated",
        v3.short(),
        report.files_copied,
        report.citations_migrated.len()
    );
    if let Some(c4) = &report.materialized {
        println!("  materialized C4 at the copied subtree root: {c4}");
    }
    let v4 = p1
        .commit(sig("Leshang", 4_000), "V4: CopyCite")
        .unwrap()
        .commit;
    show("V4,P1", &p1, v4, &["green/f2.txt", "green/inner.c"]);

    // MergeCite V2 + V4 → V5: union of the citation files, no conflicts.
    p1.checkout_branch("main").unwrap();
    let report = p1
        .merge_cite(
            "copy-arm",
            sig("Leshang", 5_000),
            "V5: Merge",
            MergeStrategy::Union,
            &mut FailOnConflict,
        )
        .unwrap();
    let MergeCiteOutcome::Merged(v5) = report.outcome else {
        unreachable!("clean in the figure")
    };
    println!(
        "MergeCite(V2, V4) -> V5: {} citation conflicts, {} dropped entries",
        report.citation_conflicts.len(),
        report.dropped.len()
    );
    show(
        "V5,P1",
        &p1,
        v5,
        &["f1.txt", "green/f2.txt", "green/inner.c", "docs/readme.md"],
    );

    println!(
        "final citation.cite of V5:\n{}",
        citekit::file::to_text(&p1.function_at(v5).unwrap())
    );
}
