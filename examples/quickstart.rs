//! Quickstart: create a citation-enabled project, attach a citation, and
//! generate bibliography entries.
//!
//! Run with: `cargo run --example quickstart`

use citekit::{Citation, CitedRepo, ResolvePolicy};
use gitlite::{path, Signature};

fn main() {
    // A citation-enabled repository starts with a default root citation —
    // every node is citable from the first commit.
    let mut repo = CitedRepo::init(
        "my-solver",
        "Ada Lovelace",
        "https://hub.example/ada/my-solver",
    );
    repo.write_file(&path("src/simplex.rs"), &b"pub fn solve() {}\n"[..])
        .unwrap();
    repo.write_file(&path("src/presolve.rs"), &b"pub fn presolve() {}\n"[..])
        .unwrap();
    repo.write_file(&path("README.md"), &b"# my-solver\n"[..])
        .unwrap();
    let v1 = repo
        .commit(
            Signature::new("Ada Lovelace", "ada@example.org", 1_700_000_000),
            "first version",
        )
        .unwrap()
        .commit;
    println!("committed V1 = {}", v1.short());

    // Any node resolves to its closest cited ancestor — right now, the root.
    let c = repo.cite(&path("src/simplex.rs")).unwrap();
    println!("\nCite(V1)(src/simplex.rs) resolves to the root citation:\n  {c}");

    // AddCite: credit the solver directory to its actual authors.
    let solver_cite = Citation::builder("my-solver-core", "Ada Lovelace")
        .url("https://hub.example/ada/my-solver/src")
        .authors(["Ada Lovelace", "Charles Babbage"])
        .build();
    repo.add_cite(&path("src"), solver_cite).unwrap();
    let v2 = repo
        .commit(
            Signature::new("Ada Lovelace", "ada@example.org", 1_700_000_100),
            "cite the core",
        )
        .unwrap()
        .commit;

    let c = repo.cite(&path("src/simplex.rs")).unwrap();
    println!("\nAfter AddCite(src), V2 = {}:\n  {c}", v2.short());

    // The alternative resolution policies from §2 of the paper:
    let chain = repo
        .cite_policy(&path("src/simplex.rs"), ResolvePolicy::PathUnion)
        .unwrap();
    println!(
        "\nPathUnion policy returns the whole chain ({} citations):",
        chain.len()
    );
    for c in &chain {
        println!("  - {c}");
    }

    // Render for a bibliography manager.
    println!(
        "\nBibTeX:\n{}",
        bibformat::render(&chain[0], bibformat::Format::Bibtex)
    );
    println!(
        "CFF:\n{}",
        bibformat::render(&chain[0], bibformat::Format::Cff)
    );
    println!(
        "Plain:\n{}",
        bibformat::render(&chain[0], bibformat::Format::Plain)
    );

    // The citation file is versioned with the project, Listing-1 style.
    println!(
        "citation.cite as stored in V2:\n{}",
        citekit::file::to_text(repo.function())
    );
}
