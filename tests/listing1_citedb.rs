//! E3 — Listing 1: regenerating the final `citation.cite` of the paper's
//! demonstration scenario (§4).
//!
//! The scenario: Yinjun Wu's `Data_citation_demo` project (the CiteDB
//! implementation). The CoreCover query-rewriting code was imported
//! (`CopyCite`) from Chen Li's `alu01-corecover` project; a summer student,
//! Yanssie, developed a GUI on a separate branch that was later merged
//! (`MergeCite`) into main. The final file has exactly three entries:
//!
//! * `"/"` — the project root (owner/authors Yinjun Wu, release
//!   2018-09-04T02:35:20Z),
//! * `"/CoreCover/"` — crediting Chen Li's repository
//!   (2018-03-24T00:29:45Z),
//! * `"/citation/GUI/"` — crediting Yanssie within the project
//!   (2017-06-16T20:57:06Z).
//!
//! Every field of Listing 1 is reproduced verbatim **except the commit
//! ids**: the paper's `bbd248a`/`5cc951e`/`2dd6813` are SHA-1s of the real
//! GitHub repositories' histories, which cannot be re-created without
//! byte-identical histories; our scenario produces its own deterministic
//! 7-hex abbreviations with identical structure (see EXPERIMENTS.md).

use citekit::{
    file, parse_iso8601, Citation, CitedRepo, FailOnConflict, MergeCiteOutcome, MergeStrategy,
};
use gitlite::{path, RepoPath, Signature};

const GUI_DATE: &str = "2017-06-16T20:57:06Z";
const CORECOVER_DATE: &str = "2018-03-24T00:29:45Z";
const RELEASE_DATE: &str = "2018-09-04T02:35:20Z";

fn ts(iso: &str) -> i64 {
    parse_iso8601(iso).expect("valid date")
}

/// Builds Chen Li's `alu01-corecover` repository, with its CoreCover
/// implementation committed at the date Listing 1 records.
fn chenli_corecover() -> CitedRepo {
    let mut repo = CitedRepo::init_with_root(
        "alu01-corecover",
        Citation::builder("alu01-corecover", "Chen Li")
            .url("https://github.com/chenlica/alu01-corecover")
            .author("Chen Li")
            .build(),
    );
    repo.write_file(
        &path("CoreCover/CoreCover.java"),
        &b"// CoreCover algorithm\n"[..],
    )
    .unwrap();
    repo.write_file(
        &path("CoreCover/Rewriter.java"),
        &b"// query rewriting using views\n"[..],
    )
    .unwrap();
    repo.commit(
        Signature::new("Chen Li", "chenli@example.org", ts(CORECOVER_DATE)),
        "CoreCover implementation",
    )
    .unwrap();
    repo
}

/// Runs the full demonstration scenario and returns the released project.
fn run_scenario() -> (CitedRepo, gitlite::ObjectId) {
    // Yinjun Wu's Data_citation_demo.
    let mut demo = CitedRepo::init_with_root(
        "Data_citation_demo",
        Citation::builder("Data_citation_demo", "Yinjun Wu")
            .url("https://github.com/thuwuyinjun/Data_citation_demo")
            .author("Yinjun Wu")
            .build(),
    );
    demo.write_file(&path("citation/engine.py"), &b"# citation engine\n"[..])
        .unwrap();
    demo.write_file(&path("README.md"), &b"# CiteDB demo\n"[..])
        .unwrap();
    demo.commit(
        Signature::new("Yinjun Wu", "wu@example.org", ts("2017-05-01T00:00:00Z")),
        "initial CiteDB code",
    )
    .unwrap();

    // Yanssie's GUI branch (summer 2017), merged later.
    demo.create_branch("gui").unwrap();
    demo.checkout_branch("gui").unwrap();
    demo.write_file(&path("citation/GUI/app.js"), &b"// CiteDB demo GUI\n"[..])
        .unwrap();
    demo.write_file(&path("citation/GUI/index.html"), &b"<html></html>\n"[..])
        .unwrap();
    let gui_cite = Citation::builder("Data_citation_demo", "Yinjun Wu")
        .url("https://github.com/thuwuyinjun/Data_citation_demo")
        .author("Yanssie")
        .commit("", GUI_DATE)
        .build();
    demo.add_cite(&path("citation/GUI"), gui_cite).unwrap();
    let gui_commit = demo
        .commit(
            Signature::new("Yanssie", "yanssie@example.org", ts(GUI_DATE)),
            "GUI for the CiteDB demo",
        )
        .unwrap()
        .commit;
    // Pin the GUI citation to Yanssie's actual commit, as the extension
    // would when she stamps her finished work.
    let mut pinned = demo.function().get(&path("citation/GUI")).unwrap().clone();
    pinned.commit_id = gui_commit.short();
    demo.modify_cite(&path("citation/GUI"), pinned).unwrap();
    demo.commit(
        Signature::new("Yanssie", "yanssie@example.org", ts(GUI_DATE) + 60),
        "pin GUI citation",
    )
    .unwrap();

    // Meanwhile main work continues.
    demo.checkout_branch("main").unwrap();
    demo.write_file(&path("citation/views.py"), &b"# view selection\n"[..])
        .unwrap();
    demo.commit(
        Signature::new("Yinjun Wu", "wu@example.org", ts("2018-03-01T00:00:00Z")),
        "view selection",
    )
    .unwrap();

    // CopyCite the CoreCover directory from Chen Li's repository.
    let corecover = chenli_corecover();
    let v_cc = corecover.repo().head_commit().unwrap();
    demo.copy_cite(
        &path("CoreCover"),
        corecover.repo(),
        v_cc,
        &path("CoreCover"),
    )
    .unwrap();
    // "modified to dovetail with other parts of the project"
    demo.write_file(&path("CoreCover/glue.py"), &b"# dovetail with CiteDB\n"[..])
        .unwrap();
    demo.commit(
        Signature::new("Yinjun Wu", "wu@example.org", ts(CORECOVER_DATE) + 3600),
        "import CoreCover from chenlica/alu01-corecover",
    )
    .unwrap();

    // MergeCite the GUI branch back into main — no conflicts, plain union.
    let report = demo
        .merge_cite(
            "gui",
            Signature::new("Yinjun Wu", "wu@example.org", ts("2018-08-01T00:00:00Z")),
            "Merge branch 'gui'",
            MergeStrategy::Union,
            &mut FailOnConflict,
        )
        .unwrap();
    assert!(matches!(report.outcome, MergeCiteOutcome::Merged(_)));
    assert!(report.citation_conflicts.is_empty());

    // Release: the 2018-09-04 commit is the version Listing 1's root entry
    // pins; `publish` stamps it into the root citation.
    demo.write_file(&path("RELEASE.md"), &b"CiteDB demo release\n"[..])
        .unwrap();
    demo.commit(
        Signature::new("Yinjun Wu", "wu@example.org", ts(RELEASE_DATE)),
        "release",
    )
    .unwrap();
    let outcome = demo
        .publish(
            Signature::new("Yinjun Wu", "wu@example.org", ts(RELEASE_DATE) + 1),
            None,
            None,
        )
        .unwrap();
    (demo, outcome.commit)
}

#[test]
fn listing1_structure_and_fields() {
    let (demo, released) = run_scenario();
    let func = demo.function_at(released).unwrap();

    // Exactly the three entries of Listing 1 (plus nothing else).
    let keys: Vec<String> = func.iter().map(|(p, e)| p.to_cite_key(e.is_dir)).collect();
    assert_eq!(keys, vec!["/", "/CoreCover/", "/citation/GUI/"]);

    // "/" — lines 1–7.
    let root = func.root();
    assert_eq!(root.repo_name, "Data_citation_demo");
    assert_eq!(root.owner, "Yinjun Wu");
    assert_eq!(
        root.url,
        "https://github.com/thuwuyinjun/Data_citation_demo"
    );
    assert_eq!(root.author_list, vec!["Yinjun Wu"]);
    // The root pins the release commit, dated exactly as in Listing 1.
    assert_eq!(root.committed_date, RELEASE_DATE);
    assert!(!root.commit_id.is_empty());
    assert_eq!(root.commit_id.len(), 7);

    // "/CoreCover/" — lines 8–15.
    let cc = func.get(&path("CoreCover")).unwrap();
    assert_eq!(cc.repo_name, "alu01-corecover");
    assert_eq!(cc.owner, "Chen Li");
    assert_eq!(cc.committed_date, CORECOVER_DATE);
    assert_eq!(cc.url, "https://github.com/chenlica/alu01-corecover");
    assert_eq!(cc.author_list, vec!["Chen Li"]);
    assert_eq!(cc.commit_id.len(), 7);

    // "/citation/GUI/" — lines 16–22.
    let gui = func.get(&path("citation/GUI")).unwrap();
    assert_eq!(gui.repo_name, "Data_citation_demo");
    assert_eq!(gui.owner, "Yinjun Wu");
    assert_eq!(gui.committed_date, GUI_DATE);
    assert_eq!(gui.url, "https://github.com/thuwuyinjun/Data_citation_demo");
    assert_eq!(gui.author_list, vec!["Yanssie"]);
    assert_eq!(gui.commit_id.len(), 7);
}

#[test]
fn listing1_resolution_credits_the_right_people() {
    let (demo, released) = run_scenario();
    // Code inside CoreCover credits Chen Li...
    let c = demo
        .cite_at(released, &path("CoreCover/CoreCover.java"))
        .unwrap();
    assert_eq!(c.owner, "Chen Li");
    // ...the GUI credits Yanssie...
    let c = demo
        .cite_at(released, &path("citation/GUI/app.js"))
        .unwrap();
    assert_eq!(c.author_list, vec!["Yanssie"]);
    // ...and everything else credits Yinjun Wu's project root, stamped
    // with the released version.
    let c = demo.cite_at(released, &path("citation/engine.py")).unwrap();
    assert_eq!(c.author_list, vec!["Yinjun Wu"]);
    assert_eq!(c.commit_id, released.short());
}

#[test]
fn listing1_file_text_round_trips_and_is_deterministic() {
    let (demo, released) = run_scenario();
    let (demo2, released2) = run_scenario();
    let text = file::to_text(&demo.function_at(released).unwrap());
    let text2 = file::to_text(&demo2.function_at(released2).unwrap());
    // Deterministic end to end (identical timestamps ⇒ identical ids ⇒
    // byte-identical files).
    assert_eq!(text, text2);
    // Shape matches Listing 1: keys in order, field names verbatim.
    let root_pos = text.find("\"/\"").unwrap();
    let cc_pos = text.find("\"/CoreCover/\"").unwrap();
    let gui_pos = text.find("\"/citation/GUI/\"").unwrap();
    assert!(root_pos < cc_pos && cc_pos < gui_pos);
    for field in [
        "repoName",
        "owner",
        "committedDate",
        "commitID",
        "url",
        "authorList",
    ] {
        assert!(
            text.contains(&format!("\"{field}\"")),
            "missing field {field}"
        );
    }
    // And parses back to the same function.
    let reparsed = file::parse(&text).unwrap();
    assert_eq!(reparsed, demo.function_at(released).unwrap());
}

#[test]
fn listing1_bibliography_rendering() {
    let (demo, released) = run_scenario();
    let cc = demo
        .cite_at(released, &path("CoreCover/Rewriter.java"))
        .unwrap();
    let bib = bibformat::render(&cc, bibformat::Format::Bibtex);
    assert!(bib.starts_with("@software{li2018alu01corecover,"), "{bib}");
    assert!(bib.contains("author  = {Chen Li}"));
    assert!(bib.contains("year    = {2018}"));
    let plain = bibformat::render(&cc, bibformat::Format::Plain);
    assert!(plain.contains("Chen Li (2018). alu01-corecover"));
    let root = demo.cite_at(released, &RepoPath::root()).unwrap();
    let cff = bibformat::render(&root, bibformat::Format::Cff);
    assert!(cff.contains("title: Data_citation_demo"));
    assert!(cff.contains("  - name: Yinjun Wu"));
    assert!(cff.contains("date-released: 2018-09-04"));
}
