//! End-to-end persistence properties of the pluggable storage layer: a
//! cited repository saved through the local tool's `DiskStore`-backed
//! storage must reopen with identical snapshots **and** identical
//! citation resolution, across process-exit boundaries (simulated here by
//! dropping every in-memory handle between save and load).

use citekit::{Citation, CitedRepo, ResolvePolicy};
use gitcite_cli::storage;
use gitlite::{path, DiskStore, ObjectStore, Signature};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "gitcite-backend-e2e-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sig(name: &str, t: i64) -> Signature {
    Signature::new(name, format!("{name}@example.org"), t)
}

fn build_cited_project() -> CitedRepo {
    let mut repo = CitedRepo::init("P1", "Leshang", "https://hub/P1");
    repo.write_file(&path("f1.txt"), &b"one\n"[..]).unwrap();
    repo.write_file(&path("green/g1.txt"), &b"g1\n"[..])
        .unwrap();
    repo.write_file(&path("green/g2.txt"), &b"g2\n"[..])
        .unwrap();
    repo.commit(sig("Leshang", 1), "V1").unwrap();

    repo.add_cite(
        &path("f1.txt"),
        Citation::builder("C2", "Leshang")
            .author("Leshang")
            .author("Susan")
            .build(),
    )
    .unwrap();
    repo.add_cite(
        &path("green"),
        Citation::builder("C3", "Susan").author("Susan").build(),
    )
    .unwrap();
    repo.commit(sig("Leshang", 2), "V2: AddCite").unwrap();
    repo
}

/// Every query the resolver answers, for comparison across reopen.
fn resolution_table(repo: &CitedRepo) -> Vec<(String, String, Vec<String>)> {
    let mut out = Vec::new();
    for q in ["", "f1.txt", "green", "green/g1.txt", "green/g2.txt"] {
        let p = path(q);
        let closest = repo.cite(&p).unwrap();
        let chain: Vec<String> = repo
            .cite_policy(&p, ResolvePolicy::PathUnion)
            .unwrap()
            .into_iter()
            .map(|c| c.repo_name)
            .collect();
        out.push((q.to_owned(), closest.repo_name, chain));
    }
    out
}

#[test]
fn citation_resolution_survives_disk_round_trip() {
    let dir = temp_dir("resolution");
    let original = build_cited_project();
    let expected = resolution_table(&original);

    storage::save(&dir, original.repo()).unwrap();
    drop(original); // nothing in memory survives — like a process exit

    let reloaded = CitedRepo::open(storage::load(&dir).unwrap()).unwrap();
    assert_eq!(resolution_table(&reloaded), expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshots_and_history_survive_disk_round_trip() {
    let dir = temp_dir("snapshot");
    let original = build_cited_project();
    let head = original.repo().head_commit().unwrap();
    let expected_log = original.repo().log_head().unwrap();
    let expected_snapshot = original.repo().snapshot(head).unwrap();

    storage::save(&dir, original.repo()).unwrap();
    drop(original);

    let reloaded = storage::load(&dir).unwrap();
    assert_eq!(reloaded.head_commit().unwrap(), head);
    assert_eq!(reloaded.log_head().unwrap(), expected_log);
    assert_eq!(reloaded.snapshot(head).unwrap(), expected_snapshot);

    // The lazily loading store holds exactly the objects the original
    // wrote — nothing lost, nothing duplicated.
    let disk = DiskStore::open(dir.join(".gitcite/objects")).unwrap();
    let closure = disk.reachable_closure(&[head]).unwrap();
    assert!(closure.len() <= disk.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn edits_after_reload_extend_the_same_history() {
    let dir = temp_dir("extend");
    let original = build_cited_project();
    storage::save(&dir, original.repo()).unwrap();
    let v2 = original.repo().head_commit().unwrap();
    drop(original);

    // Reload, edit, commit, save; reload again and check continuity.
    let mut repo = CitedRepo::open(storage::load(&dir).unwrap()).unwrap();
    repo.write_file(&path("f2.txt"), &b"two\n"[..]).unwrap();
    repo.commit(sig("Susan", 3), "V3").unwrap();
    storage::save(&dir, repo.repo()).unwrap();
    drop(repo);

    let reloaded = CitedRepo::open(storage::load(&dir).unwrap()).unwrap();
    let log = reloaded.repo().log_head().unwrap();
    assert_eq!(log.len(), 3);
    assert!(
        log.contains(&v2),
        "old history is an ancestor of the new tip"
    );
    assert_eq!(reloaded.cite(&path("f2.txt")).unwrap().repo_name, "P1");
    assert_eq!(reloaded.cite(&path("f1.txt")).unwrap().repo_name, "C2");
    std::fs::remove_dir_all(&dir).unwrap();
}
