//! Cross-crate lifecycle: a project is born on the platform, developed
//! locally, released with a DOI (Zenodo simulator), forked, retrofitted
//! and archived (Software Heritage simulator) — exercising every subsystem
//! together, including the paper's three future-work extensions.

use citekit::{retrofit_history, Citation, CitedRepo, RetrofitOptions};
use gitlite::{path, RepoPath, Repository, Signature};
use hub::{Hub, Role};

#[test]
fn full_release_and_fork_lifecycle() {
    let hub = Hub::new("https://hub.example");
    hub.register_user("leshang", "Leshang Chen").unwrap();
    hub.register_user("susan", "Susan Davidson").unwrap();
    let leshang = hub.login("leshang").unwrap();
    let susan = hub.login("susan").unwrap();

    // Born on the platform.
    let repo_id = hub.create_repo(&leshang, "citedb").unwrap();

    // Developed locally with the citekit API.
    let mut local = CitedRepo::open(hub.clone_repo(&repo_id).unwrap()).unwrap();
    local
        .write_file(&path("src/engine.rs"), &b"pub fn cite() {}\n"[..])
        .unwrap();
    local
        .write_file(&path("src/parser.rs"), &b"pub fn parse() {}\n"[..])
        .unwrap();
    local
        .add_cite(
            &path("src"),
            Citation::builder("citedb-core", "Leshang Chen")
                .author("Leshang Chen")
                .build(),
        )
        .unwrap();
    local
        .commit(Signature::new("Leshang Chen", "l@x", 1_000), "engine")
        .unwrap();
    hub.push(&leshang, &repo_id, "main", local.repo(), "main", false)
        .unwrap();

    // Released: Zenodo deposit mints a DOI, which is published into the
    // root citation, and the release is pushed back.
    let deposit = hub
        .deposit(&leshang, &repo_id, "main", "CiteDB v1.0")
        .unwrap();
    assert_eq!(deposit.doi, "10.5281/zenodo.1");
    let mut local = CitedRepo::open(hub.clone_repo(&repo_id).unwrap()).unwrap();
    local
        .publish(
            Signature::new("Leshang Chen", "l@x", 2_000),
            Some("v1.0"),
            Some(&deposit.doi),
        )
        .unwrap();
    hub.push(&leshang, &repo_id, "main", local.repo(), "main", false)
        .unwrap();

    // Citations now carry the DOI, everywhere the root resolves.
    let c = hub
        .generate_citation(&repo_id, "main", &path("src/parser.rs"))
        .unwrap();
    assert_eq!(c.repo_name, "citedb-core"); // explicit dir citation
    let c = hub
        .generate_citation(&repo_id, "main", &RepoPath::root())
        .unwrap();
    assert_eq!(c.doi.as_deref(), Some("10.5281/zenodo.1"));
    assert_eq!(c.version.as_deref(), Some("v1.0"));
    // The DOI resolves back to the frozen deposit.
    let resolved = hub.resolve_doi("10.5281/zenodo.1").unwrap();
    assert_eq!(resolved.repo_id, repo_id);
    assert_eq!(resolved.creators, vec!["Leshang Chen".to_owned()]);

    // Forked by another researcher; provenance is preserved.
    let fork_id = hub.fork(&susan, &repo_id, "citedb-susan").unwrap();
    let fork_root = hub
        .generate_citation(&fork_id, "main", &RepoPath::root())
        .unwrap();
    assert_eq!(fork_root.owner, "Susan Davidson");
    assert_eq!(
        fork_root.extra.get("forkedFrom").unwrap()["repoName"].as_str(),
        Some("citedb")
    );
    // The fork kept the interior citation.
    let c = hub
        .generate_citation(&fork_id, "main", &path("src/engine.rs"))
        .unwrap();
    assert_eq!(c.repo_name, "citedb-core");

    // Archived: everything reachable gets intrinsic SWHIDs.
    let report = hub.archive(&repo_id).unwrap();
    assert!(!report.heads.is_empty());
    for head in &report.heads {
        assert!(hub.resolve_swhid(head).is_ok());
    }
    // Identical objects in the fork are already archived (dedup): a second
    // archive of the fork adds only its restamp commit chain.
    let fork_report = hub.archive(&fork_id).unwrap();
    assert!(
        fork_report.new_objects.2 >= 1,
        "fork's restamp commit is new"
    );

    // The audit log saw the whole story.
    let actions: Vec<String> = hub.audit_log().iter().map(|e| e.action.clone()).collect();
    for expected in [
        "create_repo",
        "push",
        "deposit",
        "fork",
        "archive",
        "generate_citation",
    ] {
        assert!(
            actions.iter().any(|a| a == expected),
            "missing audit action {expected}"
        );
    }
}

#[test]
fn retrofit_then_host_then_cite() {
    // A legacy, uncited project with two contributors.
    let mut legacy = Repository::init("legacy-sim");
    legacy
        .worktree_mut()
        .write(&path("solver/core.c"), &b"int solve;\n"[..])
        .unwrap();
    legacy
        .commit(Signature::new("Ada", "ada@x", 100), "solver")
        .unwrap();
    legacy
        .worktree_mut()
        .write(&path("viz/plot.py"), &b"plot()\n"[..])
        .unwrap();
    legacy
        .commit(Signature::new("Grace", "grace@x", 200), "viz")
        .unwrap();
    legacy
        .worktree_mut()
        .write(&path("solver/opt.c"), &b"int opt;\n"[..])
        .unwrap();
    legacy
        .commit(Signature::new("Ada", "ada@x", 300), "optimizer")
        .unwrap();

    // Rewrite its entire history with synthesized citations (future work
    // #2, the "preservation through the project history" variant).
    let opts = RetrofitOptions::new("maintainers", "https://hub.example/lab/legacy-sim");
    let (rewritten, map) = retrofit_history(&legacy, &opts).unwrap();
    assert_eq!(map.len(), 3);
    // Every rewritten version resolves citations, with per-team credit at
    // the tip.
    let cited = CitedRepo::open(rewritten).unwrap();
    assert_eq!(
        cited.cite(&path("solver/core.c")).unwrap().author_list,
        vec!["Ada"]
    );
    assert_eq!(
        cited.cite(&path("viz/plot.py")).unwrap().author_list,
        vec!["Grace"]
    );

    // Host the retrofitted project and serve citations over the API.
    let hub = Hub::new("https://hub.example");
    hub.register_user("lab", "The Lab").unwrap();
    let lab = hub.login("lab").unwrap();
    let repo_id = hub
        .import_repo(&lab, "legacy-sim", cited.into_repository())
        .unwrap();
    let c = hub
        .generate_citation(&repo_id, "main", &path("solver/opt.c"))
        .unwrap();
    assert_eq!(c.author_list, vec!["Ada"]);
    assert!(c.note.as_deref().unwrap_or("").contains("retroactive"));

    // Members can refine the synthesized citations through the popup path.
    hub.register_user("ada", "Ada").unwrap();
    let ada = hub.login("ada").unwrap();
    hub.add_member(&lab, &repo_id, "ada", Role::Member).unwrap();
    let mut refined = c.clone();
    refined.note = Some("hand-checked".into());
    hub.modify_cite(&ada, &repo_id, "main", &path("solver"), refined)
        .unwrap();
    let c = hub
        .generate_citation(&repo_id, "main", &path("solver/core.c"))
        .unwrap();
    assert_eq!(c.note.as_deref(), Some("hand-checked"));
}
