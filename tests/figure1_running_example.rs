//! E1 — Figure 1 (right half): the paper's running example, reproduced
//! end to end.
//!
//! Two projects: P1 (owner Leshang, license 115490) and P2 (owner Susan,
//! license 256497). The versions and operations, exactly as drawn:
//!
//! * V1 of P1 — initial tree, only the root cited (citation C1).
//! * V1 → V2 — `AddCite` attaches C2 to the leftmost leaf `f1`:
//!   before, `Cite(V1,P1)(f1) = C1`; after, `Cite(V2,P1)(f1) = C2`.
//! * V3 of P2 — holds the *green* subtree, one file of which carries C3;
//!   the subtree root is uncited, so its effective citation is P2's root
//!   citation C4: `Cite(V3,P2)(f2) = C4`.
//! * V3 → V4 — `CopyCite` brings the green subtree into P1; C3 and C4 are
//!   migrated, so `Cite(V4,P1)(f2) = C4` (unchanged credit).
//! * V2 + V4 → V5 — `MergeCite` merges the branches; "in this example
//!   there are no conflicts, so we simply take the union of the citation
//!   files": V5 carries C1, C2, C3 and C4.

use citekit::{Citation, CitedRepo, FailOnConflict, MergeCiteOutcome, MergeStrategy};
use gitlite::{path, RepoPath, Signature};

fn sig(name: &str, t: i64) -> Signature {
    Signature::new(name, format!("{name}@example.org"), t)
}

#[test]
fn figure1_running_example() {
    // ---- P1, version V1: root citation C1 only -------------------------
    let mut p1 = CitedRepo::init_with_root(
        "P1",
        Citation::builder("P1", "Leshang")
            .url("https://hub/Leshang/P1")
            .author("Leshang")
            .license("115490")
            .build(),
    );
    p1.write_file(&path("f1.txt"), &b"f1 contents\n"[..])
        .unwrap();
    p1.write_file(&path("docs/readme.md"), &b"# P1\n"[..])
        .unwrap();
    let v1 = p1.commit(sig("Leshang", 1_000), "V1").unwrap().commit;

    // Before AddCite: Cite(V1,P1)(f1) = C1 (the root citation).
    let c_before = p1.cite_at(v1, &path("f1.txt")).unwrap();
    assert_eq!(c_before.repo_name, "P1");
    assert_eq!(c_before.license.as_deref(), Some("115490"));
    assert_eq!(
        c_before.commit_id,
        v1.short(),
        "root citation stamped with V1"
    );

    // Two arms grow from V1: main will hold V2 (AddCite), `copy-arm`
    // will hold V4 (CopyCite) — the figure's two edges into V5.
    p1.create_branch("copy-arm").unwrap();

    // ---- V1 → V2: AddCite(f1, C2) --------------------------------------
    let c2 = Citation::builder("P1-f1-module", "Leshang")
        .url("https://hub/Leshang/P1/f1")
        .author("Leshang")
        .build();
    p1.add_cite(&path("f1.txt"), c2).unwrap();
    let v2 = p1
        .commit(sig("Leshang", 2_000), "V2: AddCite f1")
        .unwrap()
        .commit;
    assert_eq!(
        p1.cite_at(v2, &path("f1.txt")).unwrap().repo_name,
        "P1-f1-module"
    );
    // The old version still answers with C1 — citations are per version.
    assert_eq!(p1.cite_at(v1, &path("f1.txt")).unwrap().repo_name, "P1");

    // ---- P2, version V3: green subtree with C3 inside, root C4 ---------
    let mut p2 = CitedRepo::init_with_root(
        "P2",
        Citation::builder("P2", "Susan")
            .url("https://hub/Susan/P2")
            .author("Susan")
            .license("256497")
            .build(),
    );
    p2.write_file(&path("green/inner.c"), &b"int inner;\n"[..])
        .unwrap();
    p2.write_file(&path("green/f2.txt"), &b"f2 contents\n"[..])
        .unwrap();
    p2.write_file(&path("elsewhere.txt"), &b"not copied\n"[..])
        .unwrap();
    let c3 = Citation::builder("P2-inner", "Susan")
        .url("https://hub/Susan/P2/green/inner.c")
        .author("Susan")
        .build();
    p2.add_cite(&path("green/inner.c"), c3).unwrap();
    let v3 = p2.commit(sig("Susan", 3_000), "V3").unwrap().commit;

    // Cite(V3,P2)(f2) = C4: f2 is uncited, its closest cited ancestor is
    // the root of P2.
    let c4_at_source = p2.cite_at(v3, &path("green/f2.txt")).unwrap();
    assert_eq!(c4_at_source.repo_name, "P2");
    assert_eq!(c4_at_source.owner, "Susan");
    assert_eq!(c4_at_source.license.as_deref(), Some("256497"));

    // ---- V1 → V4 (on copy-arm): CopyCite(green subtree of P2@V3) -------
    p1.checkout_branch("copy-arm").unwrap();
    let report = p1
        .copy_cite(&path("green"), p2.repo(), v3, &path("green"))
        .unwrap();
    assert_eq!(report.files_copied, 2);
    // C3 migrated under the new key; C4 materialized at the subtree root
    // (the green box's root turning solid blue in the figure).
    assert!(report.citations_migrated.contains(&path("green/inner.c")));
    let c4 = report.materialized.expect("C4 materialized");
    assert_eq!(c4.repo_name, "P2");
    assert_eq!(c4.commit_id, v3.short(), "C4 pins P2's V3");
    let v4 = p1
        .commit(sig("Leshang", 4_000), "V4: CopyCite green from P2")
        .unwrap()
        .commit;

    // Cite(V4,P1)(f2) = C4 — the copy did not change f2's credit.
    let c_after_copy = p1.cite_at(v4, &path("green/f2.txt")).unwrap();
    assert_eq!(c_after_copy.repo_name, "P2");
    assert_eq!(c_after_copy.owner, "Susan");
    // And the explicitly cited file kept C3.
    assert_eq!(
        p1.cite_at(v4, &path("green/inner.c")).unwrap().repo_name,
        "P2-inner"
    );

    // ---- V2 + V4 → V5: MergeCite ---------------------------------------
    p1.checkout_branch("main").unwrap();
    let report = p1
        .merge_cite(
            "copy-arm",
            sig("Leshang", 5_000),
            "V5: Merge",
            MergeStrategy::Union,
            &mut FailOnConflict,
        )
        .unwrap();
    // "In this example there are no conflicts, so we simply take the
    // union of the citation files."
    let MergeCiteOutcome::Merged(v5) = report.outcome else {
        panic!("expected clean union merge, got {:?}", report.outcome)
    };
    assert!(report.citation_conflicts.is_empty());
    assert!(report.dropped.is_empty());

    // V5 carries all four citations.
    let func = p1.function_at(v5).unwrap();
    assert_eq!(func.len(), 4, "C1 root, C2, C3, C4");
    assert!(func.contains(&RepoPath::root())); // C1
    assert!(func.contains(&path("f1.txt"))); // C2
    assert!(func.contains(&path("green/inner.c"))); // C3
    assert!(func.contains(&path("green"))); // C4
                                            // Resolution in V5 matches the figure's final state.
    assert_eq!(
        p1.cite_at(v5, &path("f1.txt")).unwrap().repo_name,
        "P1-f1-module"
    );
    assert_eq!(
        p1.cite_at(v5, &path("green/f2.txt")).unwrap().repo_name,
        "P2"
    );
    assert_eq!(
        p1.cite_at(v5, &path("green/inner.c")).unwrap().repo_name,
        "P2-inner"
    );
    assert_eq!(
        p1.cite_at(v5, &path("docs/readme.md")).unwrap().repo_name,
        "P1"
    );

    // The version DAG has the drawn shape: V5 is a merge of the two arms.
    let v5_commit = p1.repo().commit_obj(v5).unwrap();
    assert_eq!(v5_commit.parents.len(), 2);
    assert!(v5_commit.parents.contains(&v2));
    assert!(v5_commit.parents.contains(&v4));
}

/// The same scenario driven entirely through the hosted platform, to show
/// the operations compose identically through the API path.
#[test]
fn figure1_on_the_platform() {
    let hub = hub::Hub::new("https://hub.example");
    hub.register_user("leshang", "Leshang").unwrap();
    hub.register_user("susan", "Susan").unwrap();
    let leshang = hub.login("leshang").unwrap();
    let susan = hub.login("susan").unwrap();

    // P2 with the green subtree.
    let p2_id = hub.create_repo(&susan, "P2").unwrap();
    let mut p2_local = CitedRepo::open(hub.clone_repo(&p2_id).unwrap()).unwrap();
    p2_local
        .write_file(&path("green/inner.c"), &b"int inner;\n"[..])
        .unwrap();
    p2_local
        .write_file(&path("green/f2.txt"), &b"f2\n"[..])
        .unwrap();
    p2_local
        .add_cite(
            &path("green/inner.c"),
            Citation::builder("P2-inner", "Susan")
                .author("Susan")
                .build(),
        )
        .unwrap();
    p2_local.commit(sig("Susan", 3_000), "V3").unwrap();
    hub.push(&susan, &p2_id, "main", p2_local.repo(), "main", false)
        .unwrap();

    // P1: V1, then V2 via the *hub-side* AddCite.
    let p1_id = hub.create_repo(&leshang, "P1").unwrap();
    let mut p1_local = CitedRepo::open(hub.clone_repo(&p1_id).unwrap()).unwrap();
    p1_local.write_file(&path("f1.txt"), &b"f1\n"[..]).unwrap();
    p1_local.commit(sig("Leshang", 1_000), "V1").unwrap();
    hub.push(&leshang, &p1_id, "main", p1_local.repo(), "main", false)
        .unwrap();
    hub.add_cite(
        &leshang,
        &p1_id,
        "main",
        &path("f1.txt"),
        Citation::builder("P1-f1-module", "Leshang")
            .author("Leshang")
            .build(),
    )
    .unwrap();

    // Pull V2, branch, CopyCite from the hosted P2, push both arms.
    let mut work = CitedRepo::open(hub.clone_repo(&p1_id).unwrap()).unwrap();
    work.create_branch("copy-arm").unwrap();
    work.checkout_branch("copy-arm").unwrap();
    let p2_hosted = hub.clone_repo(&p2_id).unwrap();
    let v3 = p2_hosted.head_commit().unwrap();
    work.copy_cite(&path("green"), &p2_hosted, v3, &path("green"))
        .unwrap();
    work.commit(sig("Leshang", 4_000), "V4: CopyCite").unwrap();
    hub.push(&leshang, &p1_id, "copy-arm", work.repo(), "copy-arm", false)
        .unwrap();

    // Main advances too, so the merge is a true two-parent merge (the
    // figure's two arms), not a fast-forward.
    work.checkout_branch("main").unwrap();
    work.write_file(&path("docs/notes.md"), &b"# notes\n"[..])
        .unwrap();
    work.commit(sig("Leshang", 4_500), "main-arm work").unwrap();
    hub.push(&leshang, &p1_id, "main", work.repo(), "main", false)
        .unwrap();

    // Server-side MergeCite of the two arms.
    let report = hub
        .merge_branches(&leshang, &p1_id, "main", "copy-arm", MergeStrategy::Union)
        .unwrap();
    assert!(matches!(report.outcome, hub::MergeOutcome::Merged(_)));

    // Final resolution through the public GenCite API.
    let f2 = hub
        .generate_citation(&p1_id, "main", &path("green/f2.txt"))
        .unwrap();
    assert_eq!(f2.repo_name, "P2");
    assert_eq!(f2.owner, "Susan");
    let f1 = hub
        .generate_citation(&p1_id, "main", &path("f1.txt"))
        .unwrap();
    assert_eq!(f1.repo_name, "P1-f1-module");
}
