//! The paper's §3 local-tool workflow, end to end across crates:
//! "When a project member downloads a copy of the project repository with
//! Git, the GitCite local executable tool can be used to manage the
//! citation file in the download ... When changes to files and their
//! citations are finally committed, the Git command is used to push the
//! local copy (which contains citation.cite) to the remote repository."
//!
//! Plus failure injection: corrupted citation files and corrupted on-disk
//! object stores must fail loudly, not quietly mis-credit anyone.

use citekit::CitedRepo;
use gitcite_cli::{run, storage};
use gitlite::{path, Signature};
use hub::Hub;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gitcite-workflow-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cli(dir: &Path, args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    match run(&args, dir) {
        Ok(out) => out,
        Err(e) => panic!("cli {args:?} failed: {e}"),
    }
}

#[test]
fn download_manage_push_cycle() {
    // A hosted project with one file.
    let hub = Hub::new("https://hub.example");
    hub.register_user("leshang", "Leshang Chen").unwrap();
    let token = hub.login("leshang").unwrap();
    let repo_id = hub.create_repo(&token, "P1").unwrap();
    let mut seed = CitedRepo::open(hub.clone_repo(&repo_id).unwrap()).unwrap();
    seed.write_file(&path("src/engine.rs"), &b"pub fn run() {}\n"[..])
        .unwrap();
    seed.commit(Signature::new("Leshang Chen", "l@x", 100), "engine")
        .unwrap();
    hub.push(&token, &repo_id, "main", seed.repo(), "main", false)
        .unwrap();

    // 1. "Downloads a copy of the project repository with Git": the clone
    //    is persisted to a working directory the local tool owns.
    let workdir = temp_dir("download");
    let clone = hub.clone_repo(&repo_id).unwrap();
    storage::save(&workdir, &clone).unwrap();
    assert!(workdir.join("src/engine.rs").is_file());
    assert!(workdir.join("citation.cite").is_file());

    // 2. Manage the citation file in the download with the local tool.
    cli(
        &workdir,
        &[
            "cite",
            "add",
            "src",
            "--repo-name",
            "P1-core",
            "--authors",
            "Leshang Chen",
        ],
    );
    // The user also edits a file with their editor.
    std::fs::write(workdir.join("src/util.rs"), b"pub fn util() {}\n").unwrap();
    cli(
        &workdir,
        &[
            "commit",
            "-m",
            "cite core, add util",
            "--author",
            "Leshang Chen",
        ],
    );
    let shown = cli(&workdir, &["cite", "show", "src/util.rs"]);
    assert!(shown.contains("P1-core"));

    // 3. Push the local copy (which contains citation.cite) back.
    let local = storage::load(&workdir).unwrap();
    hub.push(&token, &repo_id, "main", &local, "main", false)
        .unwrap();

    // The hosted repository now serves the new citation to everyone.
    let c = hub
        .generate_citation(&repo_id, "main", &path("src/util.rs"))
        .unwrap();
    assert_eq!(c.repo_name, "P1-core");
    let files = hub.list_files(&repo_id, "main").unwrap();
    assert!(files.contains(&path("src/util.rs")));

    let _ = std::fs::remove_dir_all(&workdir);
}

#[test]
fn corrupted_citation_file_is_rejected() {
    let workdir = temp_dir("badcite");
    cli(
        &workdir,
        &["init", "P", "--owner", "O", "--url", "https://x/P"],
    );
    std::fs::write(workdir.join("f.txt"), b"x\n").unwrap();
    cli(&workdir, &["commit", "-m", "v1", "--author", "O"]);
    // Vandalize the citation file on disk.
    std::fs::write(workdir.join("citation.cite"), b"{ not json").unwrap();
    let args: Vec<String> = ["cite", "show", "f.txt"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let err = run(&args, &workdir).unwrap_err();
    assert!(err.to_string().contains("citation.cite"), "{err}");
    let _ = std::fs::remove_dir_all(&workdir);
}

#[test]
fn missing_root_entry_is_rejected() {
    let workdir = temp_dir("noroot");
    cli(
        &workdir,
        &["init", "P", "--owner", "O", "--url", "https://x/P"],
    );
    std::fs::write(workdir.join("f.txt"), b"x\n").unwrap();
    cli(&workdir, &["commit", "-m", "v1", "--author", "O"]);
    // A syntactically valid citation file without the mandatory "/" entry.
    std::fs::write(
        workdir.join("citation.cite"),
        b"{\"/f.txt\": {\"repoName\": \"x\"}}\n",
    )
    .unwrap();
    let args: Vec<String> = ["status"].iter().map(|s| s.to_string()).collect();
    let err = run(&args, &workdir).unwrap_err();
    assert!(err.to_string().contains("root"), "{err}");
    let _ = std::fs::remove_dir_all(&workdir);
}

#[test]
fn corrupted_object_store_fails_loudly() {
    let workdir = temp_dir("badodb");
    cli(
        &workdir,
        &["init", "P", "--owner", "O", "--url", "https://x/P"],
    );
    std::fs::write(workdir.join("f.txt"), b"x\n").unwrap();
    cli(&workdir, &["commit", "-m", "v1", "--author", "O"]);
    // Truncate every stored object file.
    let objects = workdir.join(".gitcite/objects");
    for bucket in std::fs::read_dir(&objects).unwrap() {
        let bucket = bucket.unwrap().path();
        for obj in std::fs::read_dir(&bucket).unwrap() {
            let obj = obj.unwrap().path();
            std::fs::write(&obj, b"garbage").unwrap();
        }
    }
    assert!(storage::load(&workdir).is_err());
    let _ = std::fs::remove_dir_all(&workdir);
}

#[test]
fn two_members_working_copies_converge_via_hub() {
    let hub = Hub::new("https://hub.example");
    hub.register_user("alice", "Alice").unwrap();
    hub.register_user("bob", "Bob").unwrap();
    let alice = hub.login("alice").unwrap();
    let bob = hub.login("bob").unwrap();
    let repo_id = hub.create_repo(&alice, "shared").unwrap();
    hub.add_member(&alice, &repo_id, "bob", hub::Role::Member)
        .unwrap();

    // Alice's working copy adds a cited file and pushes.
    let dir_a = temp_dir("alice");
    storage::save(&dir_a, &hub.clone_repo(&repo_id).unwrap()).unwrap();
    std::fs::write(dir_a.join("a.txt"), b"alice's file\n").unwrap();
    cli(&dir_a, &["commit", "-m", "a", "--author", "Alice"]);
    cli(
        &dir_a,
        &[
            "cite",
            "add",
            "a.txt",
            "--repo-name",
            "A-part",
            "--authors",
            "Alice",
        ],
    );
    cli(&dir_a, &["commit", "-m", "cite a", "--author", "Alice"]);
    hub.push(
        &alice,
        &repo_id,
        "main",
        &storage::load(&dir_a).unwrap(),
        "main",
        false,
    )
    .unwrap();

    // Bob downloads after Alice's push, adds his own cited file, pushes.
    let dir_b = temp_dir("bob");
    storage::save(&dir_b, &hub.clone_repo(&repo_id).unwrap()).unwrap();
    assert!(
        dir_b.join("a.txt").is_file(),
        "bob's download includes alice's work"
    );
    std::fs::write(dir_b.join("b.txt"), b"bob's file\n").unwrap();
    cli(&dir_b, &["commit", "-m", "b", "--author", "Bob"]);
    cli(
        &dir_b,
        &[
            "cite",
            "add",
            "b.txt",
            "--repo-name",
            "B-part",
            "--authors",
            "Bob",
        ],
    );
    cli(&dir_b, &["commit", "-m", "cite b", "--author", "Bob"]);
    hub.push(
        &bob,
        &repo_id,
        "main",
        &storage::load(&dir_b).unwrap(),
        "main",
        false,
    )
    .unwrap();

    // The hosted project credits both.
    assert_eq!(
        hub.generate_citation(&repo_id, "main", &path("a.txt"))
            .unwrap()
            .repo_name,
        "A-part"
    );
    assert_eq!(
        hub.generate_citation(&repo_id, "main", &path("b.txt"))
            .unwrap()
            .repo_name,
        "B-part"
    );
    let credits = hub.credited_authors(&repo_id, "main").unwrap();
    let names: Vec<&str> = credits.iter().map(|(a, _)| a.as_str()).collect();
    assert!(names.contains(&"Alice") && names.contains(&"Bob"));

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
