//! E8 — conflict-strategy comparison (the paper's future work #1):
//! the union strategy of §3 vs the three-way strategy "that mirror[s] the
//! three-way merge method used in Git", measured by how many conflicts
//! each surfaces to the user on the same branch histories.

use citekit::{Citation, CitedRepo, ConflictResolver, MergeCiteOutcome, MergeStrategy, Resolution};
use gitlite::{path, RepoPath, Signature};

fn sig(n: &str, t: i64) -> Signature {
    Signature::new(n, format!("{n}@x"), t)
}

fn cite(name: &str) -> Citation {
    Citation::builder(name, "o").build()
}

/// Counts how often the resolver is consulted.
struct CountingResolver {
    calls: usize,
}

impl ConflictResolver for CountingResolver {
    fn resolve(
        &mut self,
        _: &RepoPath,
        ours: Option<&Citation>,
        _: Option<&Citation>,
        _: Option<&Citation>,
    ) -> Resolution {
        self.calls += 1;
        if ours.is_some() {
            Resolution::Ours
        } else {
            Resolution::Theirs
        }
    }
}

/// A repository whose branches make, per file:
/// * f0 — an edit on `dev` only (one-sided edit),
/// * f1 — a citation deletion on `dev` only (one-sided delete),
/// * f2 — different edits on both branches (double edit).
fn scenario() -> CitedRepo {
    let mut r = CitedRepo::init("P", "Owner", "https://x/P");
    for i in 0..3 {
        r.write_file(&path(&format!("f{i}.txt")), format!("{i}\n").into_bytes())
            .unwrap();
        r.add_cite(&path(&format!("f{i}.txt")), cite(&format!("base{i}")))
            .unwrap();
    }
    r.commit(sig("Owner", 100), "base").unwrap();
    r.create_branch("dev").unwrap();

    r.checkout_branch("dev").unwrap();
    r.modify_cite(&path("f0.txt"), cite("dev-edit")).unwrap();
    r.del_cite(&path("f1.txt")).unwrap();
    r.modify_cite(&path("f2.txt"), cite("dev-f2")).unwrap();
    r.commit(sig("Dev", 200), "dev changes").unwrap();

    r.checkout_branch("main").unwrap();
    r.modify_cite(&path("f2.txt"), cite("main-f2")).unwrap();
    // An unrelated file edit so the merge is never a fast-forward.
    r.write_file(&path("main.txt"), &b"m\n"[..]).unwrap();
    r.commit(sig("Owner", 300), "main changes").unwrap();
    r
}

#[test]
fn union_surfaces_more_conflicts_than_three_way() {
    // Union: f0 (edit vs unchanged) and f2 (double edit) are same-key
    // conflicts; f1's deletion is silently resurrected.
    let mut union_repo = scenario();
    let mut union_resolver = CountingResolver { calls: 0 };
    let union_report = union_repo
        .merge_cite(
            "dev",
            sig("Owner", 400),
            "merge",
            MergeStrategy::Union,
            &mut union_resolver,
        )
        .unwrap();
    assert!(matches!(union_report.outcome, MergeCiteOutcome::Merged(_)));
    assert_eq!(
        union_resolver.calls, 2,
        "f0 and f2 ask the user under union"
    );
    assert_eq!(union_report.citation_conflicts.len(), 2);
    // The union resurrects the deleted citation (paper's simplification).
    assert!(union_repo.function().contains(&path("f1.txt")));

    // Three-way: f0 auto-resolves (one-sided edit), f1's deletion is
    // honored, only f2's genuine double edit asks the user.
    let mut tw_repo = scenario();
    let mut tw_resolver = CountingResolver { calls: 0 };
    let tw_report = tw_repo
        .merge_cite(
            "dev",
            sig("Owner", 400),
            "merge",
            MergeStrategy::ThreeWay,
            &mut tw_resolver,
        )
        .unwrap();
    assert!(matches!(tw_report.outcome, MergeCiteOutcome::Merged(_)));
    assert_eq!(tw_resolver.calls, 1, "only f2's double edit needs the user");
    assert_eq!(tw_report.citation_conflicts.len(), 1);
    assert_eq!(tw_report.citation_conflicts[0].path, path("f2.txt"));
    // One-sided edit applied automatically.
    assert_eq!(
        tw_repo.function().get(&path("f0.txt")).unwrap().repo_name,
        "dev-edit"
    );
    // One-sided deletion honored.
    assert!(!tw_repo.function().contains(&path("f1.txt")));
}

#[test]
fn ours_theirs_never_ask_the_user() {
    for (strategy, f2_expect) in [
        (MergeStrategy::Ours, "main-f2"),
        (MergeStrategy::Theirs, "dev-f2"),
    ] {
        let mut repo = scenario();
        let mut resolver = CountingResolver { calls: 0 };
        repo.merge_cite("dev", sig("Owner", 400), "merge", strategy, &mut resolver)
            .unwrap();
        assert_eq!(
            resolver.calls, 0,
            "{strategy:?} must not consult the resolver"
        );
        assert_eq!(
            repo.function().get(&path("f2.txt")).unwrap().repo_name,
            f2_expect
        );
    }
}

#[test]
fn strategies_agree_when_there_is_nothing_to_disagree_about() {
    // Branches with disjoint citation edits: all four strategies produce
    // the same merged function.
    let build = || {
        let mut r = CitedRepo::init("P", "Owner", "https://x/P");
        r.write_file(&path("a.txt"), &b"a\n"[..]).unwrap();
        r.write_file(&path("b.txt"), &b"b\n"[..]).unwrap();
        r.commit(sig("Owner", 100), "base").unwrap();
        r.create_branch("dev").unwrap();
        r.checkout_branch("dev").unwrap();
        r.add_cite(&path("a.txt"), cite("dev-a")).unwrap();
        r.commit(sig("Dev", 200), "dev").unwrap();
        r.checkout_branch("main").unwrap();
        r.add_cite(&path("b.txt"), cite("main-b")).unwrap();
        r.commit(sig("Owner", 300), "main").unwrap();
        r
    };
    let mut results = Vec::new();
    for strategy in [
        MergeStrategy::Union,
        MergeStrategy::Ours,
        MergeStrategy::Theirs,
        MergeStrategy::ThreeWay,
    ] {
        let mut repo = build();
        let mut resolver = CountingResolver { calls: 0 };
        repo.merge_cite("dev", sig("Owner", 400), "merge", strategy, &mut resolver)
            .unwrap();
        assert_eq!(resolver.calls, 0);
        results.push(repo.function().clone());
    }
    for pair in results.windows(2) {
        assert_eq!(pair[0], pair[1]);
    }
}
