//! E2 — Figure 2: the browser-extension popup, driven end to end against
//! the hosted platform.
//!
//! Reproduces every behavior §3 describes for the popup: credential entry,
//! clicking a node, the non-member's immediate citation generation with
//! disabled Add/Delete, the member's explicit-citation text box, the
//! "Generate Citation" button showing the closest ancestor's citation as
//! an editable starting point, and the copy-to-bibliography-manager step.

use citekit::{Citation, CitedRepo};
use extension::{ButtonStates, ExtError, Popup};
use gitlite::{path, RepoPath, Signature};
use hub::{Hub, HubError, Role, Token};

/// Demo platform: leshang owns `leshang/demo` with a cited `core/` dir and
/// an uncited `tools/` dir; yanssie is a member; visitor is not.
fn platform() -> (Hub, Token, Token, Token, String) {
    let hub = Hub::new("https://hub.example");
    for (u, d) in [
        ("leshang", "Leshang Chen"),
        ("yanssie", "Yanssie"),
        ("visitor", "A Visitor"),
    ] {
        hub.register_user(u, d).unwrap();
    }
    let leshang = hub.login("leshang").unwrap();
    let yanssie = hub.login("yanssie").unwrap();
    let visitor = hub.login("visitor").unwrap();
    let repo_id = hub.create_repo(&leshang, "demo").unwrap();
    hub.add_member(&leshang, &repo_id, "yanssie", Role::Member)
        .unwrap();

    let mut local = CitedRepo::open(hub.clone_repo(&repo_id).unwrap()).unwrap();
    local
        .write_file(&path("core/algo.rs"), &b"// core\n"[..])
        .unwrap();
    local
        .write_file(&path("tools/gen.py"), &b"# tool\n"[..])
        .unwrap();
    local
        .add_cite(
            &path("core"),
            Citation::builder("demo-core", "Leshang Chen")
                .author("Leshang Chen")
                .commit("1111111", "2019-01-01T00:00:00Z")
                .build(),
        )
        .unwrap();
    local
        .commit(Signature::new("Leshang Chen", "l@x", 1000), "seed")
        .unwrap();
    hub.push(&leshang, &repo_id, "main", local.repo(), "main", false)
        .unwrap();
    (hub, leshang, yanssie, visitor, repo_id)
}

#[test]
fn anonymous_user_gets_citation_immediately() {
    let (hub, _, _, _, repo_id) = platform();
    let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
    // Click a node without signing in: citation appears at once.
    popup.select(&path("core/algo.rs")).unwrap();
    let v = popup.view();
    assert!(v.text_box.contains("demo-core"));
    assert_eq!(
        v.buttons,
        ButtonStates {
            generate: true,
            add: false,
            modify: false,
            delete: false
        }
    );
    // Copy-paste step: export for the bibliography manager.
    let bib = popup.export(bibformat::Format::Bibtex).unwrap();
    assert!(bib.contains("@software{"));
    assert!(bib.contains("demo-core"));
}

#[test]
fn non_member_cannot_use_add_delete() {
    let (hub, _, _, visitor, repo_id) = platform();
    let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
    popup.sign_in(visitor).unwrap();
    assert!(!popup.view().is_member);
    popup.select(&path("tools/gen.py")).unwrap();
    // The uncited node still shows a *generated* citation for non-members.
    assert!(popup.view().text_box.contains("\"repoName\": \"demo\""));
    assert!(!popup.view().buttons.add);
    assert!(!popup.view().buttons.delete);
    // Forcing the action is rejected by the server, not just the UI.
    popup.edit_text(r#"{"repoName": "evil"}"#);
    assert!(matches!(
        popup.add(),
        Err(ExtError::Hub(HubError::PermissionDenied(_)))
    ));
}

#[test]
fn member_full_cycle_generate_edit_add_modify_delete() {
    let (hub, _, yanssie, _, repo_id) = platform();
    let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
    popup.sign_in(yanssie).unwrap();
    assert!(popup.view().is_member);

    // Uncited node: empty text box, Add enabled.
    popup.select(&path("tools/gen.py")).unwrap();
    assert!(popup.view().text_box.is_empty());
    assert!(popup.view().buttons.add);

    // "Generate Citation" shows the closest ancestor's citation (the
    // root), which the member edits for this node and adds.
    let generated = popup.generate().unwrap();
    assert_eq!(generated.repo_name, "demo");
    let mut edited = generated;
    edited.repo_name = "demo-tools".into();
    edited.author_list = vec!["Yanssie".into()];
    popup.edit_text(edited.to_value().to_string_pretty());
    popup.add().unwrap();

    // Now the node is explicitly cited: Modify/Delete enabled, Add not.
    assert_eq!(
        popup.view().buttons,
        ButtonStates {
            generate: true,
            add: false,
            modify: true,
            delete: true
        }
    );
    // Modify it...
    let mut again = hub
        .generate_citation(&repo_id, "main", &path("tools/gen.py"))
        .unwrap();
    assert_eq!(again.repo_name, "demo-tools");
    again.note = Some("v2 of the tools citation".into());
    popup.edit_text(again.to_value().to_string_pretty());
    popup.modify().unwrap();
    assert!(popup.view().text_box.contains("v2 of the tools citation"));
    // ...and delete it: resolution falls back to the root.
    popup.delete().unwrap();
    assert!(popup.view().text_box.is_empty());
    let c = hub
        .generate_citation(&repo_id, "main", &path("tools/gen.py"))
        .unwrap();
    assert_eq!(c.repo_name, "demo");

    // Every mutation landed as a commit on the hosted branch.
    let log = hub.log(&repo_id, "main").unwrap();
    let messages: Vec<&str> = log.iter().map(|e| e.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.starts_with("add_cite")));
    assert!(messages.iter().any(|m| m.starts_with("modify_cite")));
    assert!(messages.iter().any(|m| m.starts_with("del_cite")));
}

#[test]
fn generate_citation_is_closest_ancestor_per_node() {
    let (hub, _, _, _, repo_id) = platform();
    let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
    // Inside the cited dir → the dir's citation.
    popup.select(&path("core/algo.rs")).unwrap();
    let inside = popup.generate().unwrap();
    assert_eq!(inside.repo_name, "demo-core");
    // Outside → the root's, stamped with the served version.
    popup.select(&path("tools/gen.py")).unwrap();
    let outside = popup.generate().unwrap();
    assert_eq!(outside.repo_name, "demo");
    assert_eq!(outside.commit_id.len(), 7);
    // Root itself.
    popup.select(&RepoPath::root()).unwrap();
    let root = popup.generate().unwrap();
    assert_eq!(root.repo_name, "demo");
}

#[test]
fn owner_and_member_and_visitor_capability_matrix() {
    let (hub, leshang, yanssie, visitor, repo_id) = platform();
    for (token, expect_member) in [(leshang, true), (yanssie, true), (visitor, false)] {
        let mut popup = Popup::open(&hub, &repo_id, "main").unwrap();
        popup.sign_in(token).unwrap();
        popup.select(&path("core")).unwrap();
        let v = popup.view();
        assert_eq!(v.is_member, expect_member, "user {:?}", v.signed_in_as);
        // core is explicitly cited: members may modify/delete it.
        assert_eq!(v.buttons.modify, expect_member);
        assert_eq!(v.buttons.delete, expect_member);
        assert!(v.buttons.generate);
    }
}
